//! # store — a crash-safe on-disk trace store
//!
//! Persists the workspace's captured traces (GPU kernel traces from
//! `simt`, CPU memory traces from `tracekit`) across `repro`
//! invocations, so the expensive functional-execution half of a study
//! is paid once per capture fingerprint, *ever* — while guaranteeing
//! that a damaged store can only ever make a study **slower**, never
//! **wrong**.
//!
//! The crate deliberately knows nothing about trace formats: entries
//! are opaque byte payloads keyed by caller-chosen strings (the study
//! layer uses `benchmark/scale/fingerprint` keys). Three layers:
//!
//! * [`entry`] — the per-entry integrity framing: magic, format
//!   version, key echo (stale-fingerprint detection), payload length,
//!   and an FNV-1a 64 checksum over the payload. Every field is
//!   verified on load; a single flipped or dropped byte anywhere in an
//!   entry is detected.
//! * [`TraceStore`] — the directory of entries. Writes are atomic
//!   (temp file + fsync + rename, so a crash can never leave a
//!   partially visible entry), transient I/O errors are retried with
//!   backoff, entries that fail verification are **quarantined**
//!   (moved aside, never deleted silently, never deserialized), and an
//!   optional size budget evicts least-recently-used entries.
//! * [`Journal`] / [`SweepJournal`] — checksummed append-only record
//!   logs for study checkpoint/resume: each completed experiment (or
//!   sweep response) is appended durably, and reopening after a crash
//!   replays the intact prefix while discarding a torn tail.
//!
//! Every hit/miss/corruption/eviction bumps a `store.*` counter in the
//! global [`obs::Registry`], so run manifests record how the store
//! behaved.
//!
//! ## Degradation ladder
//!
//! | condition | behavior |
//! |-----------|----------|
//! | store dir unwritable | [`TraceStore::open`] errs; callers fall back to in-memory caching |
//! | entry missing | miss → capture → best-effort save |
//! | entry corrupt/stale/old-version | quarantine → capture → save fresh |
//! | transient read/write error | bounded retry with backoff |
//! | persistent write error | warn once, keep computing in memory |
//! | over budget | LRU eviction after each save |

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod entry;
pub mod error;
pub mod fault;
pub mod journal;
pub mod store;

pub use entry::{decode_entry, encode_entry, fnv1a64, Corruption, FORMAT_VERSION};
pub use error::StoreError;
pub use fault::{inject, StoreFault};
pub use journal::{Journal, SweepJournal, JOURNAL_SCHEMA};
pub use store::{write_atomic, TraceStore, CRASH_AFTER_SAVES_ENV, STORE_BUDGET_ENV};

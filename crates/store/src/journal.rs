//! Checksummed append-only checkpoint journals.
//!
//! A journal records a study's durable progress as one JSON record per
//! line, each line prefixed with its own FNV-1a 64 checksum:
//!
//! ```text
//! <16 hex digits> TAB <json> NEWLINE
//! ```
//!
//! Line 0 is a header binding the journal to one *study key* (the
//! study's own fingerprint: artifact list, scale, design). Reopening
//! verifies every line in order and stops at the first damaged one —
//! so a crash mid-append (a torn tail) silently costs exactly the
//! record being written, never the intact prefix. The torn tail is
//! truncated away before appending resumes, keeping the file
//! verifiable end to end.
//!
//! Appends are `fsync`ed: once [`Journal::append`] returns, that
//! record survives SIGKILL and power loss, which is the property the
//! `repro --resume` kill-mid-run test leans on.

use std::collections::BTreeMap;
use std::fs::{self, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use obs::Json;

use crate::entry::fnv1a64;
use crate::error::StoreError;

/// Schema tag written into every journal header.
pub const JOURNAL_SCHEMA: &str = "rodinia-repro.journal/v1";

/// An open, append-only checkpoint journal.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: Mutex<fs::File>,
}

impl Journal {
    /// Opens the journal at `path` for the study identified by
    /// `study_key`, returning the journal and the records that already
    /// survive on disk.
    ///
    /// With `resume = false`, or when the existing file's header does
    /// not match (`different study`, damaged header, old schema), the
    /// journal restarts empty. With `resume = true` and a matching
    /// header, the verified record prefix is returned and any torn
    /// tail is truncated.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the file cannot be created or truncated.
    pub fn open(
        path: &Path,
        study_key: &str,
        resume: bool,
    ) -> Result<(Journal, Vec<Json>), StoreError> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent).map_err(|e| StoreError::io(parent, &e))?;
        }
        let mut records = Vec::new();
        let mut valid_len: u64 = 0;
        if resume {
            if let Ok(text) = fs::read_to_string(path) {
                let (parsed, len) = parse_valid_prefix(&text);
                // The first record must be a matching header.
                let header_ok = parsed.first().is_some_and(|h| {
                    h.get("schema").and_then(Json::as_str) == Some(JOURNAL_SCHEMA)
                        && h.get("study").and_then(Json::as_str) == Some(study_key)
                });
                if header_ok {
                    records = parsed.into_iter().skip(1).collect();
                    valid_len = len;
                }
            }
        }
        // Not truncated at open: `set_len` below cuts the file to the
        // validated prefix (0 unless resuming), which is the point.
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| StoreError::io(path, &e))?;
        file.set_len(valid_len).map_err(|e| StoreError::io(path, &e))?;
        file.seek(SeekFrom::End(0)).map_err(|e| StoreError::io(path, &e))?;
        let journal = Journal {
            path: path.to_path_buf(),
            file: Mutex::new(file),
        };
        if valid_len == 0 {
            journal.append(&Json::obj(vec![
                ("schema", Json::from(JOURNAL_SCHEMA)),
                ("study", Json::from(study_key)),
            ]))?;
        }
        Ok((journal, records))
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Durably appends one record: the line is written and `fsync`ed
    /// before returning, so an acknowledged record survives SIGKILL.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the write or sync fails; the caller
    /// decides whether that degrades the study (it should not — a
    /// journal that stops accepting records only costs resumability).
    pub fn append(&self, record: &Json) -> Result<(), StoreError> {
        let text = record.to_string();
        let line = format!("{:016x}\t{text}\n", fnv1a64(text.as_bytes()));
        let mut f = self.file.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        f.write_all(line.as_bytes())
            .and_then(|()| f.sync_data())
            .map_err(|e| StoreError::io(&self.path, &e))
    }
}

/// Parses the longest valid line prefix of `text`, returning the
/// records and the byte length of that prefix.
fn parse_valid_prefix(text: &str) -> (Vec<Json>, u64) {
    let mut records = Vec::new();
    let mut offset = 0usize;
    for line in text.split_inclusive('\n') {
        if !line.ends_with('\n') {
            break; // torn tail: no newline made it to disk
        }
        let body = &line[..line.len() - 1];
        let Some((sum_hex, json_text)) = body.split_once('\t') else {
            break;
        };
        let Ok(stored) = u64::from_str_radix(sum_hex, 16) else {
            break;
        };
        if stored != fnv1a64(json_text.as_bytes()) {
            break;
        }
        let Ok(record) = Json::parse(json_text) else {
            break;
        };
        records.push(record);
        offset += line.len();
    }
    (records, offset as u64)
}

/// A journal of `f64` responses indexed by job number — the
/// checkpoint shape of a Plackett–Burman (or any `run_indexed`) sweep.
///
/// Responses are stored as `f64::to_bits` hex strings, not JSON
/// numbers: the workspace's JSON formatter is integer-exact only below
/// 2^53, and resume must reproduce *byte-identical* tables, so the
/// round trip has to be exact to the last bit.
#[derive(Debug)]
pub struct SweepJournal {
    inner: Journal,
}

impl SweepJournal {
    /// Opens the sweep journal at `path` for `study_key` and returns
    /// the already-completed `(index, response)` pairs.
    ///
    /// Sweep journals always resume: a response is a pure function of
    /// the study key, so reusing one is a cache hit, not a semantic
    /// choice. A key mismatch restarts the journal empty.
    ///
    /// # Errors
    ///
    /// As [`Journal::open`].
    pub fn open(path: &Path, study_key: &str) -> Result<(SweepJournal, BTreeMap<usize, f64>), StoreError> {
        let (inner, records) = Journal::open(path, study_key, true)?;
        let mut done = BTreeMap::new();
        for r in records {
            let Some(i) = r.get("i").and_then(Json::as_f64) else { continue };
            let Some(bits_hex) = r.get("bits").and_then(Json::as_str) else { continue };
            let Ok(bits) = u64::from_str_radix(bits_hex, 16) else { continue };
            done.insert(i as usize, f64::from_bits(bits));
        }
        Ok((SweepJournal { inner }, done))
    }

    /// Durably records the response of job `i`.
    ///
    /// # Errors
    ///
    /// As [`Journal::append`].
    pub fn record(&self, i: usize, response: f64) -> Result<(), StoreError> {
        self.inner.append(&Json::obj(vec![
            ("i", Json::u64(i as u64)),
            ("bits", Json::from(format!("{:016x}", response.to_bits()))),
        ]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rodinia-journal-{}", std::process::id()));
        let _ = fs::create_dir_all(&dir);
        let path = dir.join(name);
        let _ = fs::remove_file(&path);
        path
    }

    fn rec(n: u64) -> Json {
        Json::obj(vec![("n", Json::u64(n))])
    }

    #[test]
    fn records_survive_reopen() {
        let path = test_path("basic.journal");
        {
            let (j, prior) = Journal::open(&path, "study-a", true).expect("open");
            assert!(prior.is_empty());
            j.append(&rec(1)).expect("append");
            j.append(&rec(2)).expect("append");
        }
        let (_, prior) = Journal::open(&path, "study-a", true).expect("reopen");
        assert_eq!(prior.len(), 2);
        assert_eq!(prior[1].get("n").and_then(Json::as_f64), Some(2.0));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn resume_false_restarts_empty() {
        let path = test_path("fresh.journal");
        {
            let (j, _) = Journal::open(&path, "study-a", true).expect("open");
            j.append(&rec(1)).expect("append");
        }
        let (_, prior) = Journal::open(&path, "study-a", false).expect("reopen fresh");
        assert!(prior.is_empty(), "resume=false discards prior records");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn study_key_mismatch_restarts_empty() {
        let path = test_path("mismatch.journal");
        {
            let (j, _) = Journal::open(&path, "study-a", true).expect("open");
            j.append(&rec(1)).expect("append");
        }
        let (_, prior) = Journal::open(&path, "study-b", true).expect("reopen");
        assert!(prior.is_empty(), "a different study never inherits records");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_discarded_and_truncated() {
        let path = test_path("torn.journal");
        {
            let (j, _) = Journal::open(&path, "study-a", true).expect("open");
            j.append(&rec(1)).expect("append");
            j.append(&rec(2)).expect("append");
        }
        // Simulate a crash mid-append: half a line at the tail.
        let mut bytes = fs::read(&path).expect("read");
        let keep = bytes.len() - 4;
        bytes.truncate(keep);
        fs::write(&path, &bytes).expect("tear");
        let (j, prior) = Journal::open(&path, "study-a", true).expect("reopen");
        assert_eq!(prior.len(), 1, "only the intact record survives");
        // Appending after truncation yields a fully valid file again.
        j.append(&rec(3)).expect("append");
        drop(j);
        let (_, prior) = Journal::open(&path, "study-a", true).expect("reopen again");
        assert_eq!(prior.len(), 2);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn corrupt_middle_line_cuts_the_prefix_there() {
        let path = test_path("midcorrupt.journal");
        {
            let (j, _) = Journal::open(&path, "study-a", true).expect("open");
            for n in 1..=3 {
                j.append(&rec(n)).expect("append");
            }
        }
        let text = fs::read_to_string(&path).expect("read");
        // Flip a byte inside the second record's JSON.
        let lines: Vec<&str> = text.split_inclusive('\n').collect();
        let mut rebuilt = String::new();
        for (i, l) in lines.iter().enumerate() {
            if i == 2 {
                rebuilt.push_str(&l.replace("\"n\":2", "\"n\":9"));
            } else {
                rebuilt.push_str(l);
            }
        }
        fs::write(&path, rebuilt).expect("rewrite");
        let (_, prior) = Journal::open(&path, "study-a", true).expect("reopen");
        assert_eq!(prior.len(), 1, "records after the damage are not trusted");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn damaged_header_restarts_empty() {
        let path = test_path("badheader.journal");
        {
            let (j, _) = Journal::open(&path, "study-a", true).expect("open");
            j.append(&rec(1)).expect("append");
        }
        let text = fs::read_to_string(&path).expect("read");
        fs::write(&path, text.replacen(JOURNAL_SCHEMA, "other-schema/v0", 1)).expect("rewrite");
        let (_, prior) = Journal::open(&path, "study-a", true).expect("reopen");
        assert!(prior.is_empty());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn sweep_journal_round_trips_exact_bits() {
        let path = test_path("sweep.journal");
        let awkward = 0.1f64 + 0.2; // not exactly representable in decimal
        {
            let (j, done) = SweepJournal::open(&path, "pb/v1").expect("open");
            assert!(done.is_empty());
            j.record(0, awkward).expect("record");
            j.record(7, 1.0e18).expect("record");
        }
        let (_, done) = SweepJournal::open(&path, "pb/v1").expect("reopen");
        assert_eq!(done.len(), 2);
        assert_eq!(done[&0].to_bits(), awkward.to_bits(), "bit-exact resume");
        assert_eq!(done[&7], 1.0e18);
        let _ = fs::remove_file(&path);
    }
}

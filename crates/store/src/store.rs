//! The on-disk store: atomic writes, verified loads, quarantine,
//! retry, and LRU eviction.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::time::{Duration, SystemTime};

use crate::entry::{decode_entry, encode_entry, fnv1a64};
use crate::error::StoreError;

/// Environment variable: crash the process (deterministically) right
/// after the N-th successful entry save. This is the hook the
/// kill-mid-run recovery tests use instead of racing a timer against
/// the sweep: `RODINIA_STORE_CRASH_AFTER_SAVES=3 repro pb small
/// --store dir` dies with the store holding exactly three durable
/// entries.
pub const CRASH_AFTER_SAVES_ENV: &str = "RODINIA_STORE_CRASH_AFTER_SAVES";

/// Environment variable: store size budget in bytes (overridden by
/// [`TraceStore::open_with_budget`]). When the budget is exceeded
/// after a save, least-recently-used entries are evicted.
pub const STORE_BUDGET_ENV: &str = "RODINIA_STORE_BUDGET_BYTES";

/// File extension of store entries.
const ENTRY_EXT: &str = "trace";

/// Subdirectory that quarantined (corrupt/stale) entries are moved to.
const QUARANTINE_DIR: &str = "quarantine";

/// Subdirectory holding checkpoint journals.
const JOURNAL_DIR: &str = "journals";

/// Total I/O attempts per operation (1 initial + 3 retries).
const RETRY_ATTEMPTS: u32 = 4;

/// Backoff before retry `i` (index 0 = delay before the 2nd attempt).
const RETRY_BACKOFF_MS: [u64; 3] = [1, 5, 20];

/// A directory of integrity-framed trace entries.
///
/// All methods take `&self`; the store is safe to share across the
/// study engine's worker threads (concurrent saves of *different* keys
/// are independent; concurrent saves of the *same* key are both atomic
/// and byte-identical, so last-rename-wins is harmless).
#[derive(Debug)]
pub struct TraceStore {
    root: PathBuf,
    budget_bytes: Option<u64>,
    crash_after_saves: Option<u64>,
    saves: AtomicU64,
    inject_failures: AtomicU32,
    warned_write: AtomicBool,
}

impl TraceStore {
    /// Opens (creating if needed) the store at `dir` and probes that it
    /// is writable.
    ///
    /// Reads [`STORE_BUDGET_ENV`] for an optional size budget and
    /// [`CRASH_AFTER_SAVES_ENV`] for the deterministic crash hook.
    ///
    /// # Errors
    ///
    /// [`StoreError::Unavailable`] if the directory cannot be created
    /// or a probe file cannot be written — the signal for callers to
    /// fall back to in-memory caching.
    pub fn open(dir: &Path) -> Result<TraceStore, StoreError> {
        let budget = std::env::var(STORE_BUDGET_ENV)
            .ok()
            .and_then(|v| v.parse::<u64>().ok());
        TraceStore::open_with_budget(dir, budget)
    }

    /// [`TraceStore::open`] with an explicit size budget (bytes of
    /// entry payloads + framing; `None` = unbounded).
    ///
    /// # Errors
    ///
    /// As [`TraceStore::open`].
    pub fn open_with_budget(dir: &Path, budget_bytes: Option<u64>) -> Result<TraceStore, StoreError> {
        let unavailable = |e: &io::Error| StoreError::Unavailable {
            dir: dir.display().to_string(),
            reason: e.to_string(),
        };
        fs::create_dir_all(dir).map_err(|e| unavailable(&e))?;
        // Writability probe: an unwritable or full store must surface
        // at open time (when the caller can still downgrade cleanly),
        // not as a storm of per-entry warnings mid-study. The journals
        // subdirectory gets its own probe — a writable root with a
        // blocked `journals/` would otherwise pass here and then fail
        // the first sweep checkpoint mid-study.
        let probe = dir.join(format!(".probe-{}", std::process::id()));
        fs::write(&probe, b"probe").map_err(|e| unavailable(&e))?;
        let _ = fs::remove_file(&probe);
        let journals = dir.join(JOURNAL_DIR);
        fs::create_dir_all(&journals).map_err(|e| unavailable(&e))?;
        let jprobe = journals.join(format!(".probe-{}", std::process::id()));
        fs::write(&jprobe, b"probe").map_err(|e| unavailable(&e))?;
        let _ = fs::remove_file(&jprobe);
        let crash_after_saves = std::env::var(CRASH_AFTER_SAVES_ENV)
            .ok()
            .and_then(|v| v.parse::<u64>().ok());
        Ok(TraceStore {
            root: dir.to_path_buf(),
            budget_bytes,
            crash_after_saves,
            saves: AtomicU64::new(0),
            inject_failures: AtomicU32::new(0),
            warned_write: AtomicBool::new(false),
        })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.root
    }

    /// The on-disk path of `key`'s entry. Exposed for fault injection
    /// and inspection; normal callers use [`load`]/[`save`].
    ///
    /// [`load`]: TraceStore::load
    /// [`save`]: TraceStore::save
    pub fn entry_path(&self, key: &str) -> PathBuf {
        // Human-readable slug + full key hash. Correctness does not
        // depend on the file name at all: the key echoed inside the
        // entry is what is verified, so even a (cosmically unlikely)
        // hash collision degrades to quarantine + recapture.
        let slug: String = key
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .take(48)
            .collect();
        self.root
            .join(format!("{slug}-{:016x}.{ENTRY_EXT}", fnv1a64(key.as_bytes())))
    }

    /// Path of the checkpoint journal named `name` (inside the store's
    /// `journals/` subdirectory).
    pub fn journal_path(&self, name: &str) -> PathBuf {
        self.root.join(JOURNAL_DIR).join(name)
    }

    /// Loads and verifies `key`'s entry, returning its payload.
    ///
    /// `None` means "capture instead": the entry is absent, unreadable
    /// after retries, or failed verification (in which case it has been
    /// quarantined). A load **never** fails a study and **never**
    /// returns bytes that failed verification.
    pub fn load(&self, key: &str) -> Option<Vec<u8>> {
        let _span = obs::span!("store.load");
        let reg = obs::Registry::global();
        let path = self.entry_path(key);
        let bytes = match self.with_retry(|| fs::read(&path)) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                reg.incr("store.miss");
                return None;
            }
            Err(e) => {
                reg.incr("store.miss");
                reg.incr("store.read_error");
                eprintln!("store: cannot read {}: {e}; recapturing", path.display());
                return None;
            }
        };
        match decode_entry(key, &bytes) {
            Ok(payload) => {
                reg.incr("store.hit");
                self.touch(&path);
                Some(payload.to_vec())
            }
            Err(c) => {
                self.quarantine(key, &c.to_string());
                None
            }
        }
    }

    /// Atomically writes `payload` as `key`'s entry: temp file in the
    /// store directory, `fsync`, rename. A crash at any point leaves
    /// either the old entry or the new one — never a torn hybrid —
    /// which is what makes a kill-mid-sweep run resumable.
    ///
    /// Runs the LRU eviction pass afterwards when a budget is set.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the write still fails after the bounded
    /// retry-with-backoff. Most callers want [`save_or_warn`] instead.
    ///
    /// [`save_or_warn`]: TraceStore::save_or_warn
    pub fn save(&self, key: &str, payload: &[u8]) -> Result<(), StoreError> {
        let _span = obs::span!("store.save");
        let reg = obs::Registry::global();
        let bytes = encode_entry(key, payload);
        let path = self.entry_path(key);
        let tmp = self.root.join(format!(
            ".tmp-{:016x}-{}",
            fnv1a64(key.as_bytes()),
            std::process::id()
        ));
        let write_tmp = || -> io::Result<()> {
            let mut f = File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()
        };
        if let Err(e) = self.with_retry(write_tmp) {
            let _ = fs::remove_file(&tmp);
            reg.incr("store.write_error");
            return Err(StoreError::io(&tmp, &e));
        }
        if let Err(e) = self.with_retry(|| fs::rename(&tmp, &path)) {
            let _ = fs::remove_file(&tmp);
            reg.incr("store.write_error");
            return Err(StoreError::io(&path, &e));
        }
        // Make the rename itself durable (best effort — the entry is
        // self-verifying either way).
        if let Ok(d) = File::open(&self.root) {
            let _ = d.sync_all();
        }
        reg.incr("store.write");
        self.evict_to_budget(&path);
        self.crash_hook_after_save();
        Ok(())
    }

    /// [`save`](TraceStore::save), downgrading failure to a single
    /// warning per store: a store that stops accepting writes mid-run
    /// (ENOSPC, yanked volume) must cost warnings, not results.
    pub fn save_or_warn(&self, key: &str, payload: &[u8]) {
        if let Err(e) = self.save(key, payload) {
            if !self.warned_write.swap(true, Ordering::Relaxed) {
                eprintln!("store: {e}; continuing with in-memory caching only");
            }
        }
    }

    /// Whether `key` currently has an (unverified) entry on disk.
    pub fn contains(&self, key: &str) -> bool {
        self.entry_path(key).exists()
    }

    /// Moves `key`'s entry into the quarantine subdirectory (never
    /// deleting it — the bytes stay inspectable) and counts the event.
    /// Also used by callers whose *decode or replay* of a
    /// framing-valid payload failed: semantic staleness quarantines
    /// exactly like bit rot.
    pub fn quarantine(&self, key: &str, reason: &str) {
        let reg = obs::Registry::global();
        reg.incr("store.corrupt");
        let path = self.entry_path(key);
        let qdir = self.root.join(QUARANTINE_DIR);
        let _ = fs::create_dir_all(&qdir);
        let dest = qdir.join(path.file_name().unwrap_or_else(|| "entry".as_ref()));
        match fs::rename(&path, &dest) {
            Ok(()) => eprintln!(
                "store: quarantined {key} ({reason}); recapturing [{}]",
                dest.display()
            ),
            Err(e) => {
                // Removal beats leaving a known-bad entry to be
                // re-verified (and re-warned about) every run.
                let _ = fs::remove_file(&path);
                eprintln!("store: dropped corrupt {key} ({reason}; quarantine failed: {e})");
            }
        }
        let _ = fs::remove_file(touch_path(&path));
    }

    /// Number of entries currently in the store.
    pub fn entry_count(&self) -> usize {
        self.entries().len()
    }

    /// Total bytes of all entries (framing included).
    pub fn total_bytes(&self) -> u64 {
        self.entries().iter().map(|e| e.len).sum()
    }

    /// Number of quarantined entries.
    pub fn quarantined_count(&self) -> usize {
        fs::read_dir(self.root.join(QUARANTINE_DIR))
            .map_or(0, |rd| rd.filter_map(Result::ok).count())
    }

    /// Arms the next `n` I/O attempts (across any operation) to fail
    /// with an `EINTR`-style transient error. Test hook for the
    /// retry-with-backoff path; see [`crate::fault`].
    pub fn inject_transient_failures(&self, n: u32) {
        self.inject_failures.store(n, Ordering::SeqCst);
    }

    /// Retries `op` with bounded backoff on transient errors
    /// (`Interrupted`, `WouldBlock`, `TimedOut`), honoring injected
    /// failures from [`inject_transient_failures`].
    ///
    /// [`inject_transient_failures`]: TraceStore::inject_transient_failures
    fn with_retry<T>(&self, mut op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
        let mut attempt = 0;
        loop {
            let r = if self.take_injected_failure() {
                Err(io::Error::new(io::ErrorKind::Interrupted, "injected EINTR"))
            } else {
                op()
            };
            match r {
                Ok(v) => return Ok(v),
                Err(e)
                    if attempt + 1 < RETRY_ATTEMPTS
                        && matches!(
                            e.kind(),
                            io::ErrorKind::Interrupted
                                | io::ErrorKind::WouldBlock
                                | io::ErrorKind::TimedOut
                        ) =>
                {
                    obs::Registry::global().incr("store.retry");
                    std::thread::sleep(Duration::from_millis(
                        RETRY_BACKOFF_MS[attempt as usize % RETRY_BACKOFF_MS.len()],
                    ));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn take_injected_failure(&self) -> bool {
        self.inject_failures
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok()
    }

    /// Refreshes `path`'s last-use marker. `std` cannot set mtimes, so
    /// recency is tracked with an empty `.touch` sidecar whose own
    /// mtime is refreshed on every hit.
    fn touch(&self, path: &Path) {
        let _ = fs::write(touch_path(path), b"");
    }

    fn entries(&self) -> Vec<EntryMeta> {
        let Ok(rd) = fs::read_dir(&self.root) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for e in rd.filter_map(Result::ok) {
            let path = e.path();
            if path.extension().and_then(|x| x.to_str()) != Some(ENTRY_EXT) {
                continue;
            }
            let Ok(md) = e.metadata() else { continue };
            let mut last_use = md.modified().unwrap_or(SystemTime::UNIX_EPOCH);
            if let Ok(tmd) = fs::metadata(touch_path(&path)) {
                if let Ok(t) = tmd.modified() {
                    last_use = last_use.max(t);
                }
            }
            out.push(EntryMeta {
                path,
                len: md.len(),
                last_use,
            });
        }
        out
    }

    /// Evicts least-recently-used entries until the store fits its
    /// budget, never evicting `just_written`.
    fn evict_to_budget(&self, just_written: &Path) {
        let Some(budget) = self.budget_bytes else { return };
        let mut entries = self.entries();
        let mut total: u64 = entries.iter().map(|e| e.len).sum();
        if total <= budget {
            return;
        }
        // Oldest first; path as tiebreak keeps the pass deterministic.
        entries.sort_by(|a, b| (a.last_use, &a.path).cmp(&(b.last_use, &b.path)));
        for e in &entries {
            if total <= budget {
                break;
            }
            if e.path == just_written {
                continue;
            }
            if fs::remove_file(&e.path).is_ok() {
                let _ = fs::remove_file(touch_path(&e.path));
                total = total.saturating_sub(e.len);
                obs::Registry::global().incr("store.evict");
            }
        }
    }

    /// The deterministic crash hook (see [`CRASH_AFTER_SAVES_ENV`]):
    /// after the N-th successful save, SIGKILL the process — the
    /// hardest possible interruption, with no destructors and no
    /// flushing, exactly what the resume path must survive.
    fn crash_hook_after_save(&self) {
        let Some(n) = self.crash_after_saves else { return };
        if self.saves.fetch_add(1, Ordering::SeqCst) + 1 != n {
            return;
        }
        eprintln!("store: crash hook firing after {n} save(s) ({CRASH_AFTER_SAVES_ENV})");
        let _ = std::process::Command::new("kill")
            .args(["-9", &std::process::id().to_string()])
            .status();
        // If there is no `kill` binary, abort still dies without
        // unwinding or flushing.
        std::process::abort();
    }
}

#[derive(Debug)]
struct EntryMeta {
    path: PathBuf,
    len: u64,
    last_use: SystemTime,
}

fn touch_path(entry: &Path) -> PathBuf {
    let mut os = entry.as_os_str().to_os_string();
    os.push(".touch");
    PathBuf::from(os)
}

/// Atomically writes `bytes` to `dir/file_name` (temp + fsync +
/// rename), creating `dir` if needed. Used for derived artifacts that
/// ride along with the store (the deterministic study manifest).
///
/// # Errors
///
/// [`StoreError::Io`] on any failure.
pub fn write_atomic(dir: &Path, file_name: &str, bytes: &[u8]) -> Result<PathBuf, StoreError> {
    fs::create_dir_all(dir).map_err(|e| StoreError::io(dir, &e))?;
    let path = dir.join(file_name);
    let tmp = dir.join(format!(".tmp-{file_name}-{}", std::process::id()));
    let write = || -> io::Result<()> {
        let mut f = OpenOptions::new().write(true).create(true).truncate(true).open(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()
    };
    if let Err(e) = write() {
        let _ = fs::remove_file(&tmp);
        return Err(StoreError::io(&tmp, &e));
    }
    fs::rename(&tmp, &path).map_err(|e| {
        let _ = fs::remove_file(&tmp);
        StoreError::io(&path, &e)
    })?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rodinia-store-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_then_load_round_trips() {
        let dir = test_dir("roundtrip");
        let store = TraceStore::open(&dir).expect("open");
        assert!(!store.contains("k"));
        store.save("k", b"payload").expect("save");
        assert!(store.contains("k"));
        assert_eq!(store.load("k"), Some(b"payload".to_vec()));
        assert_eq!(store.entry_count(), 1);
        assert!(store.total_bytes() > 8);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_entry_is_a_miss_not_an_error() {
        let dir = test_dir("miss");
        let store = TraceStore::open(&dir).expect("open");
        let before = obs::Registry::global().counter("store.miss");
        assert_eq!(store.load("absent"), None);
        assert!(obs::Registry::global().counter("store.miss") > before);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_on_a_file_path_is_unavailable() {
        let dir = test_dir("notadir");
        fs::create_dir_all(&dir).expect("mkdir");
        let file = dir.join("occupied");
        fs::write(&file, b"x").expect("write");
        let err = TraceStore::open(&file).unwrap_err();
        assert!(matches!(err, StoreError::Unavailable { .. }), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn blocked_journals_dir_is_unavailable_at_open() {
        let dir = test_dir("blockedjournals");
        fs::create_dir_all(&dir).expect("mkdir");
        // A plain file squatting on `journals/` makes checkpointing
        // impossible even though the root itself is writable; that must
        // surface at open time, not at the first sweep checkpoint.
        fs::write(dir.join(JOURNAL_DIR), b"not a dir").expect("write");
        let err = TraceStore::open(&dir).unwrap_err();
        assert!(matches!(err, StoreError::Unavailable { .. }), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entry_is_quarantined_and_recoverable() {
        let dir = test_dir("quarantine");
        let store = TraceStore::open(&dir).expect("open");
        store.save("k", b"payload").expect("save");
        // Flip a payload bit directly on disk.
        let path = store.entry_path("k");
        let mut bytes = fs::read(&path).expect("read");
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        fs::write(&path, &bytes).expect("rewrite");
        let corrupt_before = obs::Registry::global().counter("store.corrupt");
        assert_eq!(store.load("k"), None, "corrupt entry must not load");
        assert!(obs::Registry::global().counter("store.corrupt") > corrupt_before);
        assert_eq!(store.quarantined_count(), 1);
        assert!(!store.contains("k"), "entry moved aside");
        // Recapture path: a fresh save fully recovers.
        store.save("k", b"payload").expect("resave");
        assert_eq!(store.load("k"), Some(b"payload".to_vec()));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_failures_are_retried() {
        let dir = test_dir("retry");
        let store = TraceStore::open(&dir).expect("open");
        store.save("k", b"payload").expect("save");
        store.inject_transient_failures(2);
        let retries_before = obs::Registry::global().counter("store.retry");
        assert_eq!(store.load("k"), Some(b"payload".to_vec()), "retries absorb EINTR");
        assert!(obs::Registry::global().counter("store.retry") >= retries_before + 2);
        // More failures than the retry budget: degrade to a miss.
        store.inject_transient_failures(RETRY_ATTEMPTS + 2);
        assert_eq!(store.load("k"), None);
        store.inject_transient_failures(0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_is_lru_and_respects_budget() {
        let dir = test_dir("evict");
        // Budget fits two of the three ~1 kB entries.
        let store = TraceStore::open_with_budget(&dir, Some(2300)).expect("open");
        let payload = vec![7u8; 1024];
        store.save("a", &payload).expect("save a");
        std::thread::sleep(Duration::from_millis(20));
        store.save("b", &payload).expect("save b");
        std::thread::sleep(Duration::from_millis(20));
        // Touch `a` so `b` becomes the LRU entry.
        assert!(store.load("a").is_some());
        std::thread::sleep(Duration::from_millis(20));
        store.save("c", &payload).expect("save c");
        assert!(store.contains("c"), "just-written entry is never evicted");
        assert!(store.contains("a"), "recently used entry survives");
        assert!(!store.contains("b"), "LRU entry was evicted");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_atomic_replaces_existing_file() {
        let dir = test_dir("atomic");
        let p1 = write_atomic(&dir, "out.json", b"{}").expect("write");
        let p2 = write_atomic(&dir, "out.json", b"{\"v\":2}").expect("rewrite");
        assert_eq!(p1, p2);
        assert_eq!(fs::read(&p2).expect("read"), b"{\"v\":2}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn entry_paths_are_stable_and_distinct() {
        let dir = test_dir("paths");
        let store = TraceStore::open(&dir).expect("open");
        let a = store.entry_path("gpu/v1/BFS/Small/-/w32b16s64");
        let b = store.entry_path("gpu/v1/NW/Small/-/w32b16s64");
        assert_ne!(a, b);
        assert_eq!(a, store.entry_path("gpu/v1/BFS/Small/-/w32b16s64"));
        assert!(a.file_name().unwrap().to_str().unwrap().contains("gpu-v1-BFS"));
        let _ = fs::remove_dir_all(&dir);
    }
}

//! Per-entry integrity framing.
//!
//! Every stored entry is framed so that *any* single-byte mutation —
//! in the header or the payload — is detected on load:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"RTSE"
//! 4       4     format version, u32 LE
//! 8       2     key length `k`, u16 LE
//! 10      k     key bytes (UTF-8 echo of the store key)
//! 10+k    8     payload length, u64 LE
//! 18+k    8     FNV-1a 64 checksum of the payload, u64 LE
//! 26+k    n     payload
//! ```
//!
//! The header fields are each verified structurally (magic, version,
//! key echo against the key the caller asked for, length against the
//! file size), and the payload by checksum. The key echo is what turns
//! a *stale fingerprint* — an entry written for a different key that
//! ends up at this path — into a detected corruption instead of a
//! silently wrong replay.
//!
//! FNV-1a detects every single-byte change: each step
//! `h' = (h ^ b) * P` is a bijection of `h` for fixed `b` (P is odd),
//! and two distinct bytes at the same position map one state to two
//! distinct states, so differing inputs of equal length can only
//! collide by later *re*-collision, which a one-byte delta cannot
//! arrange. The property test in `tests/entry_props.rs` exercises it
//! exhaustively over random entries.

use std::fmt;

/// Magic bytes opening every entry ("Rodinia Trace Store Entry").
pub const MAGIC: [u8; 4] = *b"RTSE";

/// Current entry format version. Bump on any layout or payload-codec
/// change; old entries then verify as [`Corruption::VersionMismatch`]
/// and are quarantined + recaptured rather than misread.
pub const FORMAT_VERSION: u32 = 1;

/// Fixed header bytes before the key echo.
const PRE_KEY: usize = 4 + 4 + 2;

/// Header bytes after the key echo (payload length + checksum).
const POST_KEY: usize = 8 + 8;

/// FNV-1a 64-bit hash of `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Why an entry failed verification. Every variant is treated the same
/// way by the store — quarantine, count, recapture — but the reason is
/// kept for the quarantine log line and for tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Corruption {
    /// The file is shorter than its own framing claims.
    Truncated {
        /// Bytes needed to hold the header + declared payload.
        need: u64,
        /// Bytes actually present.
        have: u64,
    },
    /// The magic bytes are wrong (not a store entry at all).
    BadMagic,
    /// The entry was written by a different format version.
    VersionMismatch {
        /// Version found in the entry.
        found: u32,
    },
    /// The key echoed in the entry is not the key that was asked for —
    /// a stale or misplaced entry.
    KeyMismatch {
        /// Key found in the entry (lossily decoded).
        found: String,
    },
    /// The file length disagrees with the declared payload length.
    LengthMismatch {
        /// Payload length declared by the header.
        declared: u64,
        /// Payload bytes actually present.
        actual: u64,
    },
    /// The payload checksum does not match.
    ChecksumMismatch {
        /// Checksum stored in the header.
        stored: u64,
        /// Checksum computed over the payload.
        computed: u64,
    },
}

impl fmt::Display for Corruption {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Corruption::Truncated { need, have } => {
                write!(f, "truncated: need {need} bytes, have {have}")
            }
            Corruption::BadMagic => write!(f, "bad magic"),
            Corruption::VersionMismatch { found } => {
                write!(f, "format version {found} (expected {FORMAT_VERSION})")
            }
            Corruption::KeyMismatch { found } => write!(f, "stale entry for key {found:?}"),
            Corruption::LengthMismatch { declared, actual } => {
                write!(f, "payload length {actual} (declared {declared})")
            }
            Corruption::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: stored {stored:016x}, computed {computed:016x}"
            ),
        }
    }
}

/// Frames `payload` as a store entry for `key`.
///
/// # Panics
///
/// Panics if `key` is longer than `u16::MAX` bytes; store keys are
/// short fingerprint strings, so this is a caller bug.
pub fn encode_entry(key: &str, payload: &[u8]) -> Vec<u8> {
    let kb = key.as_bytes();
    assert!(kb.len() <= usize::from(u16::MAX), "store key too long");
    let mut out = Vec::with_capacity(PRE_KEY + kb.len() + POST_KEY + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(kb.len() as u16).to_le_bytes());
    out.extend_from_slice(kb);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Verifies the framing of `bytes` against `key` and returns the
/// payload slice.
///
/// # Errors
///
/// A [`Corruption`] naming the first check that failed. No payload
/// byte is ever returned from an entry that fails any check.
pub fn decode_entry<'a>(key: &str, bytes: &'a [u8]) -> Result<&'a [u8], Corruption> {
    let have = bytes.len() as u64;
    if bytes.len() < PRE_KEY {
        return Err(Corruption::Truncated {
            need: PRE_KEY as u64,
            have,
        });
    }
    if bytes[0..4] != MAGIC {
        return Err(Corruption::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(Corruption::VersionMismatch { found: version });
    }
    let klen = usize::from(u16::from_le_bytes(bytes[8..10].try_into().expect("2 bytes")));
    let header_len = PRE_KEY + klen + POST_KEY;
    if bytes.len() < header_len {
        return Err(Corruption::Truncated {
            need: header_len as u64,
            have,
        });
    }
    let found_key = &bytes[PRE_KEY..PRE_KEY + klen];
    if found_key != key.as_bytes() {
        return Err(Corruption::KeyMismatch {
            found: String::from_utf8_lossy(found_key).into_owned(),
        });
    }
    let at = PRE_KEY + klen;
    let declared = u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"));
    let stored = u64::from_le_bytes(bytes[at + 8..at + 16].try_into().expect("8 bytes"));
    let payload = &bytes[header_len..];
    if payload.len() as u64 != declared {
        return Err(Corruption::LengthMismatch {
            declared,
            actual: payload.len() as u64,
        });
    }
    let computed = fnv1a64(payload);
    if computed != stored {
        return Err(Corruption::ChecksumMismatch { stored, computed });
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_payload() {
        let payload = b"warp trace words".to_vec();
        let bytes = encode_entry("gpu/v1/BFS", &payload);
        assert_eq!(decode_entry("gpu/v1/BFS", &bytes), Ok(payload.as_slice()));
    }

    #[test]
    fn empty_payload_round_trips() {
        let bytes = encode_entry("k", &[]);
        assert_eq!(decode_entry("k", &bytes), Ok(&[][..]));
    }

    #[test]
    fn wrong_key_is_a_stale_entry() {
        let bytes = encode_entry("gpu/v1/BFS", b"x");
        assert_eq!(
            decode_entry("gpu/v1/NW", &bytes),
            Err(Corruption::KeyMismatch {
                found: "gpu/v1/BFS".to_string()
            })
        );
    }

    #[test]
    fn bad_magic_and_version_are_distinguished() {
        let mut bytes = encode_entry("k", b"x");
        bytes[0] = b'X';
        assert_eq!(decode_entry("k", &bytes), Err(Corruption::BadMagic));
        let mut bytes = encode_entry("k", b"x");
        bytes[4] = 99;
        assert_eq!(
            decode_entry("k", &bytes),
            Err(Corruption::VersionMismatch { found: 99 })
        );
    }

    #[test]
    fn truncation_anywhere_is_detected() {
        let bytes = encode_entry("key", b"payload");
        for cut in 0..bytes.len() {
            let r = decode_entry("key", &bytes[..cut]);
            assert!(r.is_err(), "cut at {cut} must not verify");
        }
    }

    #[test]
    fn trailing_garbage_is_detected() {
        let mut bytes = encode_entry("key", b"payload");
        bytes.push(0);
        assert!(matches!(
            decode_entry("key", &bytes),
            Err(Corruption::LengthMismatch { .. })
        ));
    }

    #[test]
    fn payload_bit_flip_is_detected() {
        let mut bytes = encode_entry("key", b"payload");
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        assert!(matches!(
            decode_entry("key", &bytes),
            Err(Corruption::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }
}

//! Pluggable event sinks.
//!
//! Instrumentation sites call [`emit_with`] with a closure; when no sink
//! is installed the closure is never evaluated and the call is a single
//! relaxed atomic load, which keeps the disabled-telemetry overhead
//! negligible (measured by the `telemetry_overhead` bench).

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::json::Json;

/// What kind of event a sink is being handed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened.
    SpanStart,
    /// A span closed; fields include `dur_us`.
    SpanEnd,
    /// A counter was bumped.
    Counter,
    /// A structured record (e.g. per-launch kernel statistics).
    Record,
}

impl EventKind {
    /// Stable lowercase tag used in text and JSONL output.
    pub fn tag(&self) -> &'static str {
        match self {
            EventKind::SpanStart => "span_start",
            EventKind::SpanEnd => "span_end",
            EventKind::Counter => "counter",
            EventKind::Record => "record",
        }
    }
}

/// One telemetry event.
#[derive(Debug, Clone)]
pub struct Event {
    /// Event kind.
    pub kind: EventKind,
    /// Event name (span name, counter name, record kind).
    pub name: String,
    /// Structured payload.
    pub fields: Vec<(String, Json)>,
}

/// A telemetry consumer.
pub trait Sink: Send {
    /// Consumes one event.
    fn emit(&mut self, event: &Event);
    /// Flushes any buffered output.
    ///
    /// # Errors
    ///
    /// A rendered description of the first write failure, so callers
    /// that promised the user an artifact (`--telemetry`) can exit
    /// nonzero instead of silently shipping a truncated file.
    fn flush(&mut self) -> Result<(), String> {
        Ok(())
    }
}

static SINK_COUNT: AtomicUsize = AtomicUsize::new(0);
static SINKS: Mutex<Vec<Box<dyn Sink>>> = Mutex::new(Vec::new());

fn sinks() -> std::sync::MutexGuard<'static, Vec<Box<dyn Sink>>> {
    SINKS.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Whether at least one sink is installed (the fast path for
/// instrumentation sites).
pub fn sinks_active() -> bool {
    SINK_COUNT.load(Ordering::Relaxed) > 0
}

/// Installs a sink; events flow to every installed sink.
pub fn add_sink(sink: Box<dyn Sink>) {
    let mut g = sinks();
    g.push(sink);
    SINK_COUNT.store(g.len(), Ordering::Relaxed);
}

/// Flushes and removes every installed sink, discarding flush errors
/// (teardown path; use [`flush_sinks`] first when errors must surface).
pub fn clear_sinks() {
    let mut g = sinks();
    for s in g.iter_mut() {
        let _ = s.flush();
    }
    g.clear();
    SINK_COUNT.store(0, Ordering::Relaxed);
}

/// Flushes every installed sink without removing it.
///
/// # Errors
///
/// The first sink's flush failure, rendered. Telemetry emission never
/// aborts a run, so this is where dropped lines finally surface; CLI
/// drivers turn it into a nonzero exit.
pub fn flush_sinks() -> Result<(), String> {
    let mut first_err = None;
    for s in sinks().iter_mut() {
        if let Err(e) = s.flush() {
            first_err.get_or_insert(e);
        }
    }
    match first_err {
        None => Ok(()),
        Some(e) => Err(e),
    }
}

/// Builds an event with `build` and hands it to every sink — but only if
/// a sink is installed; otherwise `build` is never evaluated.
pub fn emit_with(build: impl FnOnce() -> Event) {
    if !sinks_active() {
        return;
    }
    let event = build();
    for s in sinks().iter_mut() {
        s.emit(&event);
    }
}

/// Name of the verbosity environment variable read by
/// [`init_from_env`]: `RODINIA_OBS=1` prints closed spans to stderr,
/// `RODINIA_OBS=2` additionally prints counters and records.
pub const ENV_VERBOSITY: &str = "RODINIA_OBS";

/// Installs a [`TextSink`] if the [`ENV_VERBOSITY`] environment variable
/// requests one. Returns whether a sink was installed.
pub fn init_from_env() -> bool {
    match std::env::var(ENV_VERBOSITY).ok().as_deref() {
        Some("1") => {
            add_sink(Box::new(TextSink::new(1)));
            true
        }
        Some("2") => {
            add_sink(Box::new(TextSink::new(2)));
            true
        }
        _ => false,
    }
}

/// A human-readable sink writing one line per event to stderr.
#[derive(Debug)]
pub struct TextSink {
    level: u8,
}

impl TextSink {
    /// Level 1 prints closed spans; level 2 prints everything.
    pub fn new(level: u8) -> TextSink {
        TextSink { level }
    }
}

impl Sink for TextSink {
    fn emit(&mut self, event: &Event) {
        let wanted = match event.kind {
            EventKind::SpanEnd => self.level >= 1,
            _ => self.level >= 2,
        };
        if !wanted {
            return;
        }
        let mut line = format!("[obs] {} {}", event.kind.tag(), event.name);
        for (k, v) in &event.fields {
            line.push_str(&format!(" {k}={v}"));
        }
        eprintln!("{line}");
    }
}

/// A machine-readable sink writing one JSON object per line
/// (`--telemetry <file.jsonl>`).
///
/// Each line carries `ts_us` (microseconds since the sink was created),
/// `kind`, `name`, and the event's fields.
#[derive(Debug)]
pub struct JsonlSink {
    out: BufWriter<File>,
    epoch: Instant,
    /// First write failure, latched so [`Sink::flush`] can report lines
    /// dropped by [`Sink::emit`] (which must never abort the run).
    write_error: Option<String>,
}

impl JsonlSink {
    /// Creates (truncating) the output file.
    ///
    /// # Errors
    ///
    /// Propagates the underlying file-creation failure.
    pub fn create(path: &Path) -> io::Result<JsonlSink> {
        Ok(JsonlSink {
            out: BufWriter::new(File::create(path)?),
            epoch: Instant::now(),
            write_error: None,
        })
    }
}

impl Sink for JsonlSink {
    fn emit(&mut self, event: &Event) {
        let mut pairs = vec![
            ("ts_us".to_string(), Json::u64(self.epoch.elapsed().as_micros() as u64)),
            ("kind".to_string(), Json::from(event.kind.tag())),
            ("name".to_string(), Json::from(event.name.as_str())),
        ];
        pairs.extend(event.fields.iter().cloned());
        // Telemetry must never abort the run; latch the first I/O error
        // for flush() to report instead.
        if let Err(e) = writeln!(self.out, "{}", Json::Obj(pairs)) {
            self.write_error.get_or_insert_with(|| e.to_string());
        }
    }

    fn flush(&mut self) -> Result<(), String> {
        if let Err(e) = self.out.flush() {
            self.write_error.get_or_insert_with(|| e.to_string());
        }
        match &self.write_error {
            Some(e) => Err(format!("telemetry write failed: {e}")),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex};

    /// Captures events for assertions.
    struct Capture(Arc<StdMutex<Vec<String>>>);

    impl Sink for Capture {
        fn emit(&mut self, event: &Event) {
            self.0.lock().unwrap().push(event.name.clone());
        }
    }

    #[test]
    fn emit_reaches_installed_sinks_and_skips_otherwise() {
        // Global sink state: keep this test self-contained.
        clear_sinks();
        let mut evaluated = false;
        emit_with(|| {
            evaluated = true;
            Event {
                kind: EventKind::Counter,
                name: "x".into(),
                fields: vec![],
            }
        });
        assert!(!evaluated, "closure must not run with no sinks");

        let seen = Arc::new(StdMutex::new(Vec::new()));
        add_sink(Box::new(Capture(seen.clone())));
        assert!(sinks_active());
        emit_with(|| Event {
            kind: EventKind::SpanEnd,
            name: "hello".into(),
            fields: vec![("dur_us".into(), Json::u64(5))],
        });
        clear_sinks();
        assert!(!sinks_active());
        assert_eq!(seen.lock().unwrap().as_slice(), ["hello".to_string()]);
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let dir = std::env::temp_dir().join("obs-jsonl-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        {
            let mut sink = JsonlSink::create(&path).unwrap();
            sink.emit(&Event {
                kind: EventKind::Record,
                name: "kernel".into(),
                fields: vec![("cycles".into(), Json::u64(42))],
            });
            sink.flush().unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let line = text.lines().next().unwrap();
        let v = Json::parse(line).unwrap();
        assert_eq!(v.get("kind").and_then(Json::as_str), Some("record"));
        assert_eq!(v.get("name").and_then(Json::as_str), Some("kernel"));
        assert_eq!(v.get("cycles").and_then(Json::as_f64), Some(42.0));
        std::fs::remove_file(&path).ok();
    }
}

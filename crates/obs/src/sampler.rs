//! Self-tuning epoch sampler with a fixed sample budget.
//!
//! [`AdaptiveSampler`] replaces a fixed-period ring buffer for
//! timeline-style telemetry. A ring keeps the *last* `capacity`
//! samples, so a long run silently loses its entire ramp-up; a fixed
//! period keeps everything, so memory grows with run length. The
//! adaptive sampler keeps memory bounded **and** the whole run visible:
//!
//! * It starts sampling at `base_period` (exact capture for short
//!   runs — every epoch boundary is retained as long as the run
//!   produces fewer than `budget` samples).
//! * When the retained set would exceed `budget`, it **decimates**:
//!   every other retained sample is dropped (even indices kept, so the
//!   first epoch always survives) and the sampling period doubles.
//!   Repeating this exponential backoff keeps the retained series an
//!   evenly spaced grid over the full run at no more than `budget`
//!   points.
//! * [`AdaptiveSampler::record_final`] pins the closing epoch of the
//!   run, so the last sample is never lost either.
//!
//! The sampler is driven purely by the caller's logical clock (cycle
//! counts), never wall time, so identical runs produce identical
//! sample series — the property every byte-stable manifest in this
//! workspace relies on.
//!
//! The payload type is generic: the simulator records raw cumulative
//! counters and derives windowed rates (e.g. DRAM utilization over the
//! inter-sample gap) after sampling, which stays exact under
//! decimation because the gaps are known from the retained cycles.

/// A budget-bounded, exponentially backing-off epoch sampler.
///
/// Samples are `(cycle, payload)` pairs with strictly increasing
/// cycles. See the [module docs](self) for the retention policy.
#[derive(Debug, Clone)]
pub struct AdaptiveSampler<T> {
    /// Initial sampling period (logical cycles); 0 disables sampling.
    base_period: u64,
    /// Maximum retained samples (at least 2 when enabled: the first
    /// and final epochs are always kept).
    budget: usize,
    /// Current period multiplier; doubles on every decimation.
    stride: u64,
    /// Next cycle at which a periodic sample is due.
    next_due: u64,
    /// Times the retained set was halved.
    decimations: u32,
    /// Samples discarded by decimation.
    dropped: u64,
    samples: Vec<(u64, T)>,
}

impl<T> AdaptiveSampler<T> {
    /// A sampler that starts at `base_period` and retains at most
    /// `budget` samples. `base_period == 0` disables sampling entirely;
    /// otherwise a `budget` below 2 is raised to 2 so the first and
    /// final epochs can both be retained.
    pub fn new(base_period: u64, budget: usize) -> AdaptiveSampler<T> {
        let budget = if base_period == 0 { budget } else { budget.max(2) };
        AdaptiveSampler {
            base_period,
            budget,
            stride: 1,
            next_due: base_period.max(1),
            decimations: 0,
            dropped: 0,
            samples: Vec::new(),
        }
    }

    /// Whether this sampler records anything at all.
    pub fn enabled(&self) -> bool {
        self.base_period > 0
    }

    /// The current effective sampling period
    /// (`base_period * 2^decimations`).
    pub fn period(&self) -> u64 {
        self.base_period.saturating_mul(self.stride)
    }

    /// The next cycle at which a periodic sample is due. Meaningless
    /// when disabled.
    pub fn next_due(&self) -> u64 {
        self.next_due
    }

    /// Whether a periodic sample is due at or before `cycle`. Callers
    /// loop `while s.is_due(cycle) { s.record_due(payload_at(s.next_due())) }`
    /// so jumped-over epochs each get their own sample.
    pub fn is_due(&self, cycle: u64) -> bool {
        self.enabled() && self.next_due <= cycle
    }

    /// Records the sample due at [`AdaptiveSampler::next_due`] and
    /// schedules the next one one effective period after the last
    /// *retained* sample. If this record overflowed the budget the set
    /// was just halved (possibly discarding this very sample) and the
    /// period doubled — scheduling off the retained tail is what keeps
    /// the series an evenly spaced grid.
    pub fn record_due(&mut self, payload: T) {
        debug_assert!(self.enabled(), "record_due on a disabled sampler");
        let cycle = self.next_due;
        self.push(cycle, payload);
        let last = self.samples.last().map_or(cycle, |&(c, _)| c);
        self.next_due = last.saturating_add(self.period());
    }

    /// Pins the closing epoch of the run at `cycle`. Ignored when
    /// disabled or when `cycle` does not advance past the last retained
    /// sample (cycles must stay strictly increasing). When the budget is
    /// full the last periodic sample — the one closest to the pin — is
    /// evicted to make room, never the head of the series.
    pub fn record_final(&mut self, cycle: u64, payload: T) {
        if !self.enabled() {
            return;
        }
        if self.samples.last().is_some_and(|&(c, _)| c >= cycle) {
            return;
        }
        if self.samples.len() >= self.budget {
            self.samples.pop();
            self.dropped += 1;
        }
        self.samples.push((cycle, payload));
    }

    fn push(&mut self, cycle: u64, payload: T) {
        self.samples.push((cycle, payload));
        if self.samples.len() > self.budget {
            // Halve: keep even indices so the first epoch survives and
            // the kept cycles remain an evenly spaced grid (the sample
            // pushed just above may itself be discarded; the caller
            // reschedules off the retained tail).
            let before = self.samples.len();
            let mut i = 0;
            self.samples.retain(|_| {
                let keep = i % 2 == 0;
                i += 1;
                keep
            });
            self.dropped += (before - self.samples.len()) as u64;
            self.stride = self.stride.saturating_mul(2);
            self.decimations += 1;
        }
    }

    /// Retained samples so far.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Times the retained set was halved (the effective period is
    /// `base_period << decimations`).
    pub fn decimations(&self) -> u32 {
        self.decimations
    }

    /// Samples discarded by decimation over the sampler's lifetime.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Consumes the sampler, returning the retained `(cycle, payload)`
    /// series, oldest first, cycles strictly increasing.
    pub fn into_samples(self) -> Vec<(u64, T)> {
        self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives the sampler like the simulator does: jump the clock to
    /// `end`, recording each due epoch, then pin the final epoch.
    fn drive(period: u64, budget: usize, end: u64) -> AdaptiveSampler<u64> {
        let mut s = AdaptiveSampler::new(period, budget);
        while s.is_due(end.saturating_sub(1)) {
            let c = s.next_due();
            s.record_due(c); // payload mirrors the cycle for checking
        }
        s.record_final(end, end);
        s
    }

    #[test]
    fn short_runs_are_captured_exactly() {
        let s = drive(10, 64, 55);
        let cycles: Vec<u64> = s.into_samples().iter().map(|&(c, _)| c).collect();
        // Every epoch boundary below the budget is retained, plus the
        // pinned final epoch.
        assert_eq!(cycles, vec![10, 20, 30, 40, 50, 55]);
    }

    #[test]
    fn budget_is_never_exceeded_and_period_backs_off() {
        let s = drive(10, 8, 100_000);
        assert!(s.len() <= 8, "retained {} > budget", s.len());
        assert!(s.decimations() > 0, "long run must decimate");
        assert_eq!(s.period(), 10 << s.decimations());
        assert!(s.dropped() > 0);
    }

    #[test]
    fn first_and_final_epochs_always_survive() {
        for end in [25_u64, 1_000, 99_999, 1_000_000] {
            let s = drive(10, 8, end);
            let samples = s.into_samples();
            assert_eq!(samples.first().map(|&(c, _)| c), Some(10), "end={end}");
            assert_eq!(samples.last().map(|&(c, _)| c), Some(end), "end={end}");
        }
    }

    #[test]
    fn cycles_are_strictly_increasing_and_payloads_preserved() {
        let samples = drive(7, 16, 123_456).into_samples();
        for w in samples.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
        for &(cycle, payload) in &samples {
            assert_eq!(cycle, payload, "payload travels with its cycle");
        }
    }

    #[test]
    fn decimated_grid_is_evenly_spaced() {
        let s = drive(10, 8, 10_000);
        let samples = s.into_samples();
        // All but the pinned final sample sit on a regular grid.
        let grid = &samples[..samples.len() - 1];
        if grid.len() >= 2 {
            let step = grid[1].0 - grid[0].0;
            for w in grid.windows(2) {
                assert_eq!(w[1].0 - w[0].0, step, "irregular grid: {samples:?}");
            }
        }
    }

    #[test]
    fn determinism_same_inputs_same_series() {
        let a = drive(10, 8, 987_654).into_samples();
        let b = drive(10, 8, 987_654).into_samples();
        assert_eq!(a, b);
    }

    #[test]
    fn disabled_sampler_records_nothing() {
        let mut s: AdaptiveSampler<u64> = AdaptiveSampler::new(0, 8);
        assert!(!s.enabled());
        assert!(!s.is_due(u64::MAX));
        s.record_final(100, 100);
        assert!(s.is_empty());
    }

    #[test]
    fn tiny_budget_is_raised_to_two() {
        let s = drive(10, 0, 1_000);
        assert!(!s.is_empty());
        assert!(s.len() <= 2);
        let samples = s.into_samples();
        assert_eq!(samples.last().map(|&(c, _)| c), Some(1_000));
    }

    #[test]
    fn record_final_never_duplicates_a_cycle() {
        let mut s = AdaptiveSampler::new(10, 64);
        while s.is_due(100) {
            let c = s.next_due();
            s.record_due(c);
        }
        let len = s.len();
        assert_eq!(s.into_samples().last().map(|&(c, _)| c), Some(100));
        let mut s = AdaptiveSampler::new(10, 64);
        while s.is_due(100) {
            let c = s.next_due();
            s.record_due(c);
        }
        s.record_final(100, 100); // boundary already sampled at 100
        assert_eq!(s.len(), len);
    }
}

//! Noise-aware perf-regression gating over `BENCH_*.json` artifacts.
//!
//! [`compare`] flattens the numeric leaves of two JSON documents
//! (baseline vs current) into dotted metric paths, classifies each
//! metric's *direction* from its name (`*_s`/`*_us`/`overhead*` regress
//! upward, `speedup*`/`*throughput*`/`*efficiency*` regress downward,
//! unknown metrics are informational), and applies a threshold test per
//! metric:
//!
//! * the relative change must exceed the tolerance, **and**
//! * the absolute change must exceed a floor (so nanosecond jitter on
//!   a near-zero metric never trips the gate).
//!
//! The tolerance is noise-aware: when either document carries a
//! top-level `noise_pct` field (the telemetry-overhead bench records
//! its own re-run noise there), the effective tolerance is widened to
//! `noise_multiplier` times the larger observed noise. Identical
//! documents therefore always pass, and a genuine regression has to
//! clear both the static tolerance and the measured noise band.
//!
//! [`GateReport::table`] renders the human-readable delta table CI
//! prints on failure; [`GateReport::to_json`] is the machine-readable
//! gate report artifact.

use crate::json::Json;

/// Which way a metric regresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Larger is worse (durations, overheads, drop/miss counts).
    LowerIsBetter,
    /// Smaller is worse (speedups, throughputs, hit rates).
    HigherIsBetter,
    /// Direction unknown from the name: reported, never gated.
    Informational,
}

impl Direction {
    fn label(self) -> &'static str {
        match self {
            Direction::LowerIsBetter => "lower-is-better",
            Direction::HigherIsBetter => "higher-is-better",
            Direction::Informational => "informational",
        }
    }
}

/// Infers a metric's direction from the last segment of its dotted
/// path. Conservative: anything unrecognized is informational.
pub fn direction_of(path: &str) -> Direction {
    let last = path.rsplit('.').next().unwrap_or(path).to_ascii_lowercase();
    let higher = [
        "speedup",
        "throughput",
        "ipc",
        "hit_rate",
        "identical",
        "ok",
        "passed",
        "efficiency",
    ];
    if higher.iter().any(|t| last.contains(t)) {
        return Direction::HigherIsBetter;
    }
    let lower_suffix = ["_s", "_us", "_ms", "_ns", "_cycles"];
    let lower_substr = ["overhead", "latency", "time", "dropped", "miss", "corrupt", "retry"];
    if lower_suffix.iter().any(|t| last.ends_with(t))
        || lower_substr.iter().any(|t| last.contains(t))
    {
        return Direction::LowerIsBetter;
    }
    Direction::Informational
}

/// Threshold policy for [`compare`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GatePolicy {
    /// Minimum relative change (percent) considered significant.
    pub rel_tolerance_pct: f64,
    /// Multiplier applied to an artifact's self-reported `noise_pct`
    /// when widening the tolerance.
    pub noise_multiplier: f64,
    /// Minimum absolute change (in the metric's own unit) considered
    /// significant.
    pub abs_floor: f64,
}

impl Default for GatePolicy {
    fn default() -> GatePolicy {
        GatePolicy {
            rel_tolerance_pct: 10.0,
            noise_multiplier: 3.0,
            abs_floor: 1e-6,
        }
    }
}

/// One metric's baseline/current comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// Dotted metric path.
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// Signed relative change in percent (`(current - baseline) /
    /// |baseline| * 100`; 0 when the baseline is 0 and nothing moved,
    /// ±100 when it moved off a zero baseline).
    pub change_pct: f64,
    /// Direction the metric was classified under.
    pub direction: Direction,
    /// Effective tolerance (percent) the test used.
    pub tolerance_pct: f64,
    /// Whether the change is a statistically significant regression.
    pub regressed: bool,
}

/// The full gate verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct GateReport {
    /// Per-metric deltas, sorted by metric path.
    pub deltas: Vec<Delta>,
    /// Metrics present only in the baseline.
    pub only_baseline: Vec<String>,
    /// Metrics present only in the current document.
    pub only_current: Vec<String>,
    /// The larger of the two documents' self-reported `noise_pct`
    /// (0 when neither reports one).
    pub noise_pct: f64,
}

impl GateReport {
    /// Whether the gate passes (no significant regression).
    pub fn passed(&self) -> bool {
        self.regressions() == 0
    }

    /// Number of significant regressions.
    pub fn regressions(&self) -> usize {
        self.deltas.iter().filter(|d| d.regressed).count()
    }

    /// Renders the human-readable delta table.
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<42} {:>14} {:>14} {:>9} {:>8}  verdict\n",
            "metric", "baseline", "current", "delta", "tol"
        ));
        for d in &self.deltas {
            let verdict = if d.regressed {
                "REGRESSED"
            } else if d.direction == Direction::Informational {
                "info"
            } else {
                "ok"
            };
            out.push_str(&format!(
                "{:<42} {:>14.6} {:>14.6} {:>+8.2}% {:>7.2}%  {}\n",
                d.metric, d.baseline, d.current, d.change_pct, d.tolerance_pct, verdict
            ));
        }
        for m in &self.only_baseline {
            out.push_str(&format!("{m:<42} (removed: present only in baseline)\n"));
        }
        for m in &self.only_current {
            out.push_str(&format!("{m:<42} (added: present only in current)\n"));
        }
        out.push_str(&format!(
            "gate: {} metric(s), {} regression(s), noise band {:.2}%\n",
            self.deltas.len(),
            self.regressions(),
            self.noise_pct
        ));
        out
    }

    /// Serializes the report (schema `rodinia-repro.gate/v1`).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", Json::from("rodinia-repro.gate/v1")),
            ("passed", Json::Bool(self.passed())),
            ("regressions", Json::u64(self.regressions() as u64)),
            ("noise_pct", Json::Num(self.noise_pct)),
            (
                "deltas",
                Json::Arr(
                    self.deltas
                        .iter()
                        .map(|d| {
                            Json::obj(vec![
                                ("metric", Json::from(d.metric.as_str())),
                                ("baseline", Json::Num(d.baseline)),
                                ("current", Json::Num(d.current)),
                                ("change_pct", Json::Num(d.change_pct)),
                                ("direction", Json::from(d.direction.label())),
                                ("tolerance_pct", Json::Num(d.tolerance_pct)),
                                ("regressed", Json::Bool(d.regressed)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "only_baseline",
                Json::from(self.only_baseline.iter().map(|m| Json::from(m.as_str())).collect::<Vec<_>>()),
            ),
            (
                "only_current",
                Json::from(self.only_current.iter().map(|m| Json::from(m.as_str())).collect::<Vec<_>>()),
            ),
        ])
    }
}

/// Collects every numeric (and boolean, as 0/1) leaf of `doc` into
/// dotted-path metrics. Array elements are addressed as `path[i]`; the
/// `schema` tag is skipped.
fn flatten(prefix: &str, doc: &Json, out: &mut Vec<(String, f64)>) {
    match doc {
        Json::Num(n) => out.push((prefix.to_string(), *n)),
        Json::Bool(b) => out.push((prefix.to_string(), f64::from(u8::from(*b)))),
        Json::Obj(pairs) => {
            for (k, v) in pairs {
                if prefix.is_empty() && k == "schema" {
                    continue;
                }
                let path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten(&path, v, out);
            }
        }
        Json::Arr(items) => {
            for (i, v) in items.iter().enumerate() {
                flatten(&format!("{prefix}[{i}]"), v, out);
            }
        }
        Json::Null | Json::Str(_) => {}
    }
}

fn metric_map(doc: &Json) -> std::collections::BTreeMap<String, f64> {
    let mut flat = Vec::new();
    flatten("", doc, &mut flat);
    flat.into_iter().collect()
}

/// Compares two benchmark artifacts under `policy`.
///
/// Deterministic: metrics are sorted by path and no global state is
/// consulted. Identical documents always produce a passing report.
pub fn compare(baseline: &Json, current: &Json, policy: &GatePolicy) -> GateReport {
    let base = metric_map(baseline);
    let cur = metric_map(current);
    let self_noise = |doc: &Json| {
        doc.get("noise_pct")
            .and_then(Json::as_f64)
            .map_or(0.0, f64::abs)
    };
    let noise_pct = self_noise(baseline).max(self_noise(current));
    let tolerance_pct = policy
        .rel_tolerance_pct
        .max(policy.noise_multiplier * noise_pct);

    let mut deltas = Vec::new();
    let mut only_baseline = Vec::new();
    let mut only_current: Vec<String> = cur.keys().filter(|k| !base.contains_key(*k)).cloned().collect();
    only_current.sort();
    for (metric, &b) in &base {
        let Some(&c) = cur.get(metric) else {
            only_baseline.push(metric.clone());
            continue;
        };
        let direction = direction_of(metric);
        let change = c - b;
        let change_pct = if b.abs() > 0.0 {
            change / b.abs() * 100.0
        } else if change == 0.0 {
            0.0
        } else {
            100.0 * change.signum()
        };
        // The metric's own noise band never gates itself.
        let gated = direction != Direction::Informational && metric != "noise_pct";
        let bad = match direction {
            Direction::LowerIsBetter => change,
            Direction::HigherIsBetter => -change,
            Direction::Informational => 0.0,
        };
        let regressed = gated
            && bad > policy.abs_floor
            && (if b.abs() > 0.0 {
                bad / b.abs() * 100.0 > tolerance_pct
            } else {
                true // moved off a zero baseline in the bad direction
            });
        deltas.push(Delta {
            metric: metric.clone(),
            baseline: b,
            current: c,
            change_pct,
            direction,
            tolerance_pct,
            regressed,
        });
    }
    GateReport {
        deltas,
        only_baseline,
        only_current,
        noise_pct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(pairs: &[(&str, f64)]) -> Json {
        Json::Obj(
            pairs
                .iter()
                .map(|&(k, v)| (k.to_string(), Json::Num(v)))
                .collect(),
        )
    }

    #[test]
    fn identical_documents_always_pass() {
        let d = doc(&[("engine_jobs4_s", 1.5), ("speedup_vs_seed", 2.1)]);
        let r = compare(&d, &d.clone(), &GatePolicy::default());
        assert!(r.passed());
        assert_eq!(r.regressions(), 0);
        assert!(r.deltas.iter().all(|x| x.change_pct == 0.0));
    }

    #[test]
    fn injected_regression_fails() {
        let base = doc(&[("engine_jobs4_s", 1.0), ("speedup_vs_seed", 2.0)]);
        let slow = doc(&[("engine_jobs4_s", 1.5), ("speedup_vs_seed", 2.0)]);
        let r = compare(&base, &slow, &GatePolicy::default());
        assert!(!r.passed());
        let d = r.deltas.iter().find(|d| d.metric == "engine_jobs4_s").unwrap();
        assert!(d.regressed);
        assert!((d.change_pct - 50.0).abs() < 1e-9);
        assert!(r.table().contains("REGRESSED"));
    }

    #[test]
    fn direction_awareness_speedup_drop_fails_duration_drop_passes() {
        let base = doc(&[("engine_jobs4_s", 1.0), ("speedup_vs_seed", 2.0)]);
        let cur = doc(&[("engine_jobs4_s", 0.5), ("speedup_vs_seed", 1.0)]);
        let r = compare(&base, &cur, &GatePolicy::default());
        assert_eq!(r.regressions(), 1);
        let d = r.deltas.iter().find(|d| d.metric == "speedup_vs_seed").unwrap();
        assert!(d.regressed, "halved speedup is a regression");
        let d = r.deltas.iter().find(|d| d.metric == "engine_jobs4_s").unwrap();
        assert!(!d.regressed, "a faster run is an improvement");
    }

    #[test]
    fn tolerance_absorbs_small_changes() {
        let base = doc(&[("wall_s", 1.00)]);
        let cur = doc(&[("wall_s", 1.05)]);
        assert!(compare(&base, &cur, &GatePolicy::default()).passed());
        let cur = doc(&[("wall_s", 1.11)]);
        assert!(!compare(&base, &cur, &GatePolicy::default()).passed());
    }

    #[test]
    fn abs_floor_ignores_nanosecond_jitter() {
        let base = doc(&[("tiny_s", 1e-9)]);
        let cur = doc(&[("tiny_s", 5e-9)]); // +400%, but absolutely nothing
        assert!(compare(&base, &cur, &GatePolicy::default()).passed());
    }

    #[test]
    fn self_reported_noise_widens_the_tolerance() {
        let mut base = doc(&[("hotspot_us", 100.0)]);
        let cur = doc(&[("hotspot_us", 118.0)]);
        // Without a noise band, +18% > 10% tolerance fails.
        assert!(!compare(&base, &cur, &GatePolicy::default()).passed());
        // With a 7% measured noise band, tolerance widens to 21%.
        if let Json::Obj(pairs) = &mut base {
            pairs.push(("noise_pct".to_string(), Json::Num(7.0)));
        }
        let r = compare(&base, &cur, &GatePolicy::default());
        assert!(r.passed());
        assert!((r.noise_pct - 7.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_metrics_are_informational() {
        let base = doc(&[("mystery_quantity", 1.0)]);
        let cur = doc(&[("mystery_quantity", 100.0)]);
        let r = compare(&base, &cur, &GatePolicy::default());
        assert!(r.passed());
        assert_eq!(r.deltas[0].direction, Direction::Informational);
    }

    #[test]
    fn added_and_removed_metrics_are_reported_not_gated() {
        let base = doc(&[("old_s", 1.0), ("both_s", 1.0)]);
        let cur = doc(&[("new_s", 9.0), ("both_s", 1.0)]);
        let r = compare(&base, &cur, &GatePolicy::default());
        assert!(r.passed());
        assert_eq!(r.only_baseline, vec!["old_s".to_string()]);
        assert_eq!(r.only_current, vec!["new_s".to_string()]);
    }

    #[test]
    fn nested_and_boolean_leaves_flatten() {
        let base = Json::obj(vec![
            ("schema", Json::from("x/v1")),
            ("tables_byte_identical", Json::Bool(true)),
            (
                "inner",
                Json::obj(vec![("run_s", Json::Num(1.0))]),
            ),
            ("series", Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)])),
        ]);
        let mut cur = base.clone();
        if let Json::Obj(pairs) = &mut cur {
            pairs[1].1 = Json::Bool(false); // identity bit flips
        }
        let r = compare(&base, &cur, &GatePolicy::default());
        assert!(!r.passed(), "identity bit is higher-is-better");
        assert!(r.deltas.iter().any(|d| d.metric == "inner.run_s"));
        assert!(r.deltas.iter().any(|d| d.metric == "series[0]"));
        assert!(!r.deltas.iter().any(|d| d.metric == "schema"));
    }

    #[test]
    fn zero_baseline_regression_in_bad_direction_fails() {
        let base = doc(&[("dropped", 0.0)]);
        let cur = doc(&[("dropped", 50.0)]);
        let r = compare(&base, &cur, &GatePolicy::default());
        assert!(!r.passed());
        assert_eq!(r.deltas[0].change_pct, 100.0);
    }

    #[test]
    fn report_json_round_trips() {
        let base = doc(&[("run_s", 1.0)]);
        let cur = doc(&[("run_s", 2.0)]);
        let r = compare(&base, &cur, &GatePolicy::default());
        let text = r.to_json().to_string();
        let doc = Json::parse(&text).expect("parses");
        assert_eq!(doc.get("passed"), Some(&Json::Bool(false)));
        assert_eq!(doc.get("regressions").and_then(Json::as_f64), Some(1.0));
    }

    #[test]
    fn direction_classification() {
        assert_eq!(direction_of("engine_jobs4_s"), Direction::LowerIsBetter);
        assert_eq!(direction_of("a.b.overhead_pct"), Direction::LowerIsBetter);
        assert_eq!(direction_of("speedup_vs_seed"), Direction::HigherIsBetter);
        assert_eq!(direction_of("telemetry.wall_us"), Direction::LowerIsBetter);
        assert_eq!(direction_of("store.miss"), Direction::LowerIsBetter);
        assert_eq!(direction_of("seed"), Direction::Informational);
    }
}

//! A bounded buffer of structured records for run manifests.
//!
//! The manifest writer (`repro --json`) cannot thread a collector through
//! every layer of the stack, so instrumentation sites publish records
//! here instead: [`record_with`] is a no-op (one relaxed atomic load)
//! unless recording was switched on with [`set_recording`] or a sink is
//! installed. The buffer is bounded; once full, new records are counted
//! as dropped rather than growing without limit.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::json::Json;
use crate::sink::{emit_with, sinks_active, Event, EventKind};

/// Upper bound on buffered records (a full `repro all` run produces a
/// few thousand).
pub const MAX_RECORDS: usize = 65_536;

/// One buffered record.
#[derive(Debug, Clone)]
pub struct Record {
    /// Record kind (e.g. `kernel_stats`).
    pub kind: String,
    /// Structured payload.
    pub value: Json,
}

static RECORDING: AtomicBool = AtomicBool::new(false);
static DROPPED: AtomicU64 = AtomicU64::new(0);
static RECORDS: Mutex<Vec<Record>> = Mutex::new(Vec::new());

/// Turns record buffering on or off.
pub fn set_recording(on: bool) {
    RECORDING.store(on, Ordering::Relaxed);
}

/// Whether records are currently being buffered.
pub fn recording() -> bool {
    RECORDING.load(Ordering::Relaxed)
}

/// Publishes a record of `kind` built by `build`. The closure is only
/// evaluated when recording is on or a sink is installed; the value goes
/// to the buffer (bounded) and to sinks as a [`EventKind::Record`] event.
pub fn record_with(kind: &str, build: impl FnOnce() -> Json) {
    let buffering = recording();
    if !buffering && !sinks_active() {
        return;
    }
    let value = build();
    if buffering {
        let mut g = RECORDS.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if g.len() < MAX_RECORDS {
            g.push(Record {
                kind: kind.to_string(),
                value: value.clone(),
            });
        } else {
            DROPPED.fetch_add(1, Ordering::Relaxed);
        }
    }
    // The payload always nests under one "value" field: flattening an
    // object payload could collide with the envelope's reserved keys
    // (ts_us/kind/name).
    emit_with(|| Event {
        kind: EventKind::Record,
        name: kind.to_string(),
        fields: vec![("value".to_string(), value)],
    });
}

/// Drains every buffered record, returning them together with the count
/// of records dropped since the last drain.
pub fn drain_records() -> (Vec<Record>, u64) {
    let mut g = RECORDS.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let records = std::mem::take(&mut *g);
    let dropped = DROPPED.swap(0, Ordering::Relaxed);
    (records, dropped)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_only_buffer_while_recording() {
        // Global state: drain whatever other tests left behind first.
        set_recording(false);
        crate::sink::clear_sinks();
        let _ = drain_records();

        let mut evaluated = false;
        record_with("t", || {
            evaluated = true;
            Json::Null
        });
        assert!(!evaluated, "closure must not run while disabled");

        set_recording(true);
        record_with("t", || Json::obj(vec![("x", Json::u64(1))]));
        set_recording(false);
        let (records, dropped) = drain_records();
        assert_eq!(dropped, 0);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].kind, "t");
        assert_eq!(records[0].value.get("x").and_then(Json::as_f64), Some(1.0));
        // Drained: buffer is empty now.
        assert!(drain_records().0.is_empty());
    }
}

//! Critical-path attribution over per-kernel cycle accounting.
//!
//! The simulator already proves *where every SM cycle went* (a named
//! component breakdown that sums exactly to the per-SM cycle budget)
//! and *when* (an epoch-sampled occupancy/DRAM timeline). This module
//! is the consumer: it turns those raw attributions into a ranked
//! bottleneck analysis — per kernel, the dominant stall chain and the
//! what-if payoff of removing each component ("`lud` is barrier-bound;
//! removing barrier stalls would cut 34% of cycles") — and, across a
//! suite, which components dominate how many kernels and how much of
//! the total cycle budget they hold.
//!
//! The module is generic on purpose: components are `(name, cycles,
//! removable)` triples and timeline points are `(cycle, occupancy,
//! dram_util)`, so `obs` stays dependency-free and any layer (GPU
//! stall breakdowns today, CPU cache-stall profiles tomorrow) can feed
//! it. **Conservation is first-class**: the analysis never invents or
//! loses cycles — [`KernelCritPath::attributed`] is exactly the sum of
//! the input components, which callers assert against their own
//! invariant (for the GPU engine, `num_sms * cycles`).
//!
//! Every output is deterministic: ranking ties break lexicographically
//! and no wall-clock state is consulted, so a written
//! `CRITPATH_manifest.json` is byte-stable across runs.

use crate::json::Json;

/// One named slice of a kernel's cycle budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Component {
    /// Component name (e.g. `barrier`, `mem_pending`).
    pub name: String,
    /// Cycles attributed to this component.
    pub cycles: u64,
    /// Whether removing the component is meaningful: stall classes
    /// are removable; useful-work classes (issue-port busy) are not
    /// and are excluded from bottleneck rankings.
    pub removable: bool,
}

/// One timeline point used to locate *when* a kernel is bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplePoint {
    /// Logical cycle of the sample.
    pub cycle: u64,
    /// Warp occupancy in `[0, 1]` at that cycle.
    pub occupancy: f64,
    /// DRAM utilization in `[0, 1]` over the window ending at that
    /// cycle.
    pub dram_util: f64,
}

/// The raw attribution input for one kernel (or benchmark).
#[derive(Debug, Clone, PartialEq)]
pub struct KernelAttribution {
    /// Kernel or benchmark name.
    pub name: String,
    /// Configuration label the cycles were measured under.
    pub config: String,
    /// Wall cycles of the launch (context only; the per-component
    /// budget is `attributed`, which is `num_sms` times larger for a
    /// multi-SM machine).
    pub cycles: u64,
    /// The full cycle accounting; must cover the budget exactly.
    pub components: Vec<Component>,
    /// Occupancy/DRAM timeline, oldest first.
    pub samples: Vec<SamplePoint>,
}

/// One link of a kernel's dominant stall chain.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainLink {
    /// Component name.
    pub component: String,
    /// Cycles held by the component.
    pub cycles: u64,
    /// Share of the kernel's attributed budget in `[0, 1]`; removing
    /// the component would cut at most this fraction of cycles.
    pub fraction: f64,
}

/// Where the timeline bottoms out (deepest occupancy dip) and peaks
/// (highest DRAM pressure).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hotspot {
    /// Index of the deepest-occupancy sample in the input series.
    pub dip_index: usize,
    /// Cycle of the deepest occupancy dip.
    pub dip_cycle: u64,
    /// Occupancy at the dip.
    pub dip_occupancy: f64,
    /// Cycle of the highest DRAM utilization.
    pub peak_dram_cycle: u64,
    /// DRAM utilization at that peak.
    pub peak_dram_util: f64,
}

/// The per-kernel analysis result.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelCritPath {
    /// Kernel or benchmark name.
    pub name: String,
    /// Configuration label.
    pub config: String,
    /// Wall cycles of the launch.
    pub cycles: u64,
    /// Sum of all input components — the conservation anchor. Equals
    /// the caller's cycle budget when the input attribution is sound.
    pub attributed: u64,
    /// Removable components, largest first (ties lexicographic),
    /// truncated to the requested `top_k`.
    pub chain: Vec<ChainLink>,
    /// The head of `chain`, when any removable component holds cycles.
    pub dominant: Option<ChainLink>,
    /// Timeline hotspot, when any sample was provided.
    pub hotspot: Option<Hotspot>,
    /// One-line human verdict, deterministic.
    pub summary: String,
}

/// Suite-wide standing of one removable component.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteRank {
    /// Component name.
    pub component: String,
    /// Cycles the component holds summed over all kernels.
    pub cycles: u64,
    /// Share of the whole suite's attributed budget in `[0, 1]`.
    pub share: f64,
    /// Number of kernels where this component is the dominant
    /// bottleneck.
    pub dominates: usize,
}

/// The full critical-path report for a set of kernels.
#[derive(Debug, Clone, PartialEq)]
pub struct CritPath {
    /// Chain depth the analysis was asked for.
    pub top_k: usize,
    /// Per-kernel results, in input order.
    pub kernels: Vec<KernelCritPath>,
    /// Suite-wide component ranking, largest total first (ties
    /// lexicographic).
    pub ranking: Vec<SuiteRank>,
}

/// Analyzes a set of kernel attributions into a [`CritPath`] report.
///
/// `top_k` bounds the per-kernel chain depth (0 is treated as 1). The
/// output is a pure function of the input: no clocks, no global state.
pub fn analyze(kernels: &[KernelAttribution], top_k: usize) -> CritPath {
    let top_k = top_k.max(1);
    let per_kernel: Vec<KernelCritPath> =
        kernels.iter().map(|k| analyze_kernel(k, top_k)).collect();

    // Suite ranking over removable components only.
    let mut totals: std::collections::BTreeMap<&str, (u64, usize)> =
        std::collections::BTreeMap::new();
    let mut suite_budget = 0u64;
    for (k, r) in kernels.iter().zip(&per_kernel) {
        suite_budget += r.attributed;
        for c in &k.components {
            if c.removable {
                totals.entry(c.name.as_str()).or_insert((0, 0)).0 += c.cycles;
            }
        }
        if let Some(d) = &r.dominant {
            totals.entry(d.component.as_str()).or_insert((0, 0)).1 += 1;
        }
    }
    let mut ranking: Vec<SuiteRank> = totals
        .into_iter()
        .map(|(name, (cycles, dominates))| SuiteRank {
            component: name.to_string(),
            cycles,
            share: if suite_budget == 0 {
                0.0
            } else {
                cycles as f64 / suite_budget as f64
            },
            dominates,
        })
        .collect();
    ranking.sort_by(|a, b| b.cycles.cmp(&a.cycles).then(a.component.cmp(&b.component)));

    CritPath {
        top_k,
        kernels: per_kernel,
        ranking,
    }
}

fn analyze_kernel(k: &KernelAttribution, top_k: usize) -> KernelCritPath {
    let attributed: u64 = k.components.iter().map(|c| c.cycles).sum();
    let mut removable: Vec<&Component> = k.components.iter().filter(|c| c.removable).collect();
    removable.sort_by(|a, b| b.cycles.cmp(&a.cycles).then(a.name.cmp(&b.name)));
    let chain: Vec<ChainLink> = removable
        .iter()
        .take(top_k)
        .map(|c| ChainLink {
            component: c.name.clone(),
            cycles: c.cycles,
            fraction: if attributed == 0 {
                0.0
            } else {
                c.cycles as f64 / attributed as f64
            },
        })
        .collect();
    let dominant = chain.first().filter(|l| l.cycles > 0).cloned();
    let hotspot = hotspot_of(&k.samples);
    let summary = summarize(k, attributed, dominant.as_ref(), hotspot.as_ref());
    KernelCritPath {
        name: k.name.clone(),
        config: k.config.clone(),
        cycles: k.cycles,
        attributed,
        chain,
        dominant,
        hotspot,
        summary,
    }
}

fn hotspot_of(samples: &[SamplePoint]) -> Option<Hotspot> {
    if samples.is_empty() {
        return None;
    }
    // Strict inequalities: the earliest extreme wins, deterministically.
    let mut dip = 0;
    let mut peak = 0;
    for (i, s) in samples.iter().enumerate() {
        if s.occupancy < samples[dip].occupancy {
            dip = i;
        }
        if s.dram_util > samples[peak].dram_util {
            peak = i;
        }
    }
    Some(Hotspot {
        dip_index: dip,
        dip_cycle: samples[dip].cycle,
        dip_occupancy: samples[dip].occupancy,
        peak_dram_cycle: samples[peak].cycle,
        peak_dram_util: samples[peak].dram_util,
    })
}

fn summarize(
    k: &KernelAttribution,
    attributed: u64,
    dominant: Option<&ChainLink>,
    hotspot: Option<&Hotspot>,
) -> String {
    let Some(d) = dominant else {
        return format!("{}: no removable stall cycles attributed", k.name);
    };
    let mut s = format!(
        "{} is {}-bound: removing {} stalls would cut up to {:.1}% of cycles \
         ({} of {} attributed SM cycles)",
        k.name,
        d.component,
        d.component,
        d.fraction * 100.0,
        d.cycles,
        attributed
    );
    if let Some(h) = hotspot {
        s.push_str(&format!(
            "; occupancy dips to {:.1}% at cycle {} (sample {})",
            h.dip_occupancy * 100.0,
            h.dip_cycle,
            h.dip_index
        ));
    }
    s
}

impl ChainLink {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("component", Json::from(self.component.as_str())),
            ("cycles", Json::u64(self.cycles)),
            ("fraction", Json::Num(self.fraction)),
        ])
    }
}

impl KernelCritPath {
    /// Serializes this kernel's analysis as a JSON object.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("name", Json::from(self.name.as_str())),
            ("config", Json::from(self.config.as_str())),
            ("cycles", Json::u64(self.cycles)),
            ("attributed_sm_cycles", Json::u64(self.attributed)),
            (
                "chain",
                Json::Arr(self.chain.iter().map(ChainLink::to_json).collect()),
            ),
            (
                "dominant",
                self.dominant.as_ref().map_or(Json::Null, ChainLink::to_json),
            ),
        ];
        if let Some(h) = &self.hotspot {
            pairs.push((
                "hotspot",
                Json::obj(vec![
                    ("dip_index", Json::u64(h.dip_index as u64)),
                    ("dip_cycle", Json::u64(h.dip_cycle)),
                    ("dip_occupancy", Json::Num(h.dip_occupancy)),
                    ("peak_dram_cycle", Json::u64(h.peak_dram_cycle)),
                    ("peak_dram_util", Json::Num(h.peak_dram_util)),
                ]),
            ));
        }
        pairs.push(("summary", Json::from(self.summary.as_str())));
        Json::obj(pairs)
    }
}

impl CritPath {
    /// Serializes the whole report (kernels plus suite ranking) as a
    /// JSON object. Deterministic: same input, same bytes.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("top_k", Json::u64(self.top_k as u64)),
            (
                "kernels",
                Json::Arr(self.kernels.iter().map(KernelCritPath::to_json).collect()),
            ),
            (
                "ranking",
                Json::Arr(
                    self.ranking
                        .iter()
                        .map(|r| {
                            Json::obj(vec![
                                ("component", Json::from(r.component.as_str())),
                                ("cycles", Json::u64(r.cycles)),
                                ("share", Json::Num(r.share)),
                                ("dominates", Json::u64(r.dominates as u64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Renders the per-kernel verdicts and the suite ranking as plain
    /// text lines (the `repro analyze` console output).
    pub fn render(&self) -> Vec<String> {
        let mut out: Vec<String> = self.kernels.iter().map(|k| k.summary.clone()).collect();
        if !self.ranking.is_empty() {
            out.push(String::new());
            out.push("suite bottleneck ranking:".to_string());
            for (i, r) in self.ranking.iter().enumerate() {
                out.push(format!(
                    "  {}. {:<14} {:>6.1}% of suite SM cycles, dominant in {} kernel(s)",
                    i + 1,
                    r.component,
                    r.share * 100.0,
                    r.dominates
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comp(name: &str, cycles: u64, removable: bool) -> Component {
        Component {
            name: name.to_string(),
            cycles,
            removable,
        }
    }

    fn kernel(name: &str, comps: Vec<Component>) -> KernelAttribution {
        KernelAttribution {
            name: name.to_string(),
            config: "cfg".to_string(),
            cycles: 100,
            components: comps,
            samples: vec![],
        }
    }

    #[test]
    fn attribution_is_conserved() {
        let k = kernel(
            "k",
            vec![
                comp("issue", 40, false),
                comp("barrier", 35, true),
                comp("mem_pending", 25, true),
            ],
        );
        let r = analyze(&[k], 3);
        assert_eq!(r.kernels[0].attributed, 100);
        let chain_total: u64 = r.kernels[0].chain.iter().map(|l| l.cycles).sum();
        assert_eq!(chain_total, 60, "chain holds exactly the removable cycles");
    }

    #[test]
    fn dominant_and_chain_order_with_tie_break() {
        let k = kernel(
            "k",
            vec![
                comp("b_stall", 30, true),
                comp("a_stall", 30, true),
                comp("c_stall", 10, true),
                comp("busy", 30, false),
            ],
        );
        let r = analyze(&[k], 2);
        let chain = &r.kernels[0].chain;
        assert_eq!(chain.len(), 2, "top_k truncates");
        // Tie on 30 cycles: lexicographic name order decides.
        assert_eq!(chain[0].component, "a_stall");
        assert_eq!(chain[1].component, "b_stall");
        assert_eq!(r.kernels[0].dominant.as_ref().unwrap().component, "a_stall");
        assert!((chain[0].fraction - 0.3).abs() < 1e-12);
    }

    #[test]
    fn busy_components_count_toward_attribution_but_not_ranking() {
        let k = kernel("k", vec![comp("busy", 90, false), comp("stall", 10, true)]);
        let r = analyze(std::slice::from_ref(&k), 3);
        assert_eq!(r.kernels[0].attributed, 100);
        assert_eq!(r.kernels[0].chain.len(), 1);
        assert_eq!(r.ranking.len(), 1);
        assert_eq!(r.ranking[0].component, "stall");
        assert!((r.ranking[0].share - 0.1).abs() < 1e-12);
    }

    #[test]
    fn suite_ranking_aggregates_and_counts_dominance() {
        let a = kernel("a", vec![comp("barrier", 60, true), comp("mem", 40, true)]);
        let b = kernel("b", vec![comp("barrier", 10, true), comp("mem", 90, true)]);
        let r = analyze(&[a, b], 3);
        assert_eq!(r.ranking[0].component, "mem");
        assert_eq!(r.ranking[0].cycles, 130);
        assert_eq!(r.ranking[0].dominates, 1);
        assert_eq!(r.ranking[1].component, "barrier");
        assert_eq!(r.ranking[1].dominates, 1);
        assert!((r.ranking[0].share - 130.0 / 200.0).abs() < 1e-12);
    }

    #[test]
    fn hotspot_finds_earliest_dip_and_peak() {
        let mut k = kernel("k", vec![comp("stall", 1, true)]);
        k.samples = vec![
            SamplePoint { cycle: 10, occupancy: 0.9, dram_util: 0.2 },
            SamplePoint { cycle: 20, occupancy: 0.1, dram_util: 0.8 },
            SamplePoint { cycle: 30, occupancy: 0.1, dram_util: 0.8 },
        ];
        let r = analyze(&[k], 1);
        let h = r.kernels[0].hotspot.unwrap();
        assert_eq!(h.dip_cycle, 20, "earliest dip wins");
        assert_eq!(h.dip_index, 1);
        assert_eq!(h.peak_dram_cycle, 20, "earliest peak wins");
    }

    #[test]
    fn zero_budget_kernel_is_safe() {
        let k = kernel("empty", vec![comp("stall", 0, true)]);
        let r = analyze(&[k], 3);
        assert_eq!(r.kernels[0].attributed, 0);
        assert!(r.kernels[0].dominant.is_none());
        assert!(r.kernels[0].summary.contains("no removable stall cycles"));
        assert_eq!(r.ranking[0].share, 0.0);
    }

    #[test]
    fn report_json_is_deterministic_and_parseable() {
        let mk = || {
            let mut k = kernel(
                "lud",
                vec![comp("barrier", 34, true), comp("issue", 66, false)],
            );
            k.samples = vec![SamplePoint { cycle: 12, occupancy: 0.03, dram_util: 0.5 }];
            analyze(&[k], 3)
        };
        let a = mk().to_json().to_string();
        let b = mk().to_json().to_string();
        assert_eq!(a, b);
        let doc = Json::parse(&a).expect("parses");
        let kernels = doc.get("kernels").and_then(Json::as_arr).unwrap();
        assert_eq!(
            kernels[0].get("attributed_sm_cycles").and_then(Json::as_f64),
            Some(100.0)
        );
        assert_eq!(
            kernels[0]
                .get("dominant")
                .and_then(|d| d.get("component"))
                .and_then(Json::as_str),
            Some("barrier")
        );
        assert!(kernels[0]
            .get("summary")
            .and_then(Json::as_str)
            .unwrap()
            .contains("barrier-bound"));
    }

    #[test]
    fn render_lists_kernels_then_ranking() {
        let k = kernel("bfs", vec![comp("mem_pending", 80, true), comp("issue", 20, false)]);
        let lines = analyze(&[k], 3).render();
        assert!(lines[0].contains("bfs is mem_pending-bound"));
        assert!(lines.iter().any(|l| l.contains("suite bottleneck ranking")));
    }
}

//! A minimal hand-rolled JSON value type with a serializer and parser.
//!
//! The repository is offline and dependency-free by policy, so manifests
//! and telemetry lines are produced (and, in tests, re-parsed) by this
//! module instead of serde. Object keys keep insertion order, which makes
//! serialized manifests deterministic and diff-friendly.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also used for non-finite floats, which JSON cannot carry).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; stored as `f64` like most JSON implementations.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: Vec<(K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// A number from an unsigned counter (lossless below 2^53).
    pub fn u64(v: u64) -> Json {
        Json::Num(v as f64)
    }

    /// Looks up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] with a byte offset on malformed input or
    /// trailing garbage.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::u64(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

fn write_num(f: &mut fmt::Formatter<'_>, v: f64) -> fmt::Result {
    if !v.is_finite() {
        // JSON has no NaN/inf; degrade to null rather than emit garbage.
        return f.write_str("null");
    }
    // Counters are exact integers; print them without a fraction so they
    // survive a round trip through integer-minded consumers.
    if v == v.trunc() && v.abs() < 9.007_199_254_740_992e15 {
        write!(f, "{}", v as i64)
    } else {
        write!(f, "{v}")
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(v) => write_num(f, *v),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// A parse failure: what went wrong and the byte offset where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub pos: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, lit: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.eat("null").map(|()| Json::Null),
            Some(b't') => self.eat("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat("false").map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.pos += 1; // '{'
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected `:`"));
            }
            self.pos += 1;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        if self.peek() != Some(b'"') {
            return Err(self.err("expected string"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.eat("\\u")?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid code point"))?
                            };
                            out.push(c);
                        }
                        Some(e) => {
                            out.push(match e {
                                b'"' => '"',
                                b'\\' => '\\',
                                b'/' => '/',
                                b'b' => '\u{8}',
                                b'f' => '\u{c}',
                                b'n' => '\n',
                                b'r' => '\r',
                                b't' => '\t',
                                _ => return Err(self.err("invalid escape")),
                            });
                            self.pos += 1;
                        }
                        None => return Err(self.err("unterminated escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 code point (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialize_basic_values() {
        let v = Json::obj(vec![
            ("name", Json::from("bfs")),
            ("cycles", Json::u64(123_456)),
            ("ipc", Json::Num(17.25)),
            ("ok", Json::Bool(true)),
            ("tags", Json::Arr(vec![Json::from("a"), Json::Null])),
        ]);
        assert_eq!(
            v.to_string(),
            r#"{"name":"bfs","cycles":123456,"ipc":17.25,"ok":true,"tags":["a",null]}"#
        );
    }

    #[test]
    fn escapes_control_characters() {
        let v = Json::from("a\"b\\c\nd\te\u{1}");
        assert_eq!(v.to_string(), r#""a\"b\\c\nd\te\u0001""#);
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn round_trip() {
        let v = Json::obj(vec![
            ("s", Json::from("hé\"llo\n")),
            ("n", Json::Num(-1.5e-3)),
            ("i", Json::u64(9_999_999)),
            (
                "nested",
                Json::Arr(vec![Json::obj(vec![("k", Json::Bool(false))]), Json::Null]),
            ),
        ]);
        let text = v.to_string();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = Json::parse(" { \"a\" : [ 1 , 2.5 , \"\\u0041\\ud83d\\ude00\" ] } ").unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[2].as_str(), Some("A😀"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"x": 3, "y": "z"}"#).unwrap();
        assert_eq!(v.get("x").and_then(Json::as_f64), Some(3.0));
        assert_eq!(v.get("y").and_then(Json::as_str), Some("z"));
        assert!(v.get("missing").is_none());
        assert!(v.as_obj().is_some());
        assert!(v.as_arr().is_none());
    }
}

//! # obs — zero-dependency observability for the Rodinia reproduction
//!
//! A small telemetry layer shared by every crate in the workspace:
//!
//! * **Spans** — [`span!`] opens an RAII [`Span`] timed on the monotonic
//!   clock; closing it folds the duration into the global [`Registry`]
//!   and notifies sinks.
//! * **Counters & gauges** — [`Registry::global`] accumulates named
//!   metrics from any crate (`simt` launches, `tracekit` profile event
//!   counts, …).
//! * **Sinks** — pluggable [`Sink`] consumers: [`TextSink`] prints to
//!   stderr when the `RODINIA_OBS` environment variable asks for it
//!   (see [`init_from_env`]), [`JsonlSink`] streams events to a
//!   `.jsonl` file (`repro --telemetry`). With no sink installed, every
//!   instrumentation site short-circuits on one relaxed atomic load.
//! * **Records** — [`record_with`] buffers structured payloads (per-launch
//!   [`KernelStats`](../simt/stats/struct.KernelStats.html) snapshots) in
//!   a bounded buffer that the run-manifest writer drains.
//! * **JSON** — a hand-rolled [`Json`] value type with serializer and
//!   parser, since the workspace is offline and serde-free by policy.
//! * **Analysis** — consumers that close the telemetry loop:
//!   [`critpath`] ranks where cycles went (dominant stall chains,
//!   what-if speedups, suite-wide bottleneck rankings), [`sampler`]
//!   keeps timeline memory and overhead flat with a budget-bounded
//!   adaptive sampler, and [`gate`] diffs two `BENCH_*.json` artifacts
//!   with a noise-aware threshold test for CI regression gating.
//!
//! The crate deliberately has **no dependencies**, not even workspace
//! ones, so every layer of the stack can use it without cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod critpath;
pub mod gate;
pub mod json;
pub mod record;
pub mod registry;
pub mod sampler;
pub mod sink;
pub mod span;

pub use json::{Json, JsonError};
pub use sampler::AdaptiveSampler;
pub use record::{drain_records, record_with, recording, set_recording, Record, MAX_RECORDS};
pub use registry::{Registry, SpanStat};
pub use sink::{
    add_sink, clear_sinks, emit_with, flush_sinks, init_from_env, sinks_active, Event, EventKind,
    JsonlSink, Sink, TextSink, ENV_VERBOSITY,
};
pub use span::{span_depth, span_path, Span};

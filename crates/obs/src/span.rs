//! RAII timing spans.
//!
//! A [`Span`] measures the wall-clock time between its creation and drop
//! on the monotonic clock ([`std::time::Instant`]), folds the duration
//! into the global [`Registry`], and — when sinks are
//! installed — emits `span_start` / `span_end` events.
//!
//! Each thread keeps its own stack of open spans, so nesting is tracked
//! per worker with no cross-thread locking: `span_start` events carry a
//! `depth` field (number of enclosing open spans on the emitting
//! thread), and [`span_depth`] / [`span_path`] expose the current
//! thread's stack to instrumentation sites.

use std::cell::RefCell;
use std::time::Instant;

use crate::json::Json;
use crate::registry::Registry;
use crate::sink::{emit_with, Event, EventKind};

thread_local! {
    /// Names of the spans currently open on this thread, outermost first.
    static STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Number of spans currently open on the calling thread.
pub fn span_depth() -> usize {
    STACK.with(|s| s.borrow().len())
}

/// The calling thread's open spans joined with `/`, outermost first
/// (e.g. `experiment.fig1/simt.replay`). Empty when no span is open.
pub fn span_path() -> String {
    STACK.with(|s| s.borrow().join("/"))
}

/// An open span; closes (and records itself) on drop.
#[derive(Debug)]
pub struct Span {
    name: String,
    start: Instant,
}

impl Span {
    /// Opens a span named `name`, pushing it onto the calling thread's
    /// span stack. The emitted `span_start` event carries the number of
    /// spans that were already open on this thread as its `depth` field.
    pub fn enter(name: impl Into<String>) -> Span {
        let name = name.into();
        let depth = STACK.with(|s| {
            let mut s = s.borrow_mut();
            s.push(name.clone());
            s.len() - 1
        });
        emit_with(|| Event {
            kind: EventKind::SpanStart,
            name: name.clone(),
            fields: vec![("depth".to_string(), Json::u64(depth as u64))],
        });
        Span {
            name,
            start: Instant::now(),
        }
    }

    /// The span's name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        // Pop the last stack entry with this span's name: spans usually
        // close LIFO, but a span moved across threads or dropped out of
        // order must not corrupt unrelated entries. A span dropped on a
        // thread other than the one that opened it finds no entry and
        // leaves that thread's stack untouched.
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            if let Some(i) = s.iter().rposition(|n| n == &self.name) {
                s.remove(i);
            }
        });
        let dur_us = self.start.elapsed().as_micros() as u64;
        Registry::global().record_span(&self.name, dur_us);
        emit_with(|| Event {
            kind: EventKind::SpanEnd,
            name: self.name.clone(),
            fields: vec![("dur_us".to_string(), Json::u64(dur_us))],
        });
    }
}

/// Opens a [`Span`] with a `format!`-style name; bind the result to keep
/// it open:
///
/// ```
/// let _span = obs::span!("experiment.{}", "fig1");
/// ```
#[macro_export]
macro_rules! span {
    ($($arg:tt)*) => {
        $crate::Span::enter(format!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_into_global_registry() {
        let name = "obs-test.span_records";
        {
            let _s = Span::enter(name);
        }
        {
            let _s = crate::span!("obs-test.{}", "span_records");
        }
        let stat = Registry::global().span_stat(name).unwrap();
        assert!(stat.count >= 2);
        assert!(stat.max_us <= stat.total_us);
    }

    #[test]
    fn stack_tracks_nesting_on_this_thread() {
        assert_eq!(span_depth(), 0);
        let _outer = Span::enter("obs-test.outer");
        assert_eq!(span_depth(), 1);
        assert_eq!(span_path(), "obs-test.outer");
        {
            let _inner = Span::enter("obs-test.inner");
            assert_eq!(span_depth(), 2);
            assert_eq!(span_path(), "obs-test.outer/obs-test.inner");
        }
        assert_eq!(span_depth(), 1);
        assert_eq!(span_path(), "obs-test.outer");
    }

    #[test]
    fn out_of_order_drop_pops_the_matching_entry() {
        let a = Span::enter("obs-test.a");
        let b = Span::enter("obs-test.b");
        drop(a);
        assert_eq!(span_path(), "obs-test.b");
        drop(b);
        assert_eq!(span_depth(), 0);
    }

    #[test]
    fn stacks_are_per_thread() {
        let _outer = Span::enter("obs-test.main-thread");
        std::thread::scope(|s| {
            s.spawn(|| {
                assert_eq!(span_depth(), 0, "fresh thread starts empty");
                let _t = Span::enter("obs-test.worker");
                assert_eq!(span_path(), "obs-test.worker");
            });
        });
        assert_eq!(span_path(), "obs-test.main-thread");
    }
}

//! RAII timing spans.
//!
//! A [`Span`] measures the wall-clock time between its creation and drop
//! on the monotonic clock ([`std::time::Instant`]), folds the duration
//! into the global [`Registry`](crate::Registry), and — when sinks are
//! installed — emits `span_start` / `span_end` events.

use std::time::Instant;

use crate::json::Json;
use crate::registry::Registry;
use crate::sink::{emit_with, Event, EventKind};

/// An open span; closes (and records itself) on drop.
#[derive(Debug)]
pub struct Span {
    name: String,
    start: Instant,
}

impl Span {
    /// Opens a span named `name`.
    pub fn enter(name: impl Into<String>) -> Span {
        let name = name.into();
        emit_with(|| Event {
            kind: EventKind::SpanStart,
            name: name.clone(),
            fields: vec![],
        });
        Span {
            name,
            start: Instant::now(),
        }
    }

    /// The span's name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let dur_us = self.start.elapsed().as_micros() as u64;
        Registry::global().record_span(&self.name, dur_us);
        emit_with(|| Event {
            kind: EventKind::SpanEnd,
            name: self.name.clone(),
            fields: vec![("dur_us".to_string(), Json::u64(dur_us))],
        });
    }
}

/// Opens a [`Span`] with a `format!`-style name; bind the result to keep
/// it open:
///
/// ```
/// let _span = obs::span!("experiment.{}", "fig1");
/// ```
#[macro_export]
macro_rules! span {
    ($($arg:tt)*) => {
        $crate::Span::enter(format!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_into_global_registry() {
        let name = "obs-test.span_records";
        {
            let _s = Span::enter(name);
        }
        {
            let _s = crate::span!("obs-test.{}", "span_records");
        }
        let stat = Registry::global().span_stat(name).unwrap();
        assert!(stat.count >= 2);
        assert!(stat.max_us <= stat.total_us);
    }
}

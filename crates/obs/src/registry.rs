//! The global metric registry: named counters, gauges, and span
//! statistics.
//!
//! The registry is a process-wide accumulator; every instrumented crate
//! (`simt`, `tracekit`, `core`) writes into the same instance via
//! [`Registry::global`], and the run manifest snapshots it at the end.
//! All operations take a single mutex, so they are cheap enough for
//! per-launch / per-profile granularity but should not be called from
//! per-cycle hot loops.

use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard};

use crate::json::Json;

/// Aggregate timing of all closed spans sharing one name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Number of completed spans.
    pub count: u64,
    /// Total wall-clock time across them, in microseconds.
    pub total_us: u64,
    /// Longest single span, in microseconds.
    pub max_us: u64,
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    spans: BTreeMap<String, SpanStat>,
}

/// A set of named counters, gauges, and span statistics.
#[derive(Debug)]
pub struct Registry {
    inner: Mutex<Inner>,
}

static GLOBAL: Registry = Registry::new();

impl Registry {
    /// An empty registry.
    pub const fn new() -> Registry {
        Registry {
            inner: Mutex::new(Inner {
                counters: BTreeMap::new(),
                gauges: BTreeMap::new(),
                spans: BTreeMap::new(),
            }),
        }
    }

    /// The process-wide registry shared by all instrumented crates.
    pub fn global() -> &'static Registry {
        &GLOBAL
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // Metric state stays usable even if a panicking thread held the
        // lock; counters are monotonic so the worst case is a lost update.
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Adds `delta` to counter `name` (creating it at zero).
    pub fn add(&self, name: &str, delta: u64) {
        let mut g = self.lock();
        *g.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Increments counter `name` by one — shorthand for event-shaped
    /// counters (store hits/misses, quarantines) where the delta is
    /// always 1.
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// Sets gauge `name` to `value` (last write wins).
    pub fn set_gauge(&self, name: &str, value: f64) {
        let mut g = self.lock();
        g.gauges.insert(name.to_string(), value);
    }

    /// Folds one completed span of `dur_us` microseconds into `name`.
    pub fn record_span(&self, name: &str, dur_us: u64) {
        let mut g = self.lock();
        let s = g.spans.entry(name.to_string()).or_default();
        s.count += 1;
        s.total_us += dur_us;
        s.max_us = s.max_us.max(dur_us);
    }

    /// Current value of counter `name` (0 if never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.lock().gauges.get(name).copied()
    }

    /// Aggregate statistics of span `name`.
    pub fn span_stat(&self, name: &str) -> Option<SpanStat> {
        self.lock().spans.get(name).copied()
    }

    /// Clears every counter, gauge, and span statistic. Intended for
    /// tests and benchmarks that need isolation from earlier runs.
    pub fn reset(&self) {
        let mut g = self.lock();
        g.counters.clear();
        g.gauges.clear();
        g.spans.clear();
    }

    /// Snapshots the whole registry as a JSON object with `counters`,
    /// `gauges`, and `spans` members (keys sorted, deterministic).
    pub fn snapshot_json(&self) -> Json {
        let g = self.lock();
        let counters = g
            .counters
            .iter()
            .map(|(k, &v)| (k.clone(), Json::u64(v)))
            .collect();
        let gauges = g
            .gauges
            .iter()
            .map(|(k, &v)| (k.clone(), Json::Num(v)))
            .collect();
        let spans = g
            .spans
            .iter()
            .map(|(k, s)| {
                (
                    k.clone(),
                    Json::obj(vec![
                        ("count", Json::u64(s.count)),
                        ("total_us", Json::u64(s.total_us)),
                        ("max_us", Json::u64(s.max_us)),
                    ]),
                )
            })
            .collect();
        Json::Obj(vec![
            ("counters".to_string(), Json::Obj(counters)),
            ("gauges".to_string(), Json::Obj(gauges)),
            ("spans".to_string(), Json::Obj(spans)),
        ])
    }
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let r = Registry::new();
        r.add("x", 3);
        r.add("x", 4);
        assert_eq!(r.counter("x"), 7);
        assert_eq!(r.counter("missing"), 0);
    }

    #[test]
    fn gauges_overwrite() {
        let r = Registry::new();
        r.set_gauge("g", 1.5);
        r.set_gauge("g", 2.5);
        assert_eq!(r.gauge("g"), Some(2.5));
        assert_eq!(r.gauge("missing"), None);
    }

    #[test]
    fn spans_fold() {
        let r = Registry::new();
        r.record_span("s", 10);
        r.record_span("s", 30);
        let s = r.span_stat("s").unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.total_us, 40);
        assert_eq!(s.max_us, 30);
    }

    #[test]
    fn snapshot_and_reset() {
        let r = Registry::new();
        r.add("c", 1);
        r.set_gauge("g", 0.5);
        r.record_span("s", 7);
        let snap = r.snapshot_json();
        assert_eq!(
            snap.get("counters").and_then(|c| c.get("c")).and_then(Json::as_f64),
            Some(1.0)
        );
        assert_eq!(
            snap.get("spans")
                .and_then(|s| s.get("s"))
                .and_then(|s| s.get("count"))
                .and_then(Json::as_f64),
            Some(1.0)
        );
        r.reset();
        assert_eq!(r.counter("c"), 0);
        assert!(r.span_stat("s").is_none());
    }

    #[test]
    fn snapshot_bytes_are_insertion_order_independent() {
        // Manifests and JSONL dumps embed this snapshot verbatim, so
        // its rendering must not depend on the order instrumentation
        // sites happened to fire in (the freqmine HashMap-order class
        // of bug). Keys are sorted: two registries holding the same
        // state render the same bytes regardless of write order.
        let names = ["store.hit", "bench.a", "zzz", "bench.b", "alpha"];
        let fwd = Registry::new();
        for (i, n) in names.iter().enumerate() {
            fwd.add(n, i as u64 + 1);
            fwd.set_gauge(n, i as f64);
            fwd.record_span(n, 10 * (i as u64 + 1));
        }
        let rev = Registry::new();
        for (i, n) in names.iter().enumerate().rev() {
            rev.add(n, i as u64 + 1);
            rev.set_gauge(n, i as f64);
            rev.record_span(n, 10 * (i as u64 + 1));
        }
        let a = fwd.snapshot_json().to_string();
        let b = rev.snapshot_json().to_string();
        assert_eq!(a, b, "snapshot must be byte-stable across write orders");
        // And the sorted order is actually sorted.
        let doc = Json::parse(&a).expect("parses");
        if let Some(Json::Obj(pairs)) = doc.get("counters") {
            let keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
            let mut sorted = keys.clone();
            sorted.sort_unstable();
            assert_eq!(keys, sorted);
        } else {
            panic!("counters object missing");
        }
    }
}

//! Concurrency guarantees of the global `obs` state.
//!
//! The parallel study engine (`rodinia-study::StudySession`) emits spans,
//! counters, and records from every worker thread at once, so the global
//! registry and the bounded record buffer must stay exact under
//! contention: counter totals are never lost, per-thread span stacks
//! never interleave, and the record buffer drops *only* past its
//! documented bound ([`obs::MAX_RECORDS`]) with an exact dropped count.
//!
//! Both tests mutate process-global state (the record buffer), so they
//! serialize on a local mutex instead of relying on test-runner ordering.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use obs::{drain_records, record_with, set_recording, Json, Registry, MAX_RECORDS};

/// Serializes the tests in this binary: both drain the global record
/// buffer and toggle recording.
static GLOBAL_STATE: Mutex<()> = Mutex::new(());

#[test]
fn concurrent_spans_and_counters_are_exact() {
    let _guard = GLOBAL_STATE.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    set_recording(false);
    let _ = drain_records();

    const THREADS: usize = 8;
    const ITERS: usize = 500;

    std::thread::scope(|s| {
        for t in 0..THREADS {
            s.spawn(move || {
                for i in 0..ITERS {
                    // Per-thread counter: exactly ITERS increments survive.
                    Registry::global().add(&format!("conc-test.counter.{t}"), 1);
                    // Shared counter: all THREADS*ITERS increments survive.
                    Registry::global().add("conc-test.shared", 1);
                    let _outer = obs::span!("conc-test.span.{t}");
                    // The span stack is per-thread: no other worker's
                    // spans ever appear in this thread's path.
                    assert_eq!(obs::span_depth(), 1);
                    assert_eq!(obs::span_path(), format!("conc-test.span.{t}"));
                    if i % 7 == 0 {
                        let _inner = obs::span!("conc-test.inner.{t}");
                        assert_eq!(obs::span_depth(), 2);
                    }
                }
            });
        }
    });

    for t in 0..THREADS {
        assert_eq!(
            Registry::global().counter(&format!("conc-test.counter.{t}")),
            ITERS as u64,
            "thread {t} lost counter increments"
        );
        let stat = Registry::global()
            .span_stat(&format!("conc-test.span.{t}"))
            .expect("every thread's spans were folded in");
        assert_eq!(stat.count, ITERS as u64, "thread {t} lost span closes");
    }
    assert_eq!(
        Registry::global().counter("conc-test.shared"),
        (THREADS * ITERS) as u64,
        "contended shared counter lost increments"
    );
}

#[test]
fn record_buffer_bounds_and_dropped_count_are_exact() {
    let _guard = GLOBAL_STATE.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    // Start from a clean buffer and a zeroed dropped counter.
    set_recording(false);
    let _ = drain_records();

    const THREADS: usize = 4;
    // Overshoot the bound so every thread sees the buffer fill up.
    let per_thread = MAX_RECORDS / THREADS + 2_000;
    let total = THREADS * per_thread;
    let published = AtomicUsize::new(0);

    set_recording(true);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let published = &published;
            s.spawn(move || {
                for i in 0..per_thread {
                    record_with("conc-test", || {
                        Json::obj(vec![
                            ("thread", Json::u64(t as u64)),
                            ("seq", Json::u64(i as u64)),
                        ])
                    });
                    published.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    set_recording(false);

    assert_eq!(published.load(Ordering::Relaxed), total);
    let (records, dropped) = drain_records();
    // The documented drop policy: the buffer never exceeds MAX_RECORDS,
    // and every record past the bound is counted — none vanish silently.
    assert_eq!(records.len(), MAX_RECORDS, "buffer must fill to its bound exactly");
    assert_eq!(
        dropped,
        (total - MAX_RECORDS) as u64,
        "every record past the bound must be counted as dropped"
    );
    assert!(records.iter().all(|r| r.kind == "conc-test"));

    // Drained: the next drain starts empty with a zero dropped count.
    let (rest, dropped_rest) = drain_records();
    assert!(rest.is_empty());
    assert_eq!(dropped_rest, 0);
}

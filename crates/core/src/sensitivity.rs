//! The Plackett–Burman GPU sensitivity study (Section III.E).
//!
//! Nine architectural parameters are screened with the PB-12 design
//! (Yi et al.): core clock, SIMD width, shared-memory size, bank-conflict
//! modeling, register-file size, thread capacity, memory clock, channel
//! count, and DRAM bus width. Each benchmark's kernel trace is captured
//! once and re-timed under all twelve design points — valid because none
//! of the nine factors changes functional execution or trace capture
//! (warp size and coalescing granularity are held at their defaults).

use analysis::plackett_burman::{pb12, PbResult};
use datasets::Scale;
use rodinia_gpu::suite::all_benchmarks;
use simt::GpuConfig;
use store::SweepJournal;

use crate::engine::StudySession;
use crate::error::StudyError;
use crate::report::{f1, Table};

/// The nine screened factors, in design-column order.
pub const FACTORS: [&str; 9] = [
    "core clock",
    "SIMD width",
    "shared mem size",
    "bank conflict",
    "register file",
    "threads/SM",
    "memory clock",
    "mem channels",
    "DRAM bus width",
];

/// Builds the GPU configuration for one design row (−1 = low level,
/// +1 = high level; the paper's ranges).
pub fn config_for(row: &[i8; 11]) -> GpuConfig {
    let hi = |j: usize| row[j] > 0;
    let mut cfg = GpuConfig::gpgpusim_default();
    cfg.name = "pb".to_string();
    cfg.core_clock_ghz = if hi(0) { 1.5 } else { 1.2 };
    cfg.simd_width = if hi(1) { 32 } else { 16 };
    cfg.shared_mem_per_sm = if hi(2) { 32 * 1024 } else { 16 * 1024 };
    cfg.model_bank_conflicts = hi(3);
    cfg.regs_per_sm = if hi(4) { 32_768 } else { 16_384 };
    cfg.max_threads_per_sm = if hi(5) { 2048 } else { 1024 };
    // The paper screens 800 MHz-1 GHz; scaled to this model's
    // calibrated 2 GHz GDDR baseline while keeping the paper's 0.8x
    // low-to-high ratio.
    cfg.mem_clock_ghz = if hi(6) { 2.0 } else { 1.6 };
    cfg.mem_channels = if hi(7) { 8 } else { 4 };
    cfg.dram_bus_bytes = if hi(8) { 8 } else { 4 };
    cfg
}

/// The study result: per-benchmark factor effects on total execution
/// cycles.
#[derive(Debug, Clone)]
pub struct PbStudy {
    /// `(abbrev, result)` per benchmark.
    pub per_benchmark: Vec<(String, PbResult)>,
}

impl PbStudy {
    /// Mean normalized absolute effect of each factor across the
    /// benchmarks (each benchmark's effects normalized by its largest).
    pub fn aggregate(&self) -> Vec<(String, f64)> {
        let nf = FACTORS.len();
        let mut agg = vec![0.0f64; nf];
        for (_, res) in &self.per_benchmark {
            let max = res
                .effects
                .iter()
                .map(|e| e.abs())
                .fold(0.0f64, f64::max)
                .max(1e-12);
            for (a, e) in agg.iter_mut().zip(&res.effects) {
                *a += e.abs() / max;
            }
        }
        let n = self.per_benchmark.len().max(1) as f64;
        let mut pairs: Vec<(String, f64)> = FACTORS
            .iter()
            .map(std::string::ToString::to_string)
            .zip(agg.into_iter().map(|a| a / n))
            .collect();
        pairs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        pairs
    }

    /// Renders the per-benchmark ranked effects.
    pub fn to_table(&self) -> Result<Table, StudyError> {
        let mut t = Table::new(
            "Plackett-Burman sensitivity: top factors per benchmark (effect on cycles)",
            &["Benchmark", "1st", "2nd", "3rd"],
        );
        for (name, res) in &self.per_benchmark {
            let ranked = res.ranked();
            t.push(vec![
                name.clone(),
                format!("{} ({})", ranked[0].0, f1(ranked[0].1)),
                format!("{} ({})", ranked[1].0, f1(ranked[1].1)),
                format!("{} ({})", ranked[2].0, f1(ranked[2].1)),
            ])?;
        }
        Ok(t)
    }

    /// Renders the aggregate factor ranking.
    pub fn aggregate_table(&self) -> Result<Table, StudyError> {
        let mut t = Table::new(
            "Plackett-Burman sensitivity: aggregate factor importance",
            &["Factor", "Mean normalized |effect|"],
        );
        for (f, v) in self.aggregate() {
            t.push(vec![f, format!("{v:.3}")])?;
        }
        Ok(t)
    }
}

/// Runs the PB study over the whole suite (or a named subset).
///
/// Each benchmark's trace is captured once — none of the nine screened
/// factors changes functional execution — and the 12 design points are
/// pure replays, fanned as `benchmarks × 12` independent jobs over the
/// session's worker pool. Design-point configurations that fail
/// [`GpuConfig::validate`] and malformed effect analyses surface as
/// typed [`StudyError`]s.
pub fn run(
    session: &StudySession,
    scale: Scale,
    subset: Option<&[&str]>,
) -> Result<PbStudy, StudyError> {
    let design = pb12();
    let configs: Vec<GpuConfig> = design.iter().map(config_for).collect();
    let benches: Vec<_> = all_benchmarks(scale)
        .into_iter()
        .filter(|b| subset.is_none_or(|names| names.contains(&b.abbrev())))
        .collect();
    let nc = configs.len();
    // Checkpointing: with a store attached, every completed response is
    // journaled durably under a key spelling the whole study (design,
    // scale, benchmark list), so a killed sweep resumes from its last
    // durable response. Responses are pure functions of the study key,
    // which is why restored values are indistinguishable from
    // recomputed ones — resume is a cache hit, not a semantic fork. A
    // journal that cannot be opened or appended only costs
    // resumability, never the study.
    let study_key = format!(
        "pb12/{scale:?}/{}",
        benches
            .iter()
            .map(|b| b.abbrev())
            .collect::<Vec<_>>()
            .join("+")
    );
    let journal = session.store().and_then(|s| {
        let name = format!("pb12-{:016x}.sweep", store::fnv1a64(study_key.as_bytes()));
        match SweepJournal::open(&s.journal_path(&name), &study_key) {
            Ok(opened) => Some(opened),
            Err(e) => {
                eprintln!("store: sweep journal unavailable ({e}); running without checkpoints");
                None
            }
        }
    });
    // Response: total cycles under each design point, flattened as
    // (benchmark-major, design-point-minor) jobs. Capturing under the
    // first design point (all PB configs share the default capture
    // fingerprint) makes the capture pass's own timing leg double as
    // design point 0 — `stats_for` hits the stored baseline there and
    // replays the other eleven. If another experiment already captured
    // this benchmark under a different configuration, the cache entry is
    // reused and design point 0 replays like the rest; either way the
    // responses are identical (replay ≡ direct run).
    let responses = session.run_indexed(benches.len() * nc, |j| {
        if let Some((_, done)) = &journal {
            if let Some(&response) = done.get(&j) {
                obs::Registry::global().incr("store.sweep_restored");
                return Ok(response);
            }
        }
        let b = benches[j / nc].as_ref();
        let cfg = &configs[j % nc];
        let _bench = obs::span!("bench.{}", b.abbrev());
        let run = session.cache().capture_benchmark(b, scale, &configs[0])?;
        let response = run.stats_for(cfg)?.cycles as f64;
        if let Some((j_out, _)) = &journal {
            if j_out.record(j, response).is_err() {
                obs::Registry::global().incr("store.journal_error");
            }
        }
        Ok(response)
    })?;
    let mut per_benchmark = Vec::new();
    for (bi, b) in benches.iter().enumerate() {
        per_benchmark.push((
            b.abbrev().to_string(),
            PbResult::try_analyze(&FACTORS, &design, &responses[bi * nc..(bi + 1) * nc])?,
        ));
    }
    Ok(PbStudy { per_benchmark })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn design_configs_are_valid() {
        for row in pb12() {
            let cfg = config_for(&row);
            assert!(cfg.validate().is_ok(), "{cfg:?}");
        }
    }

    #[test]
    fn simd_width_and_channels_dominate() {
        // The paper: "SIMD width and the number of memory channels have
        // the largest impacts on benchmark performance". Screen a
        // compute-bound and two memory-bound benchmarks.
        let session = StudySession::new(2);
        let study = run(&session, Scale::Tiny, Some(&["HS", "BFS", "CFD"])).expect("pb runs");
        assert_eq!(study.per_benchmark.len(), 3);
        // Capture-once: one cache entry per benchmark despite 12 design
        // points each.
        assert_eq!(session.cache().len(), 3);
        let agg = study.aggregate();
        let top2: Vec<&str> = agg.iter().take(2).map(|(f, _)| f.as_str()).collect();
        assert!(
            top2.contains(&"SIMD width") || top2.contains(&"mem channels"),
            "top factors: {agg:?}"
        );
        // Every factor got an effect estimate.
        for (_, res) in &study.per_benchmark {
            assert_eq!(res.effects.len(), 9);
        }
        assert!(study.to_table().expect("renders").to_string().contains("BFS"));
        assert!(study
            .aggregate_table()
            .expect("renders")
            .to_string()
            .contains("SIMD"));
    }
}

//! JSON run manifests: a machine-readable record of one `repro`
//! invocation.
//!
//! A manifest captures everything a run produced — every rendered
//! [`Table`], every `simt` kernel-stats record (with its stall
//! breakdown and occupancy timeline, collected through the `obs`
//! record buffer), and the wall-clock span timings from the global
//! [`obs::Registry`] — as one self-describing JSON document. It is the
//! first `BENCH_*.json`-style artifact of the repo; external tooling
//! should dispatch on the `schema` tag.
//!
//! Schema (`rodinia-repro.manifest/v1`):
//!
//! ```text
//! {
//!   "schema": "rodinia-repro.manifest/v1",
//!   "scale": "tiny",
//!   "experiments": [
//!     { "id": "Fig1", "wall_us": 1234,
//!       "tables": [ { "title": ..., "columns": [...], "rows": [[...]] } ] },
//!     ...
//!   ],
//!   ...driver sections ("check", "critpath", ...) in push order...,
//!   "kernel_stats": [ <simt::KernelStats::to_json() objects> ... ],
//!   "dropped_kernel_stats": 0,
//!   "store": { "hit": 0, "miss": 0, ... },
//!   "telemetry": { "counters": {...}, "gauges": {...}, "spans": {...} }
//! }
//! ```

use std::path::{Path, PathBuf};

use obs::Json;

use crate::error::StudyError;
use crate::report::Table;
use datasets::Scale;

/// The manifest schema identifier written into every document.
pub const MANIFEST_SCHEMA: &str = "rodinia-repro.manifest/v1";

/// File name of the manifest inside the output directory.
pub const MANIFEST_FILE: &str = "BENCH_manifest.json";

/// Schema tag of the deterministic study manifest.
pub const STUDY_SCHEMA: &str = "rodinia-repro.study/v1";

/// File name of the deterministic study manifest.
///
/// Unlike [`MANIFEST_FILE`], this document holds *only* the rendered
/// result tables — no wall-clock timings, no telemetry — so two runs of
/// the same study are byte-identical, interrupted-and-resumed or not.
/// The crash-recovery CI gate diffs it with `cmp`.
pub const STUDY_MANIFEST_FILE: &str = "STUDY_manifest.json";

/// Schema tag of the critical-path manifest (`repro analyze`).
pub const CRITPATH_SCHEMA: &str = "rodinia-repro.critpath/v1";

/// File name of the critical-path manifest inside the output directory.
pub const CRITPATH_FILE: &str = "CRITPATH_manifest.json";

/// Schema tag of the access-contract audit manifest (`repro audit`).
pub const AUDIT_SCHEMA: &str = "rodinia-repro.audit/v1";

/// File name of the audit manifest inside the output directory.
///
/// Like [`STUDY_MANIFEST_FILE`], this document is a pure function of
/// `(corpus, scale)` — inferred contracts, proof verdicts, no
/// wall-clock state — so two independent runs are byte-identical and
/// the CI audit gate diffs it with `cmp`.
pub const AUDIT_FILE: &str = "AUDIT_manifest.json";

/// One kind of machine-readable manifest the repo emits.
///
/// This is the single schema-version registry: every `*_manifest.json`
/// writer in the workspace — the run manifest built by
/// [`ManifestBuilder`], the deterministic study manifest served by
/// `repro serve` and written next to the store, and the critical-path
/// manifest of `repro analyze` — goes through [`write_manifest`] with
/// one of these kinds, so the schema tag, the file name, and the atomic
/// write discipline can never drift apart per emitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ManifestKind {
    /// `BENCH_manifest.json` (`rodinia-repro.manifest/v1`): one run's
    /// tables plus kernel stats, sections, and telemetry.
    Bench,
    /// `STUDY_manifest.json` (`rodinia-repro.study/v1`): pure tables,
    /// byte-deterministic; the crash-recovery and serve responses.
    Study,
    /// `CRITPATH_manifest.json` (`rodinia-repro.critpath/v1`):
    /// critical-path attribution, byte-deterministic.
    Critpath,
    /// `AUDIT_manifest.json` (`rodinia-repro.audit/v1`): symbolic
    /// access contracts with proof verdicts, byte-deterministic.
    Audit,
}

impl ManifestKind {
    /// Every registered manifest kind.
    pub const ALL: [ManifestKind; 4] = [
        ManifestKind::Bench,
        ManifestKind::Study,
        ManifestKind::Critpath,
        ManifestKind::Audit,
    ];

    /// The schema tag written into (and required of) documents of this
    /// kind.
    pub fn schema(self) -> &'static str {
        match self {
            ManifestKind::Bench => MANIFEST_SCHEMA,
            ManifestKind::Study => STUDY_SCHEMA,
            ManifestKind::Critpath => CRITPATH_SCHEMA,
            ManifestKind::Audit => AUDIT_SCHEMA,
        }
    }

    /// The file name documents of this kind are written under.
    pub fn file_name(self) -> &'static str {
        match self {
            ManifestKind::Bench => MANIFEST_FILE,
            ManifestKind::Study => STUDY_MANIFEST_FILE,
            ManifestKind::Critpath => CRITPATH_FILE,
            ManifestKind::Audit => AUDIT_FILE,
        }
    }

    /// Resolves a schema tag back to its kind — how external tooling
    /// (and the roundtrip test) dispatches on a document.
    pub fn of_schema(tag: &str) -> Option<ManifestKind> {
        ManifestKind::ALL.into_iter().find(|k| k.schema() == tag)
    }
}

/// Atomically writes a manifest document to `dir/<kind file name>`
/// (temp + fsync + rename, creating `dir` if needed) and returns the
/// written path. The document's `schema` field must match the
/// registry's tag for `kind` — the one writer is where that invariant
/// is enforced for every emitter.
///
/// # Errors
///
/// [`StudyError::Registry`] if the document's schema tag is absent or
/// disagrees with `kind`; [`StudyError::Io`] if the write fails.
pub fn write_manifest(dir: &Path, kind: ManifestKind, doc: &Json) -> Result<PathBuf, StudyError> {
    if doc.get("schema").and_then(Json::as_str) != Some(kind.schema()) {
        return Err(StudyError::Registry {
            id: format!("{kind:?}"),
            reason: "manifest document schema tag disagrees with the registry",
        });
    }
    let path = store::write_atomic(dir, kind.file_name(), format!("{doc}\n").as_bytes())?;
    Ok(path)
}

/// Serializes a rendered [`Table`] (title, columns, row cells).
pub fn table_to_json(t: &Table) -> Json {
    Json::obj(vec![
        ("title", Json::from(t.title.as_str())),
        (
            "columns",
            Json::from(t.columns.iter().map(|c| Json::from(c.as_str())).collect::<Vec<_>>()),
        ),
        (
            "rows",
            Json::from(
                t.rows
                    .iter()
                    .map(|r| {
                        Json::from(r.iter().map(|c| Json::from(c.as_str())).collect::<Vec<_>>())
                    })
                    .collect::<Vec<_>>(),
            ),
        ),
    ])
}

/// Rebuilds a [`Table`] from its [`table_to_json`] document.
///
/// Returns `None` on any shape mismatch — callers restoring journaled
/// experiments treat a malformed record as "not done" and recompute,
/// so there is nothing useful for an error to carry.
pub fn table_from_json(j: &Json) -> Option<Table> {
    let title = j.get("title")?.as_str()?;
    let columns: Vec<&str> = j
        .get("columns")?
        .as_arr()?
        .iter()
        .map(Json::as_str)
        .collect::<Option<Vec<_>>>()?;
    let mut t = Table::new(title, &columns);
    for row in j.get("rows")?.as_arr()? {
        let cells: Vec<String> = row
            .as_arr()?
            .iter()
            .map(|c| c.as_str().map(str::to_string))
            .collect::<Option<Vec<_>>>()?;
        t.push(cells).ok()?;
    }
    Some(t)
}

/// Renders `scale` as its lowercase manifest token.
pub(crate) fn scale_str(scale: Scale) -> &'static str {
    match scale {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Paper => "paper",
    }
}

/// Builds the deterministic study manifest: schema, scale, and per
/// experiment only its id and rendered tables. Everything in this
/// document is a pure function of `(experiment set, scale)`, which is
/// what makes the kill-and-resume byte-for-byte diff meaningful.
pub fn study_manifest_json(scale: Scale, experiments: &[(String, Vec<Table>)]) -> Json {
    study_manifest_json_with_sections(scale, experiments, &[])
}

/// [`study_manifest_json`] with named driver sections (the `repro
/// check` / `repro audit` finding summaries) appended after
/// `experiments`. Sections must themselves be deterministic — the
/// byte-identity contract of this document extends to them. With no
/// sections the output is byte-identical to [`study_manifest_json`],
/// so tables-only runs are unaffected.
pub fn study_manifest_json_with_sections(
    scale: Scale,
    experiments: &[(String, Vec<Table>)],
    sections: &[(String, Json)],
) -> Json {
    let mut pairs = vec![
        ("schema".to_string(), Json::from(STUDY_SCHEMA)),
        ("scale".to_string(), Json::from(scale_str(scale))),
        (
            "experiments".to_string(),
            Json::from(
                experiments
                    .iter()
                    .map(|(id, tables)| {
                        Json::obj(vec![
                            ("id", Json::from(id.as_str())),
                            (
                                "tables",
                                Json::from(tables.iter().map(table_to_json).collect::<Vec<_>>()),
                            ),
                        ])
                    })
                    .collect::<Vec<_>>(),
            ),
        ),
    ];
    pairs.extend(sections.iter().cloned());
    Json::Obj(pairs)
}

/// Atomically writes the deterministic study manifest to
/// `dir/STUDY_manifest.json` and returns the path.
///
/// # Errors
///
/// [`StudyError::Io`] if the write fails.
pub fn write_study_manifest(
    dir: &Path,
    scale: Scale,
    experiments: &[(String, Vec<Table>)],
) -> Result<PathBuf, StudyError> {
    write_manifest(dir, ManifestKind::Study, &study_manifest_json(scale, experiments))
}

/// Snapshot of the persistent-store health counters as a JSON object
/// (`hit`, `miss`, `write`, `corrupt`, `evict`, `retry`), embedded in
/// every `BENCH_manifest.json` and in the `repro check` report: a run
/// that silently recaptured half its store should say so in its
/// artifacts.
pub fn store_counters_json() -> Json {
    let reg = obs::Registry::global();
    let c = |name: &str| Json::u64(reg.counter(name));
    Json::obj(vec![
        ("hit", c("store.hit")),
        ("miss", c("store.miss")),
        ("write", c("store.write")),
        ("corrupt", c("store.corrupt")),
        ("evict", c("store.evict")),
        ("retry", c("store.retry")),
    ])
}

/// Accumulates one run's experiments into a manifest document.
///
/// Construct it before running experiments (it turns on the `obs`
/// record buffer so kernel-stats records are captured), push each
/// experiment's tables as they complete, and call
/// [`ManifestBuilder::write`] once at the end. Drivers with their own
/// machine-readable verdicts (`repro check` findings, `repro analyze`
/// critical paths) attach them as named sections via
/// [`ManifestBuilder::push_section`].
#[derive(Debug)]
pub struct ManifestBuilder {
    scale: Scale,
    experiments: Vec<Json>,
    sections: Vec<(String, Json)>,
}

impl ManifestBuilder {
    /// Starts a manifest for a run at `scale`, enabling kernel-stats
    /// recording.
    pub fn new(scale: Scale) -> ManifestBuilder {
        obs::set_recording(true);
        ManifestBuilder {
            scale,
            experiments: Vec::new(),
            sections: Vec::new(),
        }
    }

    /// Attaches a named top-level section to the document (e.g.
    /// `"check"` with the sanitizer verdict, `"critpath"` with the
    /// bottleneck summary). Sections appear after `experiments` in
    /// push order; a repeated name replaces the earlier payload.
    pub fn push_section(&mut self, name: &str, payload: Json) {
        if let Some(s) = self.sections.iter_mut().find(|(n, _)| n == name) {
            s.1 = payload;
        } else {
            self.sections.push((name.to_string(), payload));
        }
    }

    /// Appends one completed experiment with its rendered tables and
    /// wall-clock duration.
    pub fn push_experiment(&mut self, id: &str, tables: &[Table], wall_us: u64) {
        self.experiments.push(Json::obj(vec![
            ("id", Json::from(id)),
            ("wall_us", Json::u64(wall_us)),
            (
                "tables",
                Json::from(tables.iter().map(table_to_json).collect::<Vec<_>>()),
            ),
        ]));
    }

    /// Number of experiments pushed so far.
    pub fn len(&self) -> usize {
        self.experiments.len()
    }

    /// Whether no experiment has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.experiments.is_empty()
    }

    /// Finalizes the document: drains the `obs` record buffer for
    /// kernel stats and snapshots the global registry (span timings and
    /// counters).
    pub fn build(self) -> Json {
        let (records, dropped) = obs::drain_records();
        let kernel_stats: Vec<Json> = records
            .into_iter()
            .filter(|r| r.kind == "kernel_stats")
            .map(|r| r.value)
            .collect();
        let mut pairs = vec![
            ("schema".to_string(), Json::from(MANIFEST_SCHEMA)),
            ("scale".to_string(), Json::from(scale_str(self.scale))),
            ("experiments".to_string(), Json::from(self.experiments)),
        ];
        pairs.extend(self.sections);
        pairs.extend([
            ("kernel_stats".to_string(), Json::from(kernel_stats)),
            ("dropped_kernel_stats".to_string(), Json::u64(dropped)),
            ("store".to_string(), store_counters_json()),
            ("telemetry".to_string(), obs::Registry::global().snapshot_json()),
        ]);
        Json::Obj(pairs)
    }

    /// Builds the document and writes it to `dir/BENCH_manifest.json`
    /// through the [`ManifestKind`] registry (atomic, creating `dir` if
    /// needed). Returns the written path.
    ///
    /// # Errors
    ///
    /// [`StudyError::Io`] if the directory cannot be created or the
    /// file cannot be written.
    pub fn write(self, dir: &Path) -> Result<PathBuf, StudyError> {
        write_manifest(dir, ManifestKind::Bench, &self.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn demo_table() -> Table {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.push(vec!["alpha".into(), "1.5".into()]).expect("row fits");
        t
    }

    #[test]
    fn table_round_trips_through_json() {
        let j = table_to_json(&demo_table());
        let text = j.to_string();
        let back = Json::parse(&text).expect("table JSON parses");
        assert_eq!(back.get("title").and_then(Json::as_str), Some("Demo"));
        let rows = back.get("rows").and_then(Json::as_arr).expect("rows");
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].as_arr().expect("cells").len(), 2);
    }

    #[test]
    fn manifest_document_is_self_describing() {
        let mut b = ManifestBuilder::new(Scale::Tiny);
        assert!(b.is_empty());
        b.push_experiment("Demo", &[demo_table()], 42);
        assert_eq!(b.len(), 1);
        let doc = b.build();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some(MANIFEST_SCHEMA)
        );
        assert_eq!(doc.get("scale").and_then(Json::as_str), Some("tiny"));
        let exps = doc.get("experiments").and_then(Json::as_arr).expect("arr");
        assert_eq!(exps.len(), 1);
        assert_eq!(exps[0].get("wall_us").and_then(Json::as_f64), Some(42.0));
        // The document is parseable as written.
        assert!(Json::parse(&doc.to_string()).is_ok());
    }

    #[test]
    fn sections_and_store_counters_are_embedded() {
        let mut b = ManifestBuilder::new(Scale::Tiny);
        b.push_section("check", Json::obj(vec![("errors", Json::u64(0))]));
        b.push_section("check", Json::obj(vec![("errors", Json::u64(2))]));
        b.push_section("critpath", Json::obj(vec![("ranking", Json::Arr(vec![]))]));
        let doc = b.build();
        assert_eq!(
            doc.get("check").and_then(|c| c.get("errors")).and_then(Json::as_f64),
            Some(2.0),
            "repeated section name replaces the payload"
        );
        assert!(doc.get("critpath").is_some());
        let store = doc.get("store").expect("store counters present");
        for key in ["hit", "miss", "write", "corrupt", "evict", "retry"] {
            assert!(store.get(key).is_some(), "missing store counter {key}");
        }
    }

    #[test]
    fn table_rebuilds_from_its_json() {
        let t = demo_table();
        let back = table_from_json(&table_to_json(&t)).expect("round trip");
        assert_eq!(back.to_string(), t.to_string());
        assert!(table_from_json(&Json::u64(3)).is_none(), "non-table JSON is rejected");
    }

    #[test]
    fn study_manifest_is_deterministic_and_table_only() {
        let exps = vec![("Fig1".to_string(), vec![demo_table()])];
        let a = study_manifest_json(Scale::Tiny, &exps).to_string();
        let b = study_manifest_json(Scale::Tiny, &exps).to_string();
        assert_eq!(a, b, "same inputs render the same bytes");
        let doc = Json::parse(&a).expect("parses");
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(STUDY_SCHEMA));
        // The crash-recovery diff depends on nothing run-dependent
        // leaking into this document.
        assert!(!a.contains("wall_us"));
        assert!(!a.contains("telemetry"));
    }

    #[test]
    fn study_manifest_writes_atomically() {
        let dir = std::env::temp_dir().join("rodinia-study-manifest-test");
        let _ = fs::remove_dir_all(&dir);
        let exps = vec![("Fig1".to_string(), vec![demo_table()])];
        let path = write_study_manifest(&dir, Scale::Tiny, &exps).expect("write");
        assert_eq!(path.file_name().and_then(|n| n.to_str()), Some(STUDY_MANIFEST_FILE));
        let text = fs::read_to_string(&path).expect("read");
        assert!(Json::parse(&text).is_ok());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn registry_kinds_are_distinct_and_resolvable() {
        for kind in ManifestKind::ALL {
            assert_eq!(ManifestKind::of_schema(kind.schema()), Some(kind));
        }
        assert_eq!(ManifestKind::of_schema("rodinia-repro.unknown/v9"), None);
        // File names are unique — two kinds never overwrite each other.
        let mut names: Vec<&str> = ManifestKind::ALL.iter().map(|k| k.file_name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ManifestKind::ALL.len());
    }

    #[test]
    fn every_kind_round_trips_through_the_one_writer() {
        let dir = std::env::temp_dir().join(format!(
            "rodinia-manifest-registry-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        for kind in ManifestKind::ALL {
            let doc = Json::obj(vec![
                ("schema", Json::from(kind.schema())),
                ("scale", Json::from("tiny")),
            ]);
            let path = write_manifest(&dir, kind, &doc).expect("write");
            assert_eq!(path.file_name().and_then(|n| n.to_str()), Some(kind.file_name()));
            let text = fs::read_to_string(&path).expect("read back");
            let back = Json::parse(&text).expect("parses");
            // The registry recovers the kind from the document alone.
            let tag = back.get("schema").and_then(Json::as_str).expect("tag");
            assert_eq!(ManifestKind::of_schema(tag), Some(kind));
            assert_eq!(back, doc);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn writer_rejects_a_mistagged_document() {
        let dir = std::env::temp_dir().join(format!(
            "rodinia-manifest-mistag-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        let doc = Json::obj(vec![("schema", Json::from(STUDY_SCHEMA))]);
        let err = write_manifest(&dir, ManifestKind::Bench, &doc).unwrap_err();
        assert!(matches!(err, StudyError::Registry { .. }), "{err}");
        assert!(!dir.join(MANIFEST_FILE).exists(), "nothing written on refusal");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_creates_directory_and_file() {
        let dir = std::env::temp_dir().join("rodinia-manifest-test");
        let _ = fs::remove_dir_all(&dir);
        let mut b = ManifestBuilder::new(Scale::Tiny);
        b.push_experiment("Demo", &[demo_table()], 1);
        let path = b.write(&dir).expect("write succeeds");
        let text = fs::read_to_string(&path).expect("file exists");
        assert!(Json::parse(&text).is_ok());
        let _ = fs::remove_dir_all(&dir);
    }
}

//! Feature-vector extraction from [`tracekit::Profile`]s, following the
//! paper's three characteristic groups (Section IV.B): instruction mix,
//! working set, and sharing behavior.

use tracekit::Profile;

/// Instruction-mix features: `[alu, branch, read, write]` fractions
/// (the Figure 7 space).
pub fn instruction_mix_features(p: &Profile) -> Vec<f64> {
    p.mix.fractions().to_vec()
}

/// Working-set features: misses per memory reference at each simulated
/// cache capacity (the Figure 8 space).
pub fn working_set_features(p: &Profile) -> Vec<f64> {
    p.cache_stats.iter().map(tracekit::CacheStats::miss_rate).collect()
}

/// Sharing features: the shared-line fraction and the shared-access
/// rate at each capacity (the Figure 9 space).
pub fn sharing_features(p: &Profile) -> Vec<f64> {
    let mut out = Vec::with_capacity(p.cache_stats.len() * 2);
    for s in &p.cache_stats {
        out.push(s.shared_line_fraction());
        out.push(s.shared_access_rate());
    }
    out
}

/// The full characteristic vector (all three groups), used for the
/// Figure 6 dendrogram.
pub fn full_features(p: &Profile) -> Vec<f64> {
    let mut v = instruction_mix_features(p);
    v.extend(working_set_features(p));
    v.extend(sharing_features(p));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracekit::{profile, CpuWorkload, ProfileConfig, Profiler};

    struct Toy;
    impl CpuWorkload for Toy {
        fn name(&self) -> &'static str {
            "toy"
        }
        fn run(&self, prof: &mut Profiler) {
            let d = prof.alloc("d", 4096);
            prof.parallel(|t| {
                t.read(d, 4);
                t.alu(3);
                t.write(d + 64, 4);
                t.branch(1);
            });
        }
    }

    #[test]
    fn feature_dimensions() {
        let p = profile(&Toy, &ProfileConfig::default()).expect("profile");
        assert_eq!(instruction_mix_features(&p).len(), 4);
        assert_eq!(working_set_features(&p).len(), 8);
        assert_eq!(sharing_features(&p).len(), 16);
        assert_eq!(full_features(&p).len(), 28);
    }

    #[test]
    fn mix_features_sum_to_one() {
        let p = profile(&Toy, &ProfileConfig::default()).expect("profile");
        let s: f64 = instruction_mix_features(&p).iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
    }
}

//! The `repro analyze` driver: suite-wide critical-path attribution.
//!
//! For every suite benchmark this captures (or reuses) the workload
//! through the shared [`TraceCache`](crate::trace_cache::TraceCache),
//! converts its [`simt::StallBreakdown`] and adaptive occupancy/DRAM
//! timeline into an [`obs::critpath::KernelAttribution`], and runs
//! [`obs::critpath::analyze`] over the set: per benchmark the dominant
//! stall chain ("`LUD` is barrier-bound: removing barrier stalls would
//! cut up to 34% of cycles"), and across the suite a ranked account of
//! which components hold how much of the total cycle budget.
//!
//! **Conservation is the contract.** The engine proves that its six
//! stall components sum exactly to `num_sms * cycles`; the attribution
//! here forwards those components untouched, so the manifest's
//! `attributed_sm_cycles` per kernel equals the engine's own stall
//! total — asserted by the `analyze_critpath` acceptance test, and the
//! reason downstream tooling can trust the percentages.
//!
//! The written `CRITPATH_manifest.json` (schema
//! [`CRITPATH_SCHEMA`]) contains no wall-clock state, so two runs of
//! the same suite at the same scale are byte-identical — the property
//! the CI determinism gate diffs with `cmp`.

use std::path::{Path, PathBuf};

use datasets::Scale;
use obs::critpath::{analyze, Component, CritPath, KernelAttribution, SamplePoint};
use obs::Json;
use rodinia_gpu::suite::all_benchmarks;
use simt::{GpuConfig, KernelStats};

use crate::engine::StudySession;
use crate::error::StudyError;
use crate::manifest::scale_str;
use crate::report::Table;

pub use crate::manifest::{CRITPATH_FILE, CRITPATH_SCHEMA};

/// Default chain depth of the per-benchmark bottleneck ranking.
pub const DEFAULT_TOP_K: usize = 3;

/// Converts one benchmark's engine statistics into a critical-path
/// attribution.
///
/// The six stall components are forwarded cycle-exact, so the
/// attribution's budget equals [`simt::StallBreakdown::total`]
/// (`num_sms * cycles`). `issue` is the useful-work class — counted in
/// the budget, excluded from bottleneck rankings; the five stall
/// classes are removable.
pub fn attribution_of(label: &str, stats: &KernelStats) -> KernelAttribution {
    let comp = |name: &str, cycles: u64, removable: bool| Component {
        name: name.to_string(),
        cycles,
        removable,
    };
    let s = &stats.stall;
    KernelAttribution {
        name: label.to_string(),
        config: stats.config.clone(),
        cycles: stats.cycles,
        components: vec![
            comp("issue", s.issue, false),
            comp("mem_pending", s.mem_pending, true),
            comp("bank_conflict", s.bank_conflict, true),
            comp("divergence", s.divergence, true),
            comp("barrier", s.barrier, true),
            comp("empty", s.empty, true),
        ],
        samples: stats
            .timeline
            .samples
            .iter()
            .map(|t| SamplePoint {
                cycle: t.cycle,
                occupancy: t.occupancy,
                dram_util: t.dram_util,
            })
            .collect(),
    }
}

/// The full `repro analyze` result.
#[derive(Debug)]
pub struct AnalyzeReport {
    /// Scale the suite ran at.
    pub scale: Scale,
    /// The critical-path analysis over every suite benchmark.
    pub critpath: CritPath,
}

impl AnalyzeReport {
    /// The summary table: one row per benchmark with its dominant
    /// bottleneck and the what-if payoff of removing it.
    ///
    /// # Errors
    ///
    /// [`StudyError::TableRow`] only on an internal width bug.
    pub fn summary_table(&self) -> Result<Table, StudyError> {
        let mut t = Table::new(
            &format!("Critical-path attribution ({:?} scale)", self.scale),
            &["Benchmark", "Cycles", "Dominant", "Cut up to", "Occupancy dip"],
        );
        for k in &self.critpath.kernels {
            let (dominant, cut) = k.dominant.as_ref().map_or_else(
                || ("-".to_string(), "-".to_string()),
                |d| (d.component.clone(), format!("{:.1}%", d.fraction * 100.0)),
            );
            let dip = k.hotspot.as_ref().map_or_else(
                || "-".to_string(),
                |h| format!("{:.1}% @ {}", h.dip_occupancy * 100.0, h.dip_cycle),
            );
            t.push(vec![k.name.clone(), k.cycles.to_string(), dominant, cut, dip])?;
        }
        Ok(t)
    }

    /// The per-benchmark verdicts and suite ranking as console lines.
    pub fn render(&self) -> Vec<String> {
        self.critpath.render()
    }

    /// The `CRITPATH_manifest.json` document: schema and scale tags
    /// followed by the [`CritPath`] payload. Deterministic — nothing
    /// wall-clock-dependent is included.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("schema".to_string(), Json::from(CRITPATH_SCHEMA)),
            ("scale".to_string(), Json::from(scale_str(self.scale))),
        ];
        if let Json::Obj(inner) = self.critpath.to_json() {
            pairs.extend(inner);
        }
        Json::Obj(pairs)
    }

    /// A compact summary for embedding in `BENCH_manifest.json`: the
    /// suite ranking plus each benchmark's dominant component.
    pub fn manifest_section(&self) -> Json {
        Json::obj(vec![
            (
                "dominant",
                Json::Obj(
                    self.critpath
                        .kernels
                        .iter()
                        .map(|k| {
                            (
                                k.name.clone(),
                                k.dominant
                                    .as_ref()
                                    .map_or(Json::Null, |d| Json::from(d.component.as_str())),
                            )
                        })
                        .collect(),
                ),
            ),
            (
                "ranking",
                Json::Arr(
                    self.critpath
                        .ranking
                        .iter()
                        .map(|r| {
                            Json::obj(vec![
                                ("component", Json::from(r.component.as_str())),
                                ("cycles", Json::u64(r.cycles)),
                                ("dominates", Json::u64(r.dominates as u64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Writes the manifest to `dir/CRITPATH_manifest.json` through the
    /// [`ManifestKind`](crate::manifest::ManifestKind) registry
    /// (atomic, creating `dir` if needed). Returns the written path.
    ///
    /// # Errors
    ///
    /// [`StudyError::Io`] if the directory cannot be created or the
    /// file cannot be written.
    pub fn write(&self, dir: &Path) -> Result<PathBuf, StudyError> {
        crate::manifest::write_manifest(dir, crate::manifest::ManifestKind::Critpath, &self.to_json())
    }
}

/// Runs critical-path attribution across the whole suite.
///
/// Each benchmark captures at most once (shared
/// [`TraceCache`](crate::trace_cache::TraceCache)); attribution then
/// reads the capture-configuration baseline statistics, so `analyze`
/// after `run`/`check` in the same session costs no extra simulation.
/// Jobs fan out across the session's workers; results come back in
/// suite order regardless of worker count.
///
/// # Errors
///
/// [`StudyError::Sim`] if a capture fails.
pub fn run_analyze(
    session: &StudySession,
    scale: Scale,
    top_k: usize,
) -> Result<AnalyzeReport, StudyError> {
    let cfg = GpuConfig::gpgpusim_default();
    let benches = all_benchmarks(scale);
    let attributions = session.run_indexed(benches.len(), |i| {
        let b = &benches[i];
        let _span = obs::span!("analyze.{}", b.abbrev());
        let run = session.cache().capture_benchmark(b.as_ref(), scale, &cfg)?;
        let stats = run.stats_for(&cfg)?;
        Ok(attribution_of(b.abbrev(), &stats))
    })?;
    Ok(AnalyzeReport {
        scale,
        critpath: analyze(&attributions, top_k),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_stats() -> KernelStats {
        KernelStats {
            name: "k".into(),
            config: "cfg".into(),
            cycles: 100,
            thread_instructions: 0,
            warp_instructions: 0,
            mem_mix: simt::MemMix::default(),
            occupancy: simt::OccupancyHistogram::new(32),
            dram_bytes: 0,
            dram_busy_cycles: 0,
            peak_bytes_per_cycle: 1.0,
            core_clock_ghz: 1.0,
            l1_hits: 0,
            l1_misses: 0,
            l2_hits: 0,
            l2_misses: 0,
            tex_hits: 0,
            tex_misses: 0,
            stall: simt::StallBreakdown {
                issue: 40,
                barrier: 35,
                mem_pending: 15,
                empty: 10,
                ..simt::StallBreakdown::default()
            },
            timeline: simt::Timeline::default(),
            launches: 1,
        }
    }

    #[test]
    fn attribution_forwards_stall_components_cycle_exact() {
        let stats = demo_stats();
        let a = attribution_of("LUD", &stats);
        let total: u64 = a.components.iter().map(|c| c.cycles).sum();
        assert_eq!(total, stats.stall.total(), "conservation");
        assert_eq!(a.name, "LUD");
        let issue = a.components.iter().find(|c| c.name == "issue").unwrap();
        assert!(!issue.removable, "useful work is not a bottleneck");
        assert!(a.components.iter().filter(|c| c.removable).count() == 5);
    }

    #[test]
    fn report_document_is_tagged_and_deterministic() {
        let mk = || {
            let a = attribution_of("LUD", &demo_stats());
            AnalyzeReport {
                scale: Scale::Tiny,
                critpath: analyze(&[a], DEFAULT_TOP_K),
            }
        };
        let a = mk().to_json().to_string();
        let b = mk().to_json().to_string();
        assert_eq!(a, b, "same inputs render the same bytes");
        let doc = Json::parse(&a).expect("parses");
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(CRITPATH_SCHEMA));
        assert_eq!(doc.get("scale").and_then(Json::as_str), Some("tiny"));
        assert!(doc.get("kernels").is_some());
        assert!(!a.contains("wall_us"), "no wall-clock state in the manifest");
    }

    #[test]
    fn summary_table_names_the_dominant_component() {
        let a = attribution_of("LUD", &demo_stats());
        let report = AnalyzeReport {
            scale: Scale::Tiny,
            critpath: analyze(&[a], DEFAULT_TOP_K),
        };
        let t = report.summary_table().expect("table");
        let text = t.to_string();
        assert!(text.contains("LUD"));
        assert!(text.contains("barrier"));
        let section = report.manifest_section();
        assert_eq!(
            section.get("dominant").and_then(|d| d.get("LUD")).and_then(Json::as_str),
            Some("barrier")
        );
    }
}

//! Plain-text and CSV rendering of experiment results.

use crate::error::StudyError;
use std::fmt;

/// A titled table of strings, the uniform output of every experiment.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title (e.g. "Figure 1: IPC over 8 and 28 shaders").
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of cells; each row must match `columns` in length.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: &str, columns: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            columns: columns.iter().map(std::string::ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Errors
    ///
    /// [`StudyError::TableRow`] if the row length does not match the
    /// header; the table is left unchanged.
    pub fn push(&mut self, row: Vec<String>) -> Result<(), StudyError> {
        if row.len() != self.columns.len() {
            return Err(StudyError::TableRow {
                got: row.len(),
                expected: self.columns.len(),
            });
        }
        self.rows.push(row);
        Ok(())
    }

    /// Renders the table as CSV (title omitted).
    pub fn to_csv(&self) -> String {
        let escape = |s: &str| -> String {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .columns
                .iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.title)?;
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        // First column (names, dendrogram art) reads left-aligned;
        // numeric columns right-align.
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .enumerate()
                .map(|(i, (c, w))| {
                    if i == 0 {
                        format!("{c:<w$}")
                    } else {
                        format!("{c:>w$}")
                    }
                })
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        writeln!(f, "{}", fmt_row(&self.columns))?;
        writeln!(f, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)))?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        Ok(())
    }
}

/// Formats a float with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a fraction as a percentage with 1 decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> Table {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.push(vec!["alpha".into(), "1.5".into()]).unwrap();
        t.push(vec!["b,c".into(), "2".into()]).unwrap();
        t
    }

    #[test]
    fn text_render_aligns() {
        let s = example().to_string();
        assert!(s.contains("Demo"));
        assert!(s.contains("alpha"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    fn csv_escapes_commas() {
        let csv = example().to_csv();
        assert!(csv.contains("\"b,c\""));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn push_rejects_bad_row_untouched() {
        let mut t = Table::new("t", &["a", "b"]);
        let err = t.push(vec!["only-one".into()]).unwrap_err();
        assert_eq!(
            err,
            crate::error::StudyError::TableRow {
                got: 1,
                expected: 2
            }
        );
        assert!(t.rows.is_empty(), "table unchanged on error");
    }

    #[test]
    fn formatters() {
        assert_eq!(f1(1.25), "1.2");
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(pct(0.5), "50.0%");
    }
}

//! The unified typed request API: one [`StudyRequest`] →
//! [`StudyResponse`] pipeline behind every front end.
//!
//! Both the `repro` CLI argument parser and the `repro serve` JSON
//! decoder lower into a [`StudyRequest`]; [`execute`] is the single
//! implementation of "run a study" — journal restore, corpus
//! profiling, per-experiment checkpointing, and the deterministic
//! study-manifest write all live here, so a request is answered
//! byte-identically no matter which front end carried it.
//!
//! The JSON grammar accepted by [`StudyRequest::from_json`] (the
//! `POST /study` body of the daemon):
//!
//! ```text
//! {
//!   "command":     "tables" | "check" | "analyze",   // default "tables"
//!   "artifacts":   "all" | ["fig1", "table3", ...],  // tables only
//!   "scale":       "tiny" | "small" | "paper",       // default "small"
//!   "jobs":        4,                                // optional hint
//!   "sim_threads": 4,                                // optional hint
//!   "top_k":       3                                 // analyze only
//! }
//! ```
//!
//! Unknown fields are rejected, as are `store`/`resume` — the daemon
//! owns its store; durability is a deployment property of the session,
//! not of one request. `jobs` and `sim_threads` are deliberately
//! **not** part of [`StudyRequest::study_key`]: results are
//! byte-identical at any worker width of either pool (`jobs`
//! parallelizes across replays, `sim_threads` shards the SMs inside
//! one — see `rodinia_study::engine`), so requests differing only in
//! those hints are the same study and may coalesce.

use std::collections::HashMap;
use std::path::PathBuf;
use std::time::Instant;

use datasets::Scale;
use obs::Json;
use store::{fnv1a64, Journal};

use crate::analyze::{run_analyze, AnalyzeReport, DEFAULT_TOP_K};
use crate::audit::{run_audit, AuditReport};
use crate::check::{run_check, CheckReport};
use crate::comparison::ComparisonStudy;
use crate::engine::StudySession;
use crate::error::StudyError;
use crate::experiments::{run_comparison, run_gpu, ExperimentId};
use crate::manifest;
use crate::report::Table;

/// Process exit code for request misuse (bad flags, unknown artifacts,
/// `--resume` without `--store`), matching UNIX convention.
pub const EXIT_MISUSE: i32 = 2;

/// What a request asks the study engine to do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StudyCommand {
    /// Regenerate paper artifacts (`repro fig1 table3 ...`).
    Tables {
        /// The requested artifacts, in request order.
        artifacts: Vec<ExperimentId>,
    },
    /// Run the sanitizer over the whole suite (`repro check`).
    Check,
    /// Prove symbolic access contracts over the whole suite
    /// (`repro audit`).
    Audit,
    /// Critical-path attribution across the suite (`repro analyze`).
    Analyze {
        /// Per-benchmark bottleneck chain depth.
        top_k: usize,
    },
}

/// One fully-typed study request, front-end agnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StudyRequest {
    /// What to run.
    pub command: StudyCommand,
    /// Input scale.
    pub scale: Scale,
    /// Worker-pool width hint (`None` = keep the session's width).
    pub jobs: Option<usize>,
    /// Intra-replay shard-count hint (`None` = keep the current
    /// setting; `0` = auto). Like `jobs`, a pure wall-clock knob.
    pub sim_threads: Option<usize>,
    /// Persistent store directory the caller asked for, if any. Only
    /// meaningful on the CLI path; [`execute`] itself uses whatever
    /// store is attached to the session.
    pub store: Option<PathBuf>,
    /// Replay the study journal before running (requires `store`).
    pub resume: bool,
}

/// Request-level misuse: everything here exits with [`EXIT_MISUSE`] on
/// the CLI and maps to HTTP 400 on the daemon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    /// `--resume` given without `--store`.
    ResumeWithoutStore,
    /// A tables request naming no artifacts.
    NoArtifacts,
    /// An artifact name the registry does not know.
    UnknownArtifact(String),
    /// A scale token other than tiny/small/paper.
    UnknownScale(String),
    /// A JSON request field outside the grammar.
    UnknownField(String),
    /// Any other shape violation, with a fixed message.
    Malformed(&'static str),
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::ResumeWithoutStore => write!(f, "--resume requires --store <dir>"),
            RequestError::NoArtifacts => write!(f, "no artifacts requested; try `repro list`"),
            RequestError::UnknownArtifact(name) => {
                write!(f, "unknown artifact {name:?}; try `repro list`")
            }
            RequestError::UnknownScale(s) => {
                write!(f, "unknown scale {s:?}; expected tiny, small, or paper")
            }
            RequestError::UnknownField(k) => write!(f, "unknown request field {k:?}"),
            RequestError::Malformed(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for RequestError {}

/// Parses a scale token (`tiny`/`small`/`paper`, the same words the
/// CLI accepts as positionals).
pub fn parse_scale(s: &str) -> Option<Scale> {
    match s {
        "tiny" => Some(Scale::Tiny),
        "small" => Some(Scale::Small),
        "paper" => Some(Scale::Paper),
        _ => None,
    }
}

fn as_count(v: &Json, msg: &'static str) -> Result<usize, RequestError> {
    let n = v.as_f64().ok_or(RequestError::Malformed(msg))?;
    if n < 0.0 || n.fract() != 0.0 || n > f64::from(u32::MAX) {
        return Err(RequestError::Malformed(msg));
    }
    Ok(n as usize)
}

impl StudyRequest {
    /// A plain tables request with defaults everywhere else.
    pub fn tables(artifacts: Vec<ExperimentId>, scale: Scale) -> StudyRequest {
        StudyRequest {
            command: StudyCommand::Tables { artifacts },
            scale,
            jobs: None,
            sim_threads: None,
            store: None,
            resume: false,
        }
    }

    /// Checks cross-field invariants. Every violation is misuse
    /// ([`EXIT_MISUSE`] / HTTP 400), shared verbatim by both front
    /// ends so their diagnostics cannot drift apart.
    ///
    /// # Errors
    ///
    /// [`RequestError`] naming the violated invariant.
    pub fn validate(&self) -> Result<(), RequestError> {
        if self.resume && self.store.is_none() {
            return Err(RequestError::ResumeWithoutStore);
        }
        match &self.command {
            StudyCommand::Tables { artifacts } if artifacts.is_empty() => {
                Err(RequestError::NoArtifacts)
            }
            StudyCommand::Analyze { top_k } if *top_k == 0 => {
                Err(RequestError::Malformed("top_k must be at least 1"))
            }
            _ => Ok(()),
        }
    }

    /// The canonical identity of this request: what the study journal
    /// binds to and what the daemon coalesces identical in-flight
    /// requests on. `jobs` and `sim_threads` are excluded — neither
    /// worker width changes results — and so are `store`/`resume`,
    /// which are durability deployment knobs, not study inputs.
    pub fn study_key(&self) -> String {
        match &self.command {
            StudyCommand::Tables { artifacts } => format!(
                "repro/{:?}/{}",
                self.scale,
                artifacts.iter().map(|id| id.name()).collect::<Vec<_>>().join("+")
            ),
            StudyCommand::Check => format!("check/{:?}", self.scale),
            StudyCommand::Audit => format!("audit/{:?}", self.scale),
            StudyCommand::Analyze { top_k } => format!("analyze/{:?}/k{top_k}", self.scale),
        }
    }

    /// Decodes the `POST /study` JSON body (grammar in the module
    /// docs). Strict: unknown fields are errors, and `store`/`resume`
    /// are rejected explicitly — the daemon owns its store.
    ///
    /// # Errors
    ///
    /// [`RequestError`] describing the first violation encountered.
    pub fn from_json(doc: &Json) -> Result<StudyRequest, RequestError> {
        let pairs = doc
            .as_obj()
            .ok_or(RequestError::Malformed("request body must be a JSON object"))?;
        let mut command: Option<&str> = None;
        let mut artifacts: Option<Vec<ExperimentId>> = None;
        let mut scale = Scale::Small;
        let mut jobs: Option<usize> = None;
        let mut sim_threads: Option<usize> = None;
        let mut top_k: Option<usize> = None;
        for (key, value) in pairs {
            match key.as_str() {
                "command" => {
                    command = Some(value.as_str().ok_or(RequestError::Malformed(
                        "\"command\" must be a string",
                    ))?);
                }
                "scale" => {
                    let s = value
                        .as_str()
                        .ok_or(RequestError::Malformed("\"scale\" must be a string"))?;
                    scale = parse_scale(s)
                        .ok_or_else(|| RequestError::UnknownScale(s.to_string()))?;
                }
                "artifacts" => {
                    if value.as_str() == Some("all") {
                        artifacts = Some(ExperimentId::all());
                    } else {
                        let arr = value.as_arr().ok_or(RequestError::Malformed(
                            "\"artifacts\" must be \"all\" or an array of artifact names",
                        ))?;
                        let mut ids = Vec::with_capacity(arr.len());
                        for v in arr {
                            let name = v.as_str().ok_or(RequestError::Malformed(
                                "\"artifacts\" entries must be strings",
                            ))?;
                            ids.push(
                                ExperimentId::parse(name)
                                    .ok_or_else(|| RequestError::UnknownArtifact(name.to_string()))?,
                            );
                        }
                        artifacts = Some(ids);
                    }
                }
                "jobs" => {
                    jobs = Some(as_count(value, "\"jobs\" must be a non-negative integer")?);
                }
                "sim_threads" => {
                    sim_threads = Some(as_count(
                        value,
                        "\"sim_threads\" must be a non-negative integer",
                    )?);
                }
                "top_k" => {
                    top_k = Some(as_count(value, "\"top_k\" must be a non-negative integer")?);
                }
                "store" | "resume" => {
                    return Err(RequestError::Malformed(
                        "the daemon owns the store; \"store\" and \"resume\" are not request fields",
                    ))
                }
                other => return Err(RequestError::UnknownField(other.to_string())),
            }
        }
        let command = match command.unwrap_or("tables") {
            "tables" => StudyCommand::Tables {
                artifacts: artifacts.ok_or(RequestError::Malformed(
                    "tables requests need an \"artifacts\" field",
                ))?,
            },
            other => {
                if artifacts.is_some() {
                    return Err(RequestError::Malformed(
                        "\"artifacts\" only applies to tables requests",
                    ));
                }
                match other {
                    "check" => StudyCommand::Check,
                    "audit" => StudyCommand::Audit,
                    "analyze" => StudyCommand::Analyze {
                        top_k: top_k.take().unwrap_or(DEFAULT_TOP_K),
                    },
                    _ => {
                        return Err(RequestError::Malformed(
                            "\"command\" must be \"tables\", \"check\", \"audit\", or \"analyze\"",
                        ))
                    }
                }
            }
        };
        if top_k.is_some() && !matches!(command, StudyCommand::Analyze { .. }) {
            return Err(RequestError::Malformed(
                "\"top_k\" only applies to analyze requests",
            ));
        }
        Ok(StudyRequest {
            command,
            scale,
            jobs,
            sim_threads,
            store: None,
            resume: false,
        })
    }
}

/// What [`execute`] produced, carrying the typed reports so front ends
/// can render them their own way while the machine-readable body stays
/// shared.
#[derive(Debug)]
pub enum StudyResponse {
    /// A tables run: every requested artifact with its rendered tables,
    /// in request order.
    Tables {
        /// Scale the study ran at.
        scale: Scale,
        /// `(artifact name, tables)` per completed experiment.
        completed: Vec<(String, Vec<Table>)>,
    },
    /// A sanitizer run.
    Check(CheckReport),
    /// An access-contract audit run.
    Audit(AuditReport),
    /// A critical-path attribution run.
    Analyze(AnalyzeReport),
}

impl StudyResponse {
    /// The machine-readable response document. For tables this is
    /// exactly [`manifest::study_manifest_json`] — the daemon's
    /// response body and the CLI's `STUDY_manifest.json` are the same
    /// bytes by construction.
    pub fn body_json(&self) -> Json {
        match self {
            StudyResponse::Tables { scale, completed } => {
                manifest::study_manifest_json(*scale, completed)
            }
            StudyResponse::Check(report) => report.to_json(),
            StudyResponse::Audit(report) => report.to_json(),
            StudyResponse::Analyze(report) => report.to_json(),
        }
    }

    /// [`StudyResponse::body_json`] rendered with a trailing newline —
    /// byte-identical to the file the corresponding manifest writer
    /// produces.
    pub fn body_bytes(&self) -> Vec<u8> {
        format!("{}\n", self.body_json()).into_bytes()
    }

    /// The CLI exit code this result maps to: nonzero only for a check
    /// or audit run with error-severity findings.
    pub fn exit_code(&self) -> i32 {
        match self {
            StudyResponse::Check(report) => i32::from(report.error_count() > 0),
            StudyResponse::Audit(report) => i32::from(report.error_count() > 0),
            _ => 0,
        }
    }
}

/// Progress callbacks during [`execute`]: the CLI prints tables and
/// accumulates its run manifest here; the daemon stays [`Quiet`].
pub trait RequestObserver {
    /// A human-facing progress or warning line (CLI: stderr).
    fn note(&mut self, line: &str) {
        let _ = line;
    }

    /// One experiment finished (freshly computed or journal-restored)
    /// with its rendered tables and wall-clock duration.
    fn experiment_done(&mut self, id: &str, tables: &[Table], wall_us: u64, restored: bool) {
        let _ = (id, tables, wall_us, restored);
    }
}

/// The no-op observer (used by the daemon).
#[derive(Debug, Default)]
pub struct Quiet;

impl RequestObserver for Quiet {}

/// Embeds a check/audit verdict as a named section of the store's
/// `STUDY_manifest.json`, so the serve daemon (which exposes the study
/// manifest) surfaces sanitizer status alongside the tables.
///
/// An existing manifest is updated in place — its experiments survive,
/// only the named section is replaced — so a `check` after a tables
/// run augments rather than clobbers. Without a store this is a no-op;
/// a write failure costs the artifact, never the response.
fn write_verdict_section(
    session: &StudySession,
    scale: Scale,
    name: &str,
    payload: Json,
    observer: &mut dyn RequestObserver,
) {
    let Some(s) = session.store() else { return };
    let doc = match std::fs::read_to_string(s.dir().join(manifest::STUDY_MANIFEST_FILE))
        .ok()
        .and_then(|text| Json::parse(&text).ok())
    {
        Some(Json::Obj(mut pairs)) => {
            match pairs.iter_mut().find(|(k, _)| k == name) {
                Some(p) => p.1 = payload,
                None => pairs.push((name.to_string(), payload)),
            }
            Json::Obj(pairs)
        }
        _ => manifest::study_manifest_json_with_sections(
            scale,
            &[],
            &[(name.to_string(), payload)],
        ),
    };
    match manifest::write_manifest(s.dir(), manifest::ManifestKind::Study, &doc) {
        Ok(path) => observer.note(&format!("wrote study manifest {}", path.display())),
        Err(e) => observer.note(&format!("store: {e}")),
    }
}

/// Runs a validated [`StudyRequest`] on `session` — the one
/// implementation behind both front ends.
///
/// For tables requests this owns the full study lifecycle: the study
/// journal is opened against [`StudyRequest::study_key`] (restoring
/// completed experiments when `resume` is set), the comparison corpus
/// is profiled once if any requested artifact needs it, every freshly
/// computed experiment is checkpointed, and — when the session has a
/// store attached — the deterministic `STUDY_manifest.json` is written
/// next to it. Per-request `jobs` / `sim_threads` hints resize the
/// session's worker pool and the intra-replay shard count; results are
/// byte-identical at any width of either.
///
/// # Errors
///
/// Any [`StudyError`] from the drivers; the caller decides how to
/// render it (CLI: exit 1, daemon: HTTP 500).
pub fn execute(
    session: &StudySession,
    req: &StudyRequest,
    observer: &mut dyn RequestObserver,
) -> Result<StudyResponse, StudyError> {
    if let Some(n) = req.jobs {
        session.set_jobs(n);
    }
    if let Some(n) = req.sim_threads {
        session.set_sim_threads(n);
    }
    let artifacts = match &req.command {
        StudyCommand::Check => {
            let report = run_check(session, req.scale)?;
            write_verdict_section(session, req.scale, "check", report.manifest_section(), observer);
            return Ok(StudyResponse::Check(report));
        }
        StudyCommand::Audit => {
            let report = run_audit(session, req.scale)?;
            write_verdict_section(session, req.scale, "audit", report.manifest_section(), observer);
            return Ok(StudyResponse::Audit(report));
        }
        StudyCommand::Analyze { top_k } => {
            return run_analyze(session, req.scale, *top_k).map(StudyResponse::Analyze)
        }
        StudyCommand::Tables { artifacts } => artifacts,
    };
    // The study journal checkpoints whole experiments (id + rendered
    // tables). With resume, completed experiments restore from it and
    // skip recomputation entirely; the sweep-level journal inside the
    // sensitivity driver resumes partially-finished experiments.
    let study_key = req.study_key();
    let mut restored: HashMap<&'static str, Vec<Table>> = HashMap::new();
    let journal = session.store().and_then(|s| {
        let name = format!("study-{:016x}.journal", fnv1a64(study_key.as_bytes()));
        match Journal::open(&s.journal_path(&name), &study_key, req.resume) {
            Ok((j, records)) => {
                for r in records {
                    let Some(id) = r.get("id").and_then(Json::as_str) else { continue };
                    let Some(doc) = r.get("tables").and_then(Json::as_arr) else { continue };
                    let Some(tables) = doc
                        .iter()
                        .map(manifest::table_from_json)
                        .collect::<Option<Vec<_>>>()
                    else {
                        continue;
                    };
                    if let Some(&known) = artifacts.iter().find(|k| k.name() == id) {
                        restored.insert(known.name(), tables);
                    }
                }
                Some(j)
            }
            Err(e) => {
                observer.note(&format!(
                    "store: study journal unavailable ({e}); running without experiment checkpoints"
                ));
                None
            }
        }
    });
    let corpus = if artifacts
        .iter()
        .any(|&id| id.needs_corpus() && !restored.contains_key(id.name()))
    {
        observer.note("profiling the 24-workload comparison corpus ...");
        Some(ComparisonStudy::run(session, req.scale)?)
    } else {
        None
    };
    let mut completed: Vec<(String, Vec<Table>)> = Vec::new();
    for &id in artifacts {
        let start = Instant::now();
        let (tables, was_restored) = if let Some(t) = restored.remove(id.name()) {
            observer.note(&format!("{}: restored from study journal", id.name()));
            (t, true)
        } else {
            let tables = if id.needs_corpus() {
                run_comparison(id, corpus.as_ref().expect("corpus built"))?
            } else {
                run_gpu(session, id, req.scale)?
            };
            if let Some(j) = &journal {
                let record = Json::obj(vec![
                    ("id", Json::from(id.name())),
                    (
                        "tables",
                        Json::from(tables.iter().map(manifest::table_to_json).collect::<Vec<_>>()),
                    ),
                ]);
                if let Err(e) = j.append(&record) {
                    observer.note(&format!("store: cannot checkpoint {}: {e}", id.name()));
                }
            }
            (tables, false)
        };
        observer.experiment_done(id.name(), &tables, start.elapsed().as_micros() as u64, was_restored);
        completed.push((id.name().to_string(), tables));
    }
    // The deterministic study manifest rides along with the store: pure
    // tables, no timings, so an interrupted-and-resumed run's file is
    // byte-identical to an uninterrupted one (the CI crash-recovery
    // gate diffs exactly this). A write failure costs the artifact,
    // never the response.
    if let Some(s) = session.store() {
        match manifest::write_study_manifest(s.dir(), req.scale, &completed) {
            Ok(path) => observer.note(&format!("wrote study manifest {}", path.display())),
            Err(e) => observer.note(&format!("store: {e}")),
        }
    }
    Ok(StudyResponse::Tables {
        scale: req.scale,
        completed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_req(body: &str) -> Result<StudyRequest, RequestError> {
        StudyRequest::from_json(&Json::parse(body).expect("test body parses"))
    }

    #[test]
    fn resume_without_store_is_misuse() {
        let mut req = StudyRequest::tables(vec![ExperimentId::Fig1], Scale::Tiny);
        req.resume = true;
        assert_eq!(req.validate(), Err(RequestError::ResumeWithoutStore));
        assert!(RequestError::ResumeWithoutStore
            .to_string()
            .contains("--resume requires --store"));
        req.store = Some(PathBuf::from("/tmp/store"));
        assert_eq!(req.validate(), Ok(()));
    }

    #[test]
    fn empty_artifact_list_is_misuse() {
        let req = StudyRequest::tables(Vec::new(), Scale::Small);
        assert_eq!(req.validate(), Err(RequestError::NoArtifacts));
    }

    #[test]
    fn study_key_spells_artifacts_and_ignores_jobs() {
        let mut req =
            StudyRequest::tables(vec![ExperimentId::PlackettBurman, ExperimentId::Fig1], Scale::Tiny);
        assert_eq!(req.study_key(), "repro/Tiny/pb+fig1");
        req.jobs = Some(8);
        assert_eq!(req.study_key(), "repro/Tiny/pb+fig1", "jobs never changes identity");
        req.sim_threads = Some(4);
        assert_eq!(
            req.study_key(),
            "repro/Tiny/pb+fig1",
            "sim_threads never changes identity"
        );
        req.command = StudyCommand::Analyze { top_k: 5 };
        assert_eq!(req.study_key(), "analyze/Tiny/k5");
        req.command = StudyCommand::Check;
        assert_eq!(req.study_key(), "check/Tiny");
        req.command = StudyCommand::Audit;
        assert_eq!(req.study_key(), "audit/Tiny");
    }

    #[test]
    fn json_grammar_round_trips_a_tables_request() {
        let req =
            parse_req(r#"{"artifacts":["fig1","pb"],"scale":"tiny","jobs":4,"sim_threads":2}"#)
                .expect("valid request");
        assert_eq!(
            req.command,
            StudyCommand::Tables {
                artifacts: vec![ExperimentId::Fig1, ExperimentId::PlackettBurman]
            }
        );
        assert_eq!(req.scale, Scale::Tiny);
        assert_eq!(req.jobs, Some(4));
        assert_eq!(req.sim_threads, Some(2));
        assert!(!req.resume);
        assert_eq!(req.validate(), Ok(()));

        let all = parse_req(r#"{"artifacts":"all"}"#).expect("all");
        assert_eq!(
            all.command,
            StudyCommand::Tables { artifacts: ExperimentId::all() }
        );
        assert_eq!(all.scale, Scale::Small, "scale defaults to small");
    }

    #[test]
    fn json_grammar_covers_check_and_analyze() {
        let check = parse_req(r#"{"command":"check","scale":"paper"}"#).expect("check");
        assert_eq!(check.command, StudyCommand::Check);
        assert_eq!(check.scale, Scale::Paper);
        let analyze = parse_req(r#"{"command":"analyze","top_k":5}"#).expect("analyze");
        assert_eq!(analyze.command, StudyCommand::Analyze { top_k: 5 });
        let analyze = parse_req(r#"{"command":"analyze"}"#).expect("default top_k");
        assert_eq!(analyze.command, StudyCommand::Analyze { top_k: DEFAULT_TOP_K });
        let audit = parse_req(r#"{"command":"audit","scale":"tiny"}"#).expect("audit");
        assert_eq!(audit.command, StudyCommand::Audit);
        assert_eq!(audit.scale, Scale::Tiny);
        assert!(matches!(
            parse_req(r#"{"command":"audit","top_k":2}"#),
            Err(RequestError::Malformed(m)) if m.contains("top_k")
        ));
    }

    #[test]
    fn json_grammar_is_strict() {
        assert!(matches!(
            parse_req(r#"{"artifacts":["fig99"]}"#),
            Err(RequestError::UnknownArtifact(n)) if n == "fig99"
        ));
        assert!(matches!(
            parse_req(r#"{"artifacts":["fig1"],"scale":"huge"}"#),
            Err(RequestError::UnknownScale(_))
        ));
        assert!(matches!(
            parse_req(r#"{"artifacts":["fig1"],"color":"red"}"#),
            Err(RequestError::UnknownField(k)) if k == "color"
        ));
        assert!(matches!(
            parse_req(r#"{"artifacts":["fig1"],"store":"/tmp/s"}"#),
            Err(RequestError::Malformed(m)) if m.contains("daemon owns the store")
        ));
        assert!(matches!(
            parse_req(r#"{"command":"check","artifacts":["fig1"]}"#),
            Err(RequestError::Malformed(_))
        ));
        assert!(matches!(
            parse_req(r#"{"artifacts":["fig1"],"top_k":2}"#),
            Err(RequestError::Malformed(m)) if m.contains("top_k")
        ));
        assert!(matches!(
            parse_req(r#"{"artifacts":["fig1"],"jobs":1.5}"#),
            Err(RequestError::Malformed(_))
        ));
        assert!(matches!(
            parse_req(r#"{"artifacts":["fig1"],"sim_threads":-1}"#),
            Err(RequestError::Malformed(m)) if m.contains("sim_threads")
        ));
        assert!(matches!(parse_req("[]"), Err(RequestError::Malformed(_))));
        assert!(matches!(parse_req("{}"), Err(RequestError::Malformed(_))));
    }

    #[test]
    fn execute_tables_body_is_the_study_manifest() {
        let session = StudySession::sequential();
        let req = StudyRequest::tables(
            vec![ExperimentId::Table1, ExperimentId::Table5],
            Scale::Tiny,
        );
        let resp = execute(&session, &req, &mut Quiet).expect("cheap tables run");
        let body = resp.body_bytes();
        let text = String::from_utf8(body.clone()).expect("utf-8");
        assert!(text.ends_with('\n'));
        let doc = Json::parse(&text).expect("parses");
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some(manifest::STUDY_SCHEMA)
        );
        // Byte-identical to what the manifest builder would serialize.
        let StudyResponse::Tables { scale, completed } = &resp else {
            panic!("tables request returns a tables response");
        };
        assert_eq!(
            body,
            format!("{}\n", manifest::study_manifest_json(*scale, completed)).into_bytes()
        );
        assert_eq!(resp.exit_code(), 0);
    }

    #[test]
    fn execute_applies_the_jobs_and_sim_threads_hints() {
        let session = StudySession::sequential();
        let prev = session.sim_threads();
        let mut req = StudyRequest::tables(vec![ExperimentId::Table2], Scale::Tiny);
        req.jobs = Some(3);
        req.sim_threads = Some(2);
        execute(&session, &req, &mut Quiet).expect("runs");
        assert_eq!(session.jobs(), 3);
        assert_eq!(session.sim_threads(), 2);
        session.set_sim_threads(prev);
    }
}

//! Suite-level metadata: Table I, Table IV, and the combined 24-workload
//! list of the cross-suite study.

use datasets::Scale;
use rodinia_gpu::suite::all_benchmarks;
use tracekit::CpuWorkload;

use crate::error::StudyError;
use crate::report::Table;

/// Reproduces Table I: the Rodinia applications, their dwarves, domains,
/// and (scale-dependent) problem sizes.
pub fn rodinia_table(scale: Scale) -> Result<Table, StudyError> {
    let mut t = Table::new(
        "Table I: Rodinia applications and kernels",
        &["Application", "Dwarf", "Domain", "Problem size"],
    );
    for b in all_benchmarks(scale) {
        t.push(vec![
            format!("{} ({})", b.name(), b.abbrev()),
            b.dwarf().to_string(),
            b.domain().to_string(),
            b.problem_size(),
        ])?;
    }
    Ok(t)
}

/// Reproduces Table IV: the qualitative Parsec-vs-Rodinia comparison.
pub fn comparison_table() -> Result<Table, StudyError> {
    let mut t = Table::new(
        "Table IV: comparison between Parsec and Rodinia",
        &["Feature", "Parsec", "Rodinia"],
    );
    let rows: [(&str, &str, &str); 11] = [
        ("Platform", "CPU", "CPU and GPU"),
        (
            "Programming Model",
            "Pthreads, OpenMP, and TBB",
            "OpenMP and CUDA",
        ),
        (
            "Machine Model",
            "Shared Memory",
            "Shared Memory and Offloading",
        ),
        (
            "Application Domains",
            "Scientific, Engineering, Finance, Multimedia",
            "Scientific, Engineering, Data Mining",
        ),
        (
            "Application Count",
            "3 Kernels and 9 Applications",
            "6 Kernels and 6 Applications",
        ),
        ("Optimized for", "Multicore", "Manycore and Accelerator"),
        ("Incremental Versions", "No", "Yes"),
        ("Memory Space", "HW Cache", "HW and SW Caches"),
        ("Problem Sizes", "Small-Large", "Small-Large"),
        (
            "Special SW Techniques",
            "SW Pipelining",
            "Ghost-zone and Persistent Thread Blocks",
        ),
        (
            "Synchronization",
            "Barriers, Locks, and Conditions",
            "Barriers",
        ),
    ];
    for (f, p, r) in rows {
        t.push(vec![f.into(), p.into(), r.into()])?;
    }
    Ok(t)
}

/// One entry of the combined cross-suite workload list.
pub struct LabeledWorkload {
    /// Display label, with suite tag as in Figure 6 (e.g. `srad(R)`,
    /// `vips(P)`, `streamcluster(R, P)`).
    pub label: String,
    /// The runnable workload.
    pub workload: Box<dyn CpuWorkload>,
}

impl std::fmt::Debug for LabeledWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LabeledWorkload")
            .field("label", &self.label)
            .finish_non_exhaustive()
    }
}

/// The 24 workloads of the paper's Figure 6: 11 Rodinia (without
/// StreamCluster) + 12 Parsec (without StreamCluster) + the shared
/// StreamCluster labeled `(R, P)`.
pub fn combined_workloads(scale: Scale) -> Vec<LabeledWorkload> {
    let mut out = Vec::new();
    for w in rodinia_cpu::all_workloads(scale) {
        let label = if w.name() == "streamcluster" {
            "streamcluster(R, P)".to_string()
        } else {
            format!("{}(R)", w.name())
        };
        out.push(LabeledWorkload { label, workload: w });
    }
    for w in parsec_lite::all_workloads(scale) {
        out.push(LabeledWorkload {
            label: format!("{}(P)", w.name()),
            workload: w,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_twelve_apps() {
        let t = rodinia_table(Scale::Tiny).expect("table1 renders");
        assert_eq!(t.rows.len(), 12);
        assert!(t.to_string().contains("Graph Traversal"));
    }

    #[test]
    fn table4_matches_the_paper_shape() {
        let t = comparison_table().expect("table4 renders");
        assert_eq!(t.rows.len(), 11);
        let text = t.to_string();
        assert!(text.contains("Offloading"));
        assert!(text.contains("Ghost-zone"));
    }

    #[test]
    fn combined_list_has_24_workloads_like_figure6() {
        let ws = combined_workloads(Scale::Tiny);
        assert_eq!(ws.len(), 24);
        let labels: Vec<&str> = ws.iter().map(|w| w.label.as_str()).collect();
        assert!(labels.contains(&"streamcluster(R, P)"));
        assert!(labels.contains(&"mummergpu(R)"));
        assert!(labels.contains(&"raytrace(P)"));
        assert_eq!(
            labels.iter().filter(|l| l.ends_with("(R)")).count(),
            11,
            "{labels:?}"
        );
        assert_eq!(labels.iter().filter(|l| l.ends_with("(P)")).count(), 12);
    }
}

//! The `repro check` driver: the full suite through the sanitizer.
//!
//! For every suite benchmark (and the Table III incremental variants),
//! this captures the workload once through the shared
//! [`TraceCache`](crate::trace_cache::TraceCache)
//! with a sanitizer sink installed, runs the [`sanitize::Analyzer`]
//! dynamic checkers over the collected launch tapes, and runs the
//! access-shape lints over the captured kernel traces (merged per
//! kernel across launches, so thresholds see whole-kernel statistics).
//!
//! Error-severity findings are contract violations — the suite must
//! report none — so [`CheckReport::error_count`] drives the process
//! exit code and the CI gate. Warnings (the lints) are advisory: the
//! paper's own Table III narrative expects the unoptimized variants to
//! trip them.

use std::sync::{Arc, Mutex};

use datasets::Scale;
use obs::Json;
use rodinia_gpu::{leukocyte::Leukocyte, nw::Nw, srad::Srad, suite::all_benchmarks};
use sanitize::{
    error_count, findings_json, lint_trace, warning_count, Analyzer, Finding, KernelLintMetrics,
    LintConfig,
};
use simt::{Gpu, GpuConfig, KernelStats, KernelTrace, LaunchTape};

use crate::engine::StudySession;
use crate::error::StudyError;
use crate::report::Table;

/// The sanitizer verdict for one benchmark (or variant).
#[derive(Debug)]
pub struct BenchCheck {
    /// Display name (`BP`, `SRAD v1`, ...).
    pub name: String,
    /// Kernel launches the sanitizer observed.
    pub launches: u64,
    /// Dynamic-checker and lint findings, coalesced and ordered.
    pub findings: Vec<Finding>,
    /// Measured access-shape statistics, one per distinct kernel.
    pub metrics: Vec<KernelLintMetrics>,
}

impl BenchCheck {
    /// Error-severity findings for this benchmark.
    pub fn errors(&self) -> usize {
        error_count(&self.findings)
    }

    /// Warning-severity findings for this benchmark.
    pub fn warnings(&self) -> usize {
        warning_count(&self.findings)
    }
}

/// The full `repro check` result across the suite.
#[derive(Debug)]
pub struct CheckReport {
    /// Scale the suite ran at.
    pub scale: Scale,
    /// Per-benchmark verdicts, suite order then variants.
    pub benches: Vec<BenchCheck>,
}

impl CheckReport {
    /// Total error-severity findings (drives the exit code).
    pub fn error_count(&self) -> usize {
        self.benches.iter().map(BenchCheck::errors).sum()
    }

    /// Total warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.benches.iter().map(BenchCheck::warnings).sum()
    }

    /// The summary table: one row per benchmark.
    ///
    /// # Errors
    ///
    /// [`StudyError::TableRow`] only on an internal width bug.
    pub fn summary_table(&self) -> Result<Table, StudyError> {
        let mut t = Table::new(
            &format!("Sanitizer check ({:?} scale)", self.scale),
            &["Benchmark", "Launches", "Kernels", "Errors", "Warnings"],
        );
        for b in &self.benches {
            t.push(vec![
                b.name.clone(),
                b.launches.to_string(),
                b.metrics.len().to_string(),
                b.errors().to_string(),
                b.warnings().to_string(),
            ])?;
        }
        Ok(t)
    }

    /// Every finding as a rendered text line, grouped by benchmark.
    pub fn finding_lines(&self) -> Vec<String> {
        let mut out = Vec::new();
        for b in &self.benches {
            for line in sanitize::render_findings(&b.findings) {
                out.push(format!("{}: {line}", b.name));
            }
        }
        out
    }

    /// The machine-readable report (`repro check --json` schema):
    /// `{"scale", "errors", "warnings", "benchmarks": [{"name",
    /// "launches", ...findings payload..., "metrics": [...]}]}`.
    pub fn to_json(&self) -> Json {
        let benches = self
            .benches
            .iter()
            .map(|b| {
                let mut pairs = vec![
                    ("name".to_string(), Json::Str(b.name.clone())),
                    ("launches".to_string(), Json::u64(b.launches)),
                ];
                if let Json::Obj(inner) = findings_json(&b.findings) {
                    pairs.extend(inner);
                }
                pairs.push((
                    "metrics".to_string(),
                    Json::Arr(b.metrics.iter().map(metrics_json).collect()),
                ));
                Json::Obj(pairs)
            })
            .collect();
        Json::obj(vec![
            ("scale", Json::Str(format!("{:?}", self.scale))),
            ("errors", Json::u64(self.error_count() as u64)),
            ("warnings", Json::u64(self.warning_count() as u64)),
            ("benchmarks", Json::Arr(benches)),
            ("store", crate::manifest::store_counters_json()),
        ])
    }

    /// A compact verdict for embedding in `BENCH_manifest.json`:
    /// error/warning totals and the per-benchmark counts, without the
    /// full finding payloads.
    pub fn manifest_section(&self) -> Json {
        Json::obj(vec![
            ("errors", Json::u64(self.error_count() as u64)),
            ("warnings", Json::u64(self.warning_count() as u64)),
            (
                "benchmarks",
                Json::Obj(
                    self.benches
                        .iter()
                        .map(|b| {
                            (
                                b.name.clone(),
                                Json::obj(vec![
                                    ("launches", Json::u64(b.launches)),
                                    ("errors", Json::u64(b.errors() as u64)),
                                    ("warnings", Json::u64(b.warnings() as u64)),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

fn metrics_json(m: &KernelLintMetrics) -> Json {
    Json::obj(vec![
        ("kernel", Json::Str(m.kernel.clone())),
        ("shared_ops", Json::u64(m.shared_ops)),
        ("bank_degree_avg", Json::Num(m.bank_degree_avg)),
        ("bank_degree_max", Json::u64(u64::from(m.bank_degree_max))),
        ("global_ops", Json::u64(m.global_ops)),
        ("tex_ops", Json::u64(m.tex_ops)),
        ("coalescing_ratio", Json::Num(m.coalescing_ratio)),
        ("redundancy", Json::Num(m.redundancy)),
        (
            "distinct_segments_per_cta",
            Json::Num(m.distinct_segments_per_cta),
        ),
    ])
}

/// Concatenates the CTAs of every launch of each kernel, in first-launch
/// order, so lints see whole-kernel statistics instead of per-launch
/// fragments (NW launches one kernel per anti-diagonal; linting a
/// two-CTA fragment would duplicate findings and starve the minimums).
fn merge_traces_by_kernel(traces: &[Arc<KernelTrace>]) -> Vec<KernelTrace> {
    let mut merged: Vec<KernelTrace> = Vec::new();
    for t in traces {
        match merged.iter_mut().find(|m| m.name == t.name) {
            Some(m) => m.ctas.extend(t.ctas.iter().cloned()),
            None => merged.push((**t).clone()),
        }
    }
    merged
}

/// One checkable workload: a suite benchmark or an incremental variant.
/// Shared with the `repro audit` driver, which walks the same corpus
/// through the same cache keys.
pub(crate) struct CheckTarget {
    /// Display name in the report.
    pub(crate) label: String,
    /// Trace-cache family key.
    pub(crate) family: &'static str,
    /// Trace-cache variant key.
    pub(crate) variant: &'static str,
    /// Runs the workload on a device.
    pub(crate) run: Box<dyn Fn(&mut Gpu) -> KernelStats + Send + Sync>,
}

pub(crate) fn suite_targets(scale: Scale) -> Vec<CheckTarget> {
    let mut targets: Vec<CheckTarget> = all_benchmarks(scale)
        .into_iter()
        .map(|b| {
            let b = Arc::new(b);
            CheckTarget {
                label: b.abbrev().to_string(),
                family: b.abbrev(),
                variant: "",
                run: Box::new(move |gpu| b.run_on(gpu)),
            }
        })
        .collect();
    // The Table III incremental versions: the lint ground truth.
    targets.push(variant_target("SRAD v1", "SRAD", "v1", move |gpu| {
        Srad::v1(scale).run(gpu)
    }));
    targets.push(variant_target("SRAD v2", "SRAD", "v2", move |gpu| {
        Srad::v2(scale).run(gpu)
    }));
    targets.push(variant_target("LC v1", "LC", "v1", move |gpu| {
        Leukocyte::v1(scale).run(gpu)
    }));
    targets.push(variant_target("LC v2", "LC", "v2", move |gpu| {
        Leukocyte::v2(scale).run(gpu)
    }));
    targets.push(variant_target("NW naive", "NW", "naive", move |gpu| {
        Nw::naive(scale).run(gpu)
    }));
    targets
}

fn variant_target(
    label: &str,
    family: &'static str,
    variant: &'static str,
    run: impl Fn(&mut Gpu) -> KernelStats + Send + Sync + 'static,
) -> CheckTarget {
    CheckTarget {
        label: label.to_string(),
        family,
        variant,
        run: Box::new(run),
    }
}

/// Runs one target with a sanitizer sink installed and returns its
/// collected tapes plus the captured traces.
pub(crate) fn sanitized_capture(
    session: &StudySession,
    scale: Scale,
    cfg: &GpuConfig,
    target: &CheckTarget,
) -> Result<(Vec<LaunchTape>, Vec<Arc<KernelTrace>>), StudyError> {
    let tapes: Arc<Mutex<Vec<LaunchTape>>> = Arc::new(Mutex::new(Vec::new()));
    let sink_tapes = Arc::clone(&tapes);
    let run = session
        .cache()
        .capture_fn(target.family, scale, target.variant, cfg, |gpu| {
            gpu.set_sanitizer_sink(move |tape| {
                sink_tapes
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .push(tape);
            });
            (target.run)(gpu)
        })?;
    let mut collected = std::mem::take(&mut *tapes.lock().unwrap_or_else(std::sync::PoisonError::into_inner));
    if collected.is_empty() && !run.traces.is_empty() {
        // The cache was already warm, so the capture closure (and its
        // sink) never ran. Re-execute directly; functional execution is
        // deterministic, so the tapes match what capture would have seen.
        let mut gpu = Gpu::try_new(cfg.clone())?;
        let direct = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&direct);
        gpu.set_sanitizer_sink(move |tape| {
            sink.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push(tape);
        });
        (target.run)(&mut gpu);
        collected = std::mem::take(&mut *direct.lock().unwrap_or_else(std::sync::PoisonError::into_inner));
    }
    Ok((collected, run.traces.clone()))
}

/// Runs the sanitizer across the suite and the incremental variants.
///
/// Each benchmark captures at most once (shared [`TraceCache`]); the
/// checkers and lints then run over the tapes and traces. Jobs fan out
/// across the session's workers.
///
/// # Errors
///
/// [`StudyError::Sim`] if a capture itself fails — a *failed launch* is
/// not an error here (it becomes a finding), but a refused
/// configuration is.
///
/// [`TraceCache`]: crate::trace_cache::TraceCache
pub fn run_check(session: &StudySession, scale: Scale) -> Result<CheckReport, StudyError> {
    let cfg = GpuConfig::gpgpusim_default();
    let lint_cfg = LintConfig::default();
    let targets = suite_targets(scale);
    let benches = session.run_indexed(targets.len(), |i| {
        let target = &targets[i];
        let _span = obs::span!("check.{}", target.label);
        let (tapes, traces) = sanitized_capture(session, scale, &cfg, target)?;
        let mut analyzer = Analyzer::new();
        for tape in &tapes {
            analyzer.observe(tape);
        }
        let launches = analyzer.launches();
        let mut findings = analyzer.finish();
        let mut metrics = Vec::new();
        for kernel in merge_traces_by_kernel(&traces) {
            let (m, lint_findings) = lint_trace(&kernel, &lint_cfg);
            metrics.push(m);
            findings.extend(lint_findings);
        }
        Ok(BenchCheck {
            name: target.label.clone(),
            launches,
            findings,
            metrics,
        })
    })?;
    Ok(CheckReport { scale, benches })
}

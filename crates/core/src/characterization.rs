//! GPU characterization experiments (Section III: Figures 1–5 and
//! Table III).
//!
//! Every driver takes a [`StudySession`]: benchmarks are functionally
//! executed at most once per capture fingerprint (see
//! [`crate::trace_cache`]) and re-timed per machine configuration, with
//! the per-benchmark jobs fanned over the session's worker pool.
//! Results are reassembled in submission order, so the tables are
//! byte-identical for any `--jobs` count.

use datasets::Scale;
use rodinia_gpu::leukocyte::Leukocyte;
use rodinia_gpu::srad::Srad;
use rodinia_gpu::suite::all_benchmarks;
use simt::{GpuConfig, KernelStats, MemSpace};

use crate::engine::StudySession;
use crate::error::StudyError;
use crate::report::{f1, pct, Table};

/// Figure 1 data: per-benchmark IPC on the 8- and 28-shader
/// configurations.
#[derive(Debug, Clone)]
pub struct IpcScaling {
    /// `(abbrev, ipc_8sm, ipc_28sm)` per benchmark.
    pub rows: Vec<(String, f64, f64)>,
}

impl IpcScaling {
    /// Renders the figure's series as a table.
    pub fn to_table(&self) -> Result<Table, StudyError> {
        let mut t = Table::new(
            "Figure 1: IPC over 8-shader and 28-shader configurations",
            &["Benchmark", "IPC (8 SM)", "IPC (28 SM)", "Scaling"],
        );
        for (name, a, b) in &self.rows {
            t.push(vec![name.clone(), f1(*a), f1(*b), format!("{:.2}x", b / a)])?;
        }
        Ok(t)
    }

    /// IPC on 28 shaders for one benchmark.
    pub fn ipc28(&self, abbrev: &str) -> f64 {
        self.rows
            .iter()
            .find(|(n, _, _)| n == abbrev)
            .map_or(0.0, |&(_, _, b)| b)
    }
}

/// Runs the Figure 1 experiment: each benchmark's trace is captured
/// once (under the 28-SM machine) and replayed on the 8-SM machine,
/// instead of functionally re-executing per configuration.
pub fn ipc_scaling(session: &StudySession, scale: Scale) -> Result<IpcScaling, StudyError> {
    let benches = all_benchmarks(scale);
    let base = GpuConfig::gpgpusim_default();
    let rows = session.run_indexed(benches.len(), |i| {
        let b = benches[i].as_ref();
        let _bench = obs::span!("bench.{}", b.abbrev());
        let run = session.cache().capture_benchmark(b, scale, &base)?;
        let s8 = run.stats_for(&GpuConfig::gpgpusim_8sm())?;
        let s28 = run.stats_for(&base)?;
        Ok((b.abbrev().to_string(), s8.ipc(), s28.ipc()))
    })?;
    Ok(IpcScaling { rows })
}

/// Figure 2 data: memory-operation breakdown per benchmark.
#[derive(Debug, Clone)]
pub struct MemoryMix {
    /// `(abbrev, [shared, tex, const, param, global/local])` fractions.
    pub rows: Vec<(String, [f64; 5])>,
}

impl MemoryMix {
    /// Renders the stacked-bar data as a table.
    pub fn to_table(&self) -> Result<Table, StudyError> {
        let mut t = Table::new(
            "Figure 2: memory operation breakdown",
            &["Benchmark", "Shared", "Tex", "Const", "Param", "Global/Local"],
        );
        for (name, f) in &self.rows {
            let mut row = vec![name.clone()];
            row.extend(f.iter().map(|&x| pct(x)));
            t.push(row)?;
        }
        Ok(t)
    }

    /// The fraction vector for one benchmark.
    pub fn fractions(&self, abbrev: &str) -> [f64; 5] {
        self.rows
            .iter()
            .find(|(n, _)| n == abbrev)
            .map_or([0.0; 5], |&(_, f)| f)
    }
}

fn mix_fractions(stats: &KernelStats) -> [f64; 5] {
    [
        stats.mem_mix.fraction(MemSpace::Shared),
        stats.mem_mix.fraction(MemSpace::Texture),
        stats.mem_mix.fraction(MemSpace::Constant),
        stats.mem_mix.fraction(MemSpace::Param),
        stats.mem_mix.fraction(MemSpace::Global),
    ]
}

/// Runs the Figure 2 experiment.
pub fn memory_mix(session: &StudySession, scale: Scale) -> Result<MemoryMix, StudyError> {
    let benches = all_benchmarks(scale);
    let base = GpuConfig::gpgpusim_default();
    let rows = session.run_indexed(benches.len(), |i| {
        let b = benches[i].as_ref();
        let _bench = obs::span!("bench.{}", b.abbrev());
        let run = session.cache().capture_benchmark(b, scale, &base)?;
        let s = run.stats_for(&base)?;
        Ok((b.abbrev().to_string(), mix_fractions(&s)))
    })?;
    Ok(MemoryMix { rows })
}

/// Figure 3 data: warp-occupancy quartile fractions per benchmark.
#[derive(Debug, Clone)]
pub struct WarpOccupancy {
    /// `(abbrev, [1-8, 9-16, 17-24, 25-32])` fractions.
    pub rows: Vec<(String, [f64; 4])>,
}

impl WarpOccupancy {
    /// Renders the histogram data as a table.
    pub fn to_table(&self) -> Result<Table, StudyError> {
        let mut t = Table::new(
            "Figure 3: warp occupancies (active threads per issued warp)",
            &["Benchmark", "1-8", "9-16", "17-24", "25-32", "SIMD eff."],
        );
        for (name, q) in &self.rows {
            let mut row = vec![name.clone()];
            row.extend(q.iter().map(|&x| pct(x)));
            // Mean-lane estimate from the quartile midpoints.
            let eff: f64 = q
                .iter()
                .zip([4.5, 12.5, 20.5, 28.5])
                .map(|(f, mid)| f * mid)
                .sum::<f64>()
                / 32.0;
            row.push(pct(eff));
            t.push(row)?;
        }
        Ok(t)
    }

    /// Quartile fractions for one benchmark.
    pub fn quartiles(&self, abbrev: &str) -> [f64; 4] {
        self.rows
            .iter()
            .find(|(n, _)| n == abbrev)
            .map_or([0.0; 4], |&(_, q)| q)
    }
}

/// Runs the Figure 3 experiment.
pub fn warp_occupancy(session: &StudySession, scale: Scale) -> Result<WarpOccupancy, StudyError> {
    let benches = all_benchmarks(scale);
    let base = GpuConfig::gpgpusim_default();
    let rows = session.run_indexed(benches.len(), |i| {
        let b = benches[i].as_ref();
        let _bench = obs::span!("bench.{}", b.abbrev());
        let run = session.cache().capture_benchmark(b, scale, &base)?;
        let s = run.stats_for(&base)?;
        Ok((b.abbrev().to_string(), s.occupancy.quartile_fractions()))
    })?;
    Ok(WarpOccupancy { rows })
}

/// Figure 4 data: achieved-bandwidth improvement over 4/6/8 channels.
#[derive(Debug, Clone)]
pub struct ChannelSweep {
    /// `(abbrev, bw4, bw6, bw8)` achieved GB/s; the figure normalizes to
    /// the 4-channel case.
    pub rows: Vec<(String, f64, f64, f64)>,
}

impl ChannelSweep {
    /// Renders the normalized series.
    pub fn to_table(&self) -> Result<Table, StudyError> {
        let mut t = Table::new(
            "Figure 4: bandwidth improvement with memory channels (normalized to 4)",
            &["Benchmark", "4 ch", "6 ch", "8 ch"],
        );
        for (name, b4, b6, b8) in &self.rows {
            t.push(vec![
                name.clone(),
                "1.00".into(),
                format!("{:.2}", b6 / b4),
                format!("{:.2}", b8 / b4),
            ])?;
        }
        Ok(t)
    }

    /// Bandwidth improvement of the 8-channel over the 4-channel
    /// configuration for one benchmark.
    pub fn improvement8(&self, abbrev: &str) -> f64 {
        self.rows
            .iter()
            .find(|(n, ..)| n == abbrev)
            .map_or(0.0, |&(_, b4, _, b8)| b8 / b4)
    }
}

/// Runs the Figure 4 experiment. Every benchmark is captured once and
/// replayed under 4-, 6- and 8-channel machines (channel count does not
/// affect functional execution, so the shared trace is exact).
pub fn channel_sweep(session: &StudySession, scale: Scale) -> Result<ChannelSweep, StudyError> {
    let base = GpuConfig::gpgpusim_default();
    let benches = all_benchmarks(scale);
    let rows = session.run_indexed(benches.len(), |i| {
        let b = benches[i].as_ref();
        let _bench = obs::span!("bench.{}", b.abbrev());
        let run = session.cache().capture_benchmark(b, scale, &base)?;
        let mut bw = [0.0f64; 3];
        for (slot, ch) in bw.iter_mut().zip([4u32, 6, 8]) {
            let s = run.stats_for(&base.with_mem_channels(ch))?;
            *slot = s.achieved_bandwidth_gbps().max(1e-9);
        }
        Ok((b.abbrev().to_string(), bw[0], bw[1], bw[2]))
    })?;
    Ok(ChannelSweep { rows })
}

/// Table III data: the incrementally optimized versions of SRAD and
/// Leukocyte.
#[derive(Debug, Clone)]
pub struct IncrementalVersions {
    /// `(label, ipc, bw_utilization, shared_frac, const_frac, tex_frac,
    /// global_frac)` per version.
    pub rows: Vec<(String, f64, f64, f64, f64, f64, f64)>,
}

impl IncrementalVersions {
    /// Renders Table III.
    pub fn to_table(&self) -> Result<Table, StudyError> {
        let mut t = Table::new(
            "Table III: incrementally optimized versions of SRAD and Leukocyte",
            &["Version", "IPC", "BW Util", "Shared", "Const", "Tex", "Global"],
        );
        for (name, ipc, bw, sh, cn, tx, gl) in &self.rows {
            t.push(vec![
                name.clone(),
                f1(*ipc),
                pct(*bw),
                pct(*sh),
                pct(*cn),
                pct(*tx),
                pct(*gl),
            ])?;
        }
        Ok(t)
    }

    fn row(&self, label: &str) -> Option<&(String, f64, f64, f64, f64, f64, f64)> {
        self.rows.iter().find(|r| r.0 == label)
    }

    /// IPC of a version by label (e.g. `"SRAD v2"`).
    pub fn ipc(&self, label: &str) -> f64 {
        self.row(label).map_or(0.0, |r| r.1)
    }

    /// Global-memory fraction of a version by label.
    pub fn global_frac(&self, label: &str) -> f64 {
        self.row(label).map_or(0.0, |r| r.6)
    }
}

/// Runs the Table III experiment: one job per incremental version,
/// keyed in the trace cache by `(family, scale, variant)`.
pub fn incremental_versions(
    session: &StudySession,
    scale: Scale,
) -> Result<IncrementalVersions, StudyError> {
    let base = GpuConfig::gpgpusim_default();
    // (label, cache family, variant) in table order.
    let versions: [(&str, &str, &'static str); 4] = [
        ("SRAD v1", "SRAD", "v1"),
        ("SRAD v2", "SRAD", "v2"),
        ("Leukocyte v1", "LC", "v1"),
        ("Leukocyte v2", "LC", "v2"),
    ];
    let rows = session.run_indexed(versions.len(), |i| {
        let (label, family, variant) = versions[i];
        let _bench = obs::span!("bench.{family}.{variant}");
        let run = session.cache().capture_fn(family, scale, variant, &base, |gpu| {
            match (family, variant) {
                ("SRAD", "v1") => Srad::v1(scale).run(gpu),
                ("SRAD", "v2") => Srad::v2(scale).run(gpu),
                ("LC", "v1") => Leukocyte::v1(scale).run(gpu),
                _ => Leukocyte::v2(scale).run(gpu),
            }
        })?;
        let s = run.stats_for(&base)?;
        let f = mix_fractions(&s);
        Ok((
            label.to_string(),
            s.ipc(),
            s.bw_utilization(),
            f[0],
            f[2],
            f[1],
            f[4],
        ))
    })?;
    Ok(IncrementalVersions { rows })
}

/// Figure 5 data: normalized kernel time on the GTX 280 model and the
/// two GTX 480 on-chip memory configurations.
#[derive(Debug, Clone)]
pub struct FermiStudy {
    /// `(abbrev, t_gtx280, t_shared_bias, t_l1_bias)` in µs; the figure
    /// normalizes to the GTX 280.
    pub rows: Vec<(String, f64, f64, f64)>,
}

impl FermiStudy {
    /// Renders the normalized series.
    pub fn to_table(&self) -> Result<Table, StudyError> {
        let mut t = Table::new(
            "Figure 5: kernel time normalized to GTX 280 (lower is better)",
            &["Benchmark", "GTX280", "GTX480 shared-bias", "GTX480 L1-bias"],
        );
        for (name, t280, tsb, tlb) in &self.rows {
            t.push(vec![
                name.clone(),
                "1.00".into(),
                format!("{:.2}", tsb / t280),
                format!("{:.2}", tlb / t280),
            ])?;
        }
        Ok(t)
    }

    /// `(shared_bias_time, l1_bias_time)` for one benchmark, normalized
    /// to the GTX 280.
    pub fn normalized(&self, abbrev: &str) -> (f64, f64) {
        self.rows
            .iter()
            .find(|(n, ..)| n == abbrev)
            .map_or((0.0, 0.0), |&(_, t280, tsb, tlb)| (tsb / t280, tlb / t280))
    }
}

/// The offloading-model analysis (an extension; Table IV's "Machine
/// Model: Offloading" row): kernel time vs. host↔device transfer time
/// per benchmark.
#[derive(Debug, Clone)]
pub struct OffloadStudy {
    /// `(abbrev, kernel_us, transfer_us)` per benchmark, assuming the
    /// given PCIe bandwidth.
    pub rows: Vec<(String, f64, f64)>,
    /// Modeled PCIe bandwidth in GB/s.
    pub pcie_gbps: f64,
}

impl OffloadStudy {
    /// Renders the analysis.
    pub fn to_table(&self) -> Result<Table, StudyError> {
        let mut t = Table::new(
            &format!(
                "Offloading overhead: kernel vs transfer time at {} GB/s PCIe",
                self.pcie_gbps
            ),
            &["Benchmark", "Kernel (us)", "Transfer (us)", "Transfer share"],
        );
        for (name, k, tr) in &self.rows {
            t.push(vec![
                name.clone(),
                f1(*k),
                f1(*tr),
                pct(tr / (k + tr).max(1e-12)),
            ])?;
        }
        Ok(t)
    }

    /// Transfer share of total offloaded time for one benchmark.
    pub fn transfer_share(&self, abbrev: &str) -> f64 {
        self.rows
            .iter()
            .find(|(n, ..)| n == abbrev)
            .map_or(0.0, |&(_, k, tr)| tr / (k + tr).max(1e-12))
    }
}

/// Runs the offloading analysis: every benchmark's aggregate kernel
/// time against the time to move its host↔device traffic over PCIe
/// (the traffic totals come from the cached capture pass).
pub fn offload_overheads(
    session: &StudySession,
    scale: Scale,
    pcie_gbps: f64,
) -> Result<OffloadStudy, StudyError> {
    let base = GpuConfig::gpgpusim_default();
    let benches = all_benchmarks(scale);
    let rows = session.run_indexed(benches.len(), |i| {
        let b = benches[i].as_ref();
        let _bench = obs::span!("bench.{}", b.abbrev());
        let run = session.cache().capture_benchmark(b, scale, &base)?;
        let s = run.stats_for(&base)?;
        let bytes = run.h2d_bytes + run.d2h_bytes;
        let transfer_us = bytes as f64 / (pcie_gbps * 1e3);
        Ok((b.abbrev().to_string(), s.time_us(), transfer_us))
    })?;
    Ok(OffloadStudy { rows, pcie_gbps })
}

/// Runs the Figure 5 experiment. The GTX 280 shares its capture
/// fingerprint with the default machine; the two GTX 480 variants share
/// a second fingerprint (32 shared-memory banks), so each benchmark is
/// captured at most twice and the L1-bias point is a pure replay.
pub fn fermi_study(session: &StudySession, scale: Scale) -> Result<FermiStudy, StudyError> {
    let benches = all_benchmarks(scale);
    let rows = session.run_indexed(benches.len(), |i| {
        let b = benches[i].as_ref();
        let _bench = obs::span!("bench.{}", b.abbrev());
        let run280 = session
            .cache()
            .capture_benchmark(b, scale, &GpuConfig::gtx280())?;
        let t280 = run280.stats_for(&GpuConfig::gtx280())?.time_us();
        let run480 = session
            .cache()
            .capture_benchmark(b, scale, &GpuConfig::gtx480_shared_bias())?;
        let tsb = run480
            .stats_for(&GpuConfig::gtx480_shared_bias())?
            .time_us();
        let tlb = run480.stats_for(&GpuConfig::gtx480_l1_bias())?.time_us();
        Ok((b.abbrev().to_string(), t280, tsb, tlb))
    })?;
    Ok(FermiStudy { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_shape_holds_at_tiny_scale() {
        let session = StudySession::new(2);
        let d = ipc_scaling(&session, Scale::Tiny).expect("fig1 runs");
        assert_eq!(d.rows.len(), 12);
        // The paper's ordering: SRAD/HS among the top, NW/MUM at the
        // bottom.
        let top = d.ipc28("SRAD").max(d.ipc28("HS"));
        assert!(top > d.ipc28("NW"), "top {top} vs NW {}", d.ipc28("NW"));
        assert!(top > d.ipc28("MUM"));
        // Table renders.
        assert!(d.to_table().expect("renders").to_string().contains("SRAD"));
        // Capture-once: one cache entry per benchmark, not per config.
        assert_eq!(session.cache().len(), 12);
    }

    #[test]
    fn table3_shape_holds() {
        let session = StudySession::sequential();
        let d = incremental_versions(&session, Scale::Tiny).expect("table3 runs");
        assert_eq!(d.rows.len(), 4);
        assert!(d.ipc("SRAD v2") > d.ipc("SRAD v1"));
        assert!(d.ipc("Leukocyte v2") > d.ipc("Leukocyte v1"));
        assert!(d.global_frac("Leukocyte v2") < d.global_frac("Leukocyte v1"));
    }
}

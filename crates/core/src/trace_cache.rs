//! Thread-safe caches of captured traces — GPU kernel traces and CPU
//! memory traces — shared across experiment jobs.
//!
//! Trace capture (functional execution) is the expensive, replay-config
//! independent half of a simulated launch: a recorded
//! [`KernelTrace`] depends only on the warp size, the
//! shared-memory bank count, and the coalescing segment size — not on
//! SM count, clocks, latencies, channel count, caches, or the scheduler
//! policy. All paper configurations agree on those three parameters
//! except the GTX 480 family (32 banks instead of 16), so one capture
//! per `(benchmark, scale, variant)` serves the 8↔28-SM comparison, the
//! channel sweep, and all twelve Plackett–Burman design points.
//!
//! [`TraceCache`] keys captures by [`TraceKey`] and guarantees
//! exactly-once capture even under concurrent lookups: each entry is an
//! `Arc<OnceLock<...>>`, so racing workers block on the first
//! initializer instead of capturing twice.
//!
//! [`CpuTraceCache`] is the Pin-side twin: it caches
//! [`CpuCapture`]s — a workload's interleaved memory-reference trace
//! plus its capacity-independent characteristics — keyed by
//! `(workload, scale, capture fingerprint)`, so the eight shared-cache
//! capacities of the comparison study replay one capture instead of
//! re-running the workload eight times.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use datasets::Scale;
use rodinia_gpu::suite::GpuBenchmark;
use simt::{Gpu, GpuConfig, KernelStats, KernelTrace};
use store::TraceStore;
use tracekit::{CpuCapture, CpuWorkload, ProfileConfig};

use crate::error::StudyError;

/// The subset of a [`GpuConfig`] that influences functional trace
/// capture. Two configurations with equal fingerprints produce
/// byte-identical traces for the same workload, so a trace captured
/// under one may be replayed under the other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CaptureFingerprint {
    /// Threads per warp (shapes warp decomposition and divergence).
    pub warp_size: u32,
    /// Shared-memory bank count (shapes recorded conflict patterns).
    pub shared_banks: u32,
    /// Coalescing segment size in bytes (shapes recorded segments).
    pub segment_bytes: u32,
}

impl CaptureFingerprint {
    /// Extracts the capture-relevant parameters of `cfg`.
    pub fn of(cfg: &GpuConfig) -> CaptureFingerprint {
        CaptureFingerprint {
            warp_size: cfg.warp_size,
            shared_banks: cfg.shared_banks,
            segment_bytes: cfg.segment_bytes,
        }
    }
}

/// Cache key: one functional execution of one workload.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TraceKey {
    /// Benchmark abbreviation (`BP`, `BFS`, ...) or variant-family name.
    pub benchmark: String,
    /// Input scale.
    pub scale: Scale,
    /// Code variant (`""` for the suite default, `"v1"`/`"v2"` for the
    /// Table III incremental versions).
    pub variant: &'static str,
    /// Capture-relevant configuration parameters.
    pub fingerprint: CaptureFingerprint,
}

impl TraceKey {
    /// The persistent-store key of this capture. Every field that
    /// shapes the recorded trace is spelled into the key, so a store
    /// hit is — by the entry's verified key echo — a capture of exactly
    /// this workload under exactly this fingerprint.
    pub fn store_key(&self) -> String {
        let fp = &self.fingerprint;
        format!(
            "gpu/v1/{}/{:?}/{}/w{}b{}s{}",
            self.benchmark,
            self.scale,
            if self.variant.is_empty() { "-" } else { self.variant },
            fp.warp_size,
            fp.shared_banks,
            fp.segment_bytes,
        )
    }
}

/// Everything one capture pass produced: the per-launch traces in
/// launch order, the stats under the capture configuration, and the
/// host↔device traffic of the functional run.
#[derive(Debug)]
pub struct CapturedRun {
    /// Recorded traces, one per kernel launch, in launch order.
    pub traces: Vec<Arc<KernelTrace>>,
    /// The configuration the capture ran under.
    pub capture_cfg: GpuConfig,
    /// Aggregate stats of the capture run (capture and timing happen in
    /// the same launch, so this equals a direct run under
    /// `capture_cfg`).
    pub baseline: KernelStats,
    /// Host→device bytes moved by the functional run.
    pub h2d_bytes: u64,
    /// Device→host bytes moved by the functional run.
    pub d2h_bytes: u64,
}

impl CapturedRun {
    /// Re-times every recorded launch under `cfg` and merges the
    /// per-launch stats in launch order — byte-identical to running the
    /// benchmark directly under `cfg`, provided `cfg` shares this
    /// capture's [`CaptureFingerprint`].
    ///
    /// # Errors
    ///
    /// [`StudyError::TraceReuse`] if `cfg`'s fingerprint differs from
    /// the capture's; [`StudyError::Sim`] if replay itself fails.
    pub fn replay(&self, cfg: &GpuConfig) -> Result<KernelStats, StudyError> {
        let want = CaptureFingerprint::of(cfg);
        let have = CaptureFingerprint::of(&self.capture_cfg);
        if want != have {
            return Err(StudyError::TraceReuse {
                capture: format!("{have:?} ({})", self.capture_cfg.name),
                replay: format!("{want:?} ({})", cfg.name),
            });
        }
        let mut acc: Option<KernelStats> = None;
        for trace in &self.traces {
            let s = simt::try_time_trace(trace, cfg)?;
            acc = Some(match acc {
                None => s,
                Some(mut a) => {
                    a.merge(&s);
                    a
                }
            });
        }
        acc.ok_or_else(|| StudyError::TraceReuse {
            capture: self.capture_cfg.name.clone(),
            replay: "no launches were recorded".to_string(),
        })
    }

    /// Stats under `cfg`: the stored baseline when `cfg` is exactly the
    /// capture configuration (no re-timing needed), a [`replay`] pass
    /// otherwise.
    ///
    /// [`replay`]: CapturedRun::replay
    pub fn stats_for(&self, cfg: &GpuConfig) -> Result<KernelStats, StudyError> {
        if *cfg == self.capture_cfg {
            Ok(self.baseline.clone())
        } else {
            self.replay(cfg)
        }
    }
}

type CacheSlot = Arc<OnceLock<Result<Arc<CapturedRun>, StudyError>>>;

/// A thread-safe, exactly-once cache of captured runs.
///
/// The outer map is held only long enough to clone the entry's
/// `Arc<OnceLock>`; the (possibly long) capture runs outside the map
/// lock, so workers capturing *different* benchmarks never serialize on
/// each other, while workers racing for the *same* key block on one
/// shared `OnceLock` initializer.
#[derive(Debug, Default)]
pub struct TraceCache {
    map: Mutex<HashMap<TraceKey, CacheSlot>>,
    store: Mutex<Option<Arc<TraceStore>>>,
    captures: AtomicU64,
    restores: AtomicU64,
}

impl TraceCache {
    /// Creates an empty cache.
    pub fn new() -> TraceCache {
        TraceCache::default()
    }

    /// Attaches a persistent [`TraceStore`]: subsequent captures check
    /// the store first and persist fresh captures back to it. The store
    /// is strictly a second-level cache — a damaged or unwritable store
    /// only costs recaptures, never results.
    pub fn set_store(&self, store: Arc<TraceStore>) {
        *self
            .store
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(store);
    }

    fn store(&self) -> Option<Arc<TraceStore>> {
        self.store
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Number of cached (or in-flight) captures.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap_or_else(std::sync::PoisonError::into_inner).len()
    }

    /// Whether nothing has been captured yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many times this cache actually ran a capture (functional
    /// execution) — store restores and in-memory hits are excluded.
    /// Instance-scoped (unlike the global `store.*` registry counters)
    /// so the `repro serve` `/stats` endpoint and the coalescing tests
    /// can assert "zero new captures" without cross-test interference.
    pub fn captures(&self) -> u64 {
        self.captures.load(Ordering::Relaxed)
    }

    /// How many captures this cache restored from the persistent store
    /// instead of re-running (see [`TraceCache::captures`]).
    pub fn restores(&self) -> u64 {
        self.restores.load(Ordering::Relaxed)
    }

    /// Looks up `key`, running `capture` exactly once on a miss (even
    /// under concurrent lookups of the same key).
    pub fn get_or_capture(
        &self,
        key: TraceKey,
        capture: impl FnOnce() -> Result<CapturedRun, StudyError>,
    ) -> Result<Arc<CapturedRun>, StudyError> {
        let slot = {
            let mut map = self.map.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            map.entry(key).or_default().clone()
        };
        slot.get_or_init(|| capture().map(Arc::new)).clone()
    }

    /// Captures a suite benchmark under `cfg` (variant `""`), reusing a
    /// cached capture with the same fingerprint when available.
    pub fn capture_benchmark(
        &self,
        b: &dyn GpuBenchmark,
        scale: Scale,
        cfg: &GpuConfig,
    ) -> Result<Arc<CapturedRun>, StudyError> {
        self.capture_fn(b.abbrev(), scale, "", cfg, |gpu| b.run_on(gpu))
    }

    /// Captures an arbitrary workload closure under `cfg`, keyed by
    /// `(name, scale, variant)` plus `cfg`'s fingerprint. The closure
    /// runs at most once; it must drive every kernel launch through the
    /// provided [`Gpu`]. With a store attached, a verified persisted
    /// capture short-circuits the closure entirely, and a fresh capture
    /// is persisted for the next process.
    pub fn capture_fn(
        &self,
        name: &str,
        scale: Scale,
        variant: &'static str,
        cfg: &GpuConfig,
        run: impl FnOnce(&mut Gpu) -> KernelStats,
    ) -> Result<Arc<CapturedRun>, StudyError> {
        let key = TraceKey {
            benchmark: name.to_string(),
            scale,
            variant,
            fingerprint: CaptureFingerprint::of(cfg),
        };
        let store = self.store();
        self.get_or_capture(key.clone(), || {
            if let Some(store) = &store {
                if let Some(restored) = load_persisted_gpu_run(store, &key, cfg) {
                    self.restores.fetch_add(1, Ordering::Relaxed);
                    return Ok(restored);
                }
            }
            self.captures.fetch_add(1, Ordering::Relaxed);
            let _span = obs::span!("trace_cache.capture.{name}");
            let mut gpu = Gpu::try_new(cfg.clone())?;
            gpu.set_trace_recording(true);
            let baseline = run(&mut gpu);
            let captured = CapturedRun {
                traces: gpu.take_recorded_traces(),
                capture_cfg: cfg.clone(),
                baseline,
                h2d_bytes: gpu.mem().h2d_bytes(),
                d2h_bytes: gpu.mem().d2h_bytes(),
            };
            if let Some(store) = &store {
                store.save_or_warn(
                    &key.store_key(),
                    &simt::encode_capture_payload(
                        &captured.traces,
                        captured.h2d_bytes,
                        captured.d2h_bytes,
                    ),
                );
            }
            Ok(captured)
        })
    }
}

/// Loads, decodes, and re-times a persisted GPU capture. Any failure
/// past the store's own framing check — codec rejection, an empty
/// launch list, a replay error — quarantines the entry exactly like
/// bit rot and falls back to recapture: semantic staleness must never
/// reach a results table.
fn load_persisted_gpu_run(
    store: &TraceStore,
    key: &TraceKey,
    cfg: &GpuConfig,
) -> Option<CapturedRun> {
    let skey = key.store_key();
    let payload = store.load(&skey)?;
    let (traces, h2d_bytes, d2h_bytes) = match simt::decode_capture_payload(&payload) {
        Ok(parts) => parts,
        Err(e) => {
            store.quarantine(&skey, &format!("payload: {e}"));
            return None;
        }
    };
    if traces.is_empty() {
        store.quarantine(&skey, "payload records no launches");
        return None;
    }
    // The baseline is deliberately not serialized: replay ≡ direct run,
    // so re-timing the decoded traces under the capture configuration
    // reproduces it exactly — and doubles as an end-to-end validity
    // check on the decoded ops.
    let mut baseline: Option<KernelStats> = None;
    for trace in &traces {
        match simt::try_time_trace(trace, cfg) {
            Ok(s) => {
                baseline = Some(match baseline {
                    None => s,
                    Some(mut a) => {
                        a.merge(&s);
                        a
                    }
                });
            }
            Err(e) => {
                store.quarantine(&skey, &format!("replay: {e}"));
                return None;
            }
        }
    }
    obs::Registry::global().incr("store.gpu_restored");
    Some(CapturedRun {
        traces,
        capture_cfg: cfg.clone(),
        baseline: baseline.expect("non-empty trace list produced a baseline"),
        h2d_bytes,
        d2h_bytes,
    })
}

/// The subset of a [`ProfileConfig`] that influences a CPU capture's
/// recorded trace and replay geometry. `cache_sizes` is deliberately
/// absent: capacities are pure replay parameters, which is the whole
/// point of the capture-once pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CpuCaptureFingerprint {
    /// Logical thread count (shapes the interleaved stream and ids).
    pub threads: usize,
    /// Cache line size in bytes (shapes the line-granular trace words).
    pub line: u64,
    /// Round-robin interleaving quantum (shapes the interleaving).
    pub quantum: usize,
    /// Associativity — it does not shape the recorded words, but it is
    /// baked into the capture's replay geometry, so captures with
    /// different `ways` are not interchangeable.
    pub ways: usize,
}

impl CpuCaptureFingerprint {
    /// Extracts the capture-relevant parameters of `cfg`.
    pub fn of(cfg: &ProfileConfig) -> CpuCaptureFingerprint {
        CpuCaptureFingerprint {
            threads: cfg.threads,
            line: cfg.line,
            quantum: cfg.quantum,
            ways: cfg.ways,
        }
    }
}

/// Cache key: one capture pass of one CPU workload.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CpuTraceKey {
    /// Workload label (Figure 6 style, e.g. `srad(R)` — unique across
    /// the combined corpus, unlike bare names, which StreamCluster
    /// shares between suites).
    pub workload: String,
    /// Input scale.
    pub scale: Scale,
    /// Capture-relevant configuration parameters.
    pub fingerprint: CpuCaptureFingerprint,
}

impl CpuTraceKey {
    /// The persistent-store key of this capture (see
    /// [`TraceKey::store_key`] for the contract).
    pub fn store_key(&self) -> String {
        let fp = &self.fingerprint;
        format!(
            "cpu/v1/{}/{:?}/t{}l{}q{}w{}",
            self.workload, self.scale, fp.threads, fp.line, fp.quantum, fp.ways,
        )
    }
}

type CpuSlot = Arc<OnceLock<Result<Arc<CpuCapture>, StudyError>>>;

/// A thread-safe, exactly-once cache of CPU memory-trace captures,
/// mirroring [`TraceCache`]: the map lock is held only to clone the
/// slot, and racing workers block on one shared `OnceLock` initializer
/// instead of capturing twice.
#[derive(Debug, Default)]
pub struct CpuTraceCache {
    map: Mutex<HashMap<CpuTraceKey, CpuSlot>>,
    store: Mutex<Option<Arc<TraceStore>>>,
    captures: AtomicU64,
    restores: AtomicU64,
}

impl CpuTraceCache {
    /// Creates an empty cache.
    pub fn new() -> CpuTraceCache {
        CpuTraceCache::default()
    }

    /// Attaches a persistent [`TraceStore`] (see
    /// [`TraceCache::set_store`]).
    pub fn set_store(&self, store: Arc<TraceStore>) {
        *self
            .store
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(store);
    }

    fn store(&self) -> Option<Arc<TraceStore>> {
        self.store
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Number of cached (or in-flight) captures.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap_or_else(std::sync::PoisonError::into_inner).len()
    }

    /// Whether nothing has been captured yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many times this cache actually ran a capture (see
    /// [`TraceCache::captures`] for the contract).
    pub fn captures(&self) -> u64 {
        self.captures.load(Ordering::Relaxed)
    }

    /// How many captures this cache restored from the persistent store
    /// instead of re-running (see [`TraceCache::captures`]).
    pub fn restores(&self) -> u64 {
        self.restores.load(Ordering::Relaxed)
    }

    /// Looks up `key`, running `capture` exactly once on a miss (even
    /// under concurrent lookups of the same key).
    pub fn get_or_capture(
        &self,
        key: CpuTraceKey,
        capture: impl FnOnce() -> Result<CpuCapture, StudyError>,
    ) -> Result<Arc<CpuCapture>, StudyError> {
        let slot = {
            let mut map = self.map.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            map.entry(key).or_default().clone()
        };
        slot.get_or_init(|| capture().map(Arc::new)).clone()
    }

    /// Captures `workload` under `cfg` (once per `(label, scale,
    /// fingerprint)`). With a store attached, a verified persisted
    /// capture short-circuits the run, and a fresh capture is persisted
    /// for the next process.
    pub fn capture_workload(
        &self,
        label: &str,
        workload: &dyn CpuWorkload,
        scale: Scale,
        cfg: &ProfileConfig,
    ) -> Result<Arc<CpuCapture>, StudyError> {
        let key = CpuTraceKey {
            workload: label.to_string(),
            scale,
            fingerprint: CpuCaptureFingerprint::of(cfg),
        };
        let store = self.store();
        self.get_or_capture(key.clone(), || {
            if let Some(store) = &store {
                if let Some(restored) = load_persisted_cpu_capture(store, &key) {
                    self.restores.fetch_add(1, Ordering::Relaxed);
                    return Ok(restored);
                }
            }
            self.captures.fetch_add(1, Ordering::Relaxed);
            let cap = CpuCapture::capture(workload, cfg)?;
            if let Some(store) = &store {
                store.save_or_warn(&key.store_key(), &tracekit::encode_capture(&cap));
            }
            Ok(cap)
        })
    }
}

/// Loads and decodes a persisted CPU capture. Codec rejections and
/// replay-geometry drift quarantine the entry and fall back to
/// recapture, mirroring [`load_persisted_gpu_run`].
fn load_persisted_cpu_capture(store: &TraceStore, key: &CpuTraceKey) -> Option<CpuCapture> {
    let skey = key.store_key();
    let payload = store.load(&skey)?;
    let cap = match tracekit::decode_capture(&payload) {
        Ok(cap) => cap,
        Err(e) => {
            store.quarantine(&skey, &format!("payload: {e}"));
            return None;
        }
    };
    // The key already spells the fingerprint, but the decoded geometry
    // is re-checked so a semantically stale payload behind a valid
    // frame still degrades to recapture instead of a wrong replay.
    let fp = &key.fingerprint;
    if cap.ways() != fp.ways || cap.line() != fp.line {
        store.quarantine(&skey, "replay geometry differs from the requested fingerprint");
        return None;
    }
    obs::Registry::global().incr("store.cpu_restored");
    Some(cap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rodinia_gpu::suite::all_benchmarks;

    #[test]
    fn cpu_fingerprint_ignores_capacities() {
        let base = CpuCaptureFingerprint::of(&ProfileConfig::default());
        let shrunk = ProfileConfig {
            cache_sizes: vec![4 * 1024],
            ..ProfileConfig::default()
        };
        assert_eq!(CpuCaptureFingerprint::of(&shrunk), base);
        let rethreaded = ProfileConfig {
            threads: 4,
            ..ProfileConfig::default()
        };
        assert_ne!(CpuCaptureFingerprint::of(&rethreaded), base);
    }

    #[test]
    fn cpu_capture_happens_exactly_once_per_label() {
        let cache = CpuTraceCache::new();
        let cfg = ProfileConfig::default();
        let ws = crate::suite::combined_workloads(Scale::Tiny);
        let lw = &ws[0];
        let a = cache
            .capture_workload(&lw.label, lw.workload.as_ref(), Scale::Tiny, &cfg)
            .expect("capture");
        let b = cache
            .capture_workload(&lw.label, lw.workload.as_ref(), Scale::Tiny, &cfg)
            .expect("cache hit");
        assert!(Arc::ptr_eq(&a, &b), "second lookup hit the cache");
        assert_eq!(cache.len(), 1);
        // The cached capture replays to the direct path's stats.
        let direct = tracekit::profile(lw.workload.as_ref(), &cfg).expect("direct");
        let stats = a.replay_all(&cfg.cache_sizes).expect("replay");
        assert_eq!(a.profile_with(stats), direct);
    }

    #[test]
    fn cpu_concurrent_lookups_capture_once() {
        let cache = CpuTraceCache::new();
        let cfg = ProfileConfig::default();
        let captures = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let key = CpuTraceKey {
                        workload: "w".to_string(),
                        scale: Scale::Tiny,
                        fingerprint: CpuCaptureFingerprint::of(&cfg),
                    };
                    let ws = crate::suite::combined_workloads(Scale::Tiny);
                    let r = cache.get_or_capture(key, || {
                        captures.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                        CpuCapture::capture(ws[0].workload.as_ref(), &cfg)
                            .map_err(StudyError::from)
                    });
                    assert!(r.is_ok());
                });
            }
        });
        assert_eq!(captures.load(std::sync::atomic::Ordering::SeqCst), 1);
    }

    #[test]
    fn paper_configs_share_the_default_fingerprint_except_fermi() {
        let base = CaptureFingerprint::of(&GpuConfig::gpgpusim_default());
        assert_eq!(CaptureFingerprint::of(&GpuConfig::gpgpusim_8sm()), base);
        assert_eq!(CaptureFingerprint::of(&GpuConfig::gtx280()), base);
        assert_eq!(
            CaptureFingerprint::of(&GpuConfig::gpgpusim_default().with_mem_channels(4)),
            base
        );
        let fermi = CaptureFingerprint::of(&GpuConfig::gtx480_shared_bias());
        assert_ne!(fermi, base);
        assert_eq!(CaptureFingerprint::of(&GpuConfig::gtx480_l1_bias()), fermi);
    }

    #[test]
    fn capture_happens_exactly_once_and_replays_identically() {
        let cache = TraceCache::new();
        let cfg = GpuConfig::gpgpusim_default();
        let benches = all_benchmarks(Scale::Tiny);
        let b = benches[0].as_ref();

        let run1 = cache
            .capture_benchmark(b, Scale::Tiny, &cfg)
            .expect("capture");
        let run2 = cache
            .capture_benchmark(b, Scale::Tiny, &cfg)
            .expect("cache hit");
        assert!(Arc::ptr_eq(&run1, &run2), "second lookup hit the cache");
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.captures(), 1, "one functional execution");
        assert_eq!(cache.restores(), 0, "no store attached");

        // Replay under the capture config reproduces the baseline.
        let replayed = run1.replay(&cfg).expect("replay");
        assert_eq!(replayed.cycles, run1.baseline.cycles);
        assert_eq!(
            replayed.thread_instructions,
            run1.baseline.thread_instructions
        );
        // Replay on a different machine (same fingerprint) works too.
        let s8 = run1.replay(&GpuConfig::gpgpusim_8sm()).expect("8-SM replay");
        assert!(s8.cycles > 0);
    }

    #[test]
    fn fingerprint_mismatch_is_a_typed_error() {
        let cache = TraceCache::new();
        let cfg = GpuConfig::gpgpusim_default();
        let benches = all_benchmarks(Scale::Tiny);
        let run = cache
            .capture_benchmark(benches[0].as_ref(), Scale::Tiny, &cfg)
            .expect("capture");
        let err = run.replay(&GpuConfig::gtx480_l1_bias()).unwrap_err();
        assert!(matches!(err, StudyError::TraceReuse { .. }), "{err}");
        assert!(err.to_string().contains("fingerprint"));
    }

    #[test]
    fn concurrent_lookups_capture_once() {
        let cache = TraceCache::new();
        let cfg = GpuConfig::gpgpusim_default();
        let captures = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let benches = all_benchmarks(Scale::Tiny);
                    let b = benches[4].as_ref(); // HotSpot: cheap at Tiny
                    let run = cache
                        .capture_fn(b.abbrev(), Scale::Tiny, "", &cfg, |gpu| {
                            captures.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                            b.run_on(gpu)
                        })
                        .expect("capture");
                    assert!(run.baseline.cycles > 0);
                });
            }
        });
        assert_eq!(
            captures.load(std::sync::atomic::Ordering::SeqCst),
            1,
            "exactly one thread ran the capture closure"
        );
        assert_eq!(cache.len(), 1);
    }
}

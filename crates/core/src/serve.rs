//! `repro serve`: a zero-dependency study daemon over the typed
//! request API.
//!
//! The server is a hand-rolled HTTP/1.1 endpoint on
//! [`std::net::TcpListener`] — no external crates, JSON via
//! [`obs::Json`] — that answers study requests from one persistent
//! [`StudySession`]. Because both it and the CLI lower into
//! [`crate::request`], a `POST /study` response body is byte-identical
//! to the `STUDY_manifest.json` the CLI writes for the same request.
//!
//! Routes:
//!
//! * `GET /healthz` — liveness: `{"ok":true}`.
//! * `GET /stats` — session counters: requests, in-flight, coalesced,
//!   instance capture/restore counts, global store counters.
//! * `POST /study` — a [`StudyRequest`] JSON body (grammar in
//!   [`crate::request`]); 200 with the study document, 400 on grammar
//!   or validation errors, 500 on driver errors.
//! * `POST /shutdown` — graceful drain: stop accepting, finish
//!   in-flight requests, then return from [`Server::run`]. (The
//!   workspace forbids `unsafe`, so there is no signal handler; a
//!   SIGKILLed daemon recovers through the store and journals like a
//!   killed CLI run.)
//!
//! Identical in-flight requests coalesce: the [`Coalescer`] keys on
//! [`StudyRequest::study_key`] (worker width excluded — it never
//! changes bytes), so N concurrent identical requests execute once and
//! share the response body, on top of the per-trace exactly-once
//! guarantee of the session caches.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use obs::Json;
use store::TraceStore;

use crate::engine::StudySession;
use crate::error::StudyError;
use crate::manifest::store_counters_json;
use crate::request::{execute, Quiet, StudyRequest};

/// Largest accepted `POST /study` body, in bytes. Real requests are a
/// few hundred bytes; the cap bounds memory per connection.
const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// Largest accepted request header block, in bytes.
const MAX_HEADER_BYTES: usize = 16 * 1024;

/// How long the accept loop sleeps between polls, and how the drain
/// check stays responsive without busy-waiting.
const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// One in-flight study's result slot: followers block on the condvar
/// until the leader publishes.
#[derive(Debug, Default)]
struct CoalesceCell {
    result: Mutex<Option<Result<Arc<Vec<u8>>, StudyError>>>,
    ready: Condvar,
}

/// Request-level deduplication of identical in-flight studies.
///
/// The caller that creates a key's slot is its leader and runs
/// `produce`; callers arriving while the leader is still running
/// block on the slot and share its result (counted as coalesced —
/// a follower counts itself *before* blocking, so tests can observe
/// the join deterministically). When the leader finishes it retires
/// the slot, so a *later* identical request executes again —
/// deliberately: by then the session caches are warm and the
/// re-execution is a pure cache/store hit, which keeps the daemon's
/// answers fresh with respect to store state without ever duplicating
/// capture work.
#[derive(Debug, Default)]
pub struct Coalescer {
    map: Mutex<HashMap<String, Arc<CoalesceCell>>>,
    coalesced: AtomicU64,
}

impl Coalescer {
    /// Creates an empty coalescer.
    pub fn new() -> Coalescer {
        Coalescer::default()
    }

    /// How many requests joined an in-flight leader instead of
    /// executing.
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::SeqCst)
    }

    /// Number of distinct study keys currently executing.
    pub fn in_flight(&self) -> usize {
        self.map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// Runs `produce` for `key`, or joins an identical in-flight run.
    ///
    /// # Errors
    ///
    /// The leader's [`StudyError`], shared by every joined caller.
    pub fn join(
        &self,
        key: &str,
        produce: impl FnOnce() -> Result<Vec<u8>, StudyError>,
    ) -> Result<Arc<Vec<u8>>, StudyError> {
        let (cell, leader) = {
            let mut map = self
                .map
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            match map.get(key) {
                Some(cell) => (Arc::clone(cell), false),
                None => {
                    let cell = Arc::new(CoalesceCell::default());
                    map.insert(key.to_string(), Arc::clone(&cell));
                    (cell, true)
                }
            }
        };
        if leader {
            let result = produce().map(Arc::new);
            *cell
                .result
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(result.clone());
            cell.ready.notify_all();
            self.map
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .remove(key);
            result
        } else {
            self.coalesced.fetch_add(1, Ordering::SeqCst);
            let mut slot = cell
                .result
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            while slot.is_none() {
                slot = cell
                    .ready
                    .wait(slot)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            slot.clone().expect("loop exits only once the leader published")
        }
    }
}

/// Configuration of one [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (`:0` picks a free port).
    pub addr: String,
    /// Persistent trace store directory, if any. An unusable store
    /// downgrades to in-memory caching with one warning, exactly like
    /// the CLI's `--store`.
    pub store: Option<PathBuf>,
    /// Worker-pool width (`None` = available parallelism). Requests
    /// may override per-call via their `jobs` field.
    pub jobs: Option<usize>,
    /// Intra-replay shard count (`None` = leave the process default of
    /// 1; `Some(0)` = auto). Requests may override per-call via their
    /// `sim_threads` field; like `jobs` it never changes response
    /// bytes.
    pub sim_threads: Option<usize>,
}

#[derive(Debug)]
struct ServerState {
    session: StudySession,
    coalescer: Coalescer,
    requests: AtomicU64,
    inflight: AtomicU64,
    draining: AtomicBool,
}

/// The study daemon: one listener, one shared [`StudySession`],
/// thread-per-connection handlers.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
    store_warning: Option<String>,
}

impl Server {
    /// Binds the listener and builds the session (opening and
    /// attaching the store if one is configured and usable).
    ///
    /// # Errors
    ///
    /// [`StudyError::Io`] if the address cannot be bound. An unusable
    /// store is *not* an error — it is reported via
    /// [`Server::store_warning`] and the daemon runs with in-memory
    /// caching only.
    pub fn bind(cfg: &ServeConfig) -> Result<Server, StudyError> {
        let listener = TcpListener::bind(&cfg.addr).map_err(|e| StudyError::Io {
            path: cfg.addr.clone(),
            reason: e.to_string(),
        })?;
        let mut session = match cfg.jobs {
            Some(n) => StudySession::new(n),
            None => StudySession::default(),
        };
        if let Some(n) = cfg.sim_threads {
            session.set_sim_threads(n);
        }
        let mut store_warning = None;
        if let Some(dir) = &cfg.store {
            match TraceStore::open(dir) {
                Ok(s) => session.attach_store(Arc::new(s)),
                Err(e) => {
                    store_warning =
                        Some(format!("store: {e}; continuing with in-memory caching only"));
                }
            }
        }
        Ok(Server {
            listener,
            state: Arc::new(ServerState {
                session,
                coalescer: Coalescer::new(),
                requests: AtomicU64::new(0),
                inflight: AtomicU64::new(0),
                draining: AtomicBool::new(false),
            }),
            store_warning,
        })
    }

    /// The store-downgrade warning from [`Server::bind`], if any.
    pub fn store_warning(&self) -> Option<&str> {
        self.store_warning.as_deref()
    }

    /// The bound address (resolves `:0` to the actual port).
    ///
    /// # Errors
    ///
    /// Propagates the socket's own error, which on a live listener
    /// does not happen in practice.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The daemon's session (exposed for tests asserting capture and
    /// restore counters across requests).
    pub fn session(&self) -> &StudySession {
        &self.state.session
    }

    /// The daemon's request coalescer (exposed for tests).
    pub fn coalescer(&self) -> &Coalescer {
        &self.state.coalescer
    }

    /// Serves until a `POST /shutdown` drains the daemon: after the
    /// drain flag is set, no new connection is accepted and the loop
    /// returns once every in-flight handler finished.
    ///
    /// # Errors
    ///
    /// [`StudyError::Io`] on a non-transient accept failure. Per
    /// connection I/O errors only terminate that connection.
    pub fn run(&self) -> Result<(), StudyError> {
        self.listener.set_nonblocking(true).map_err(|e| StudyError::Io {
            path: "listener".to_string(),
            reason: e.to_string(),
        })?;
        loop {
            if self.state.draining.load(Ordering::SeqCst) {
                if self.state.inflight.load(Ordering::SeqCst) == 0 {
                    return Ok(());
                }
                std::thread::sleep(ACCEPT_POLL);
                continue;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let state = Arc::clone(&self.state);
                    // Counted before the handler thread exists, so a
                    // drain can never observe zero while a connection
                    // is still waiting to start.
                    state.inflight.fetch_add(1, Ordering::SeqCst);
                    std::thread::spawn(move || {
                        let _ = handle_connection(&state, stream);
                        state.inflight.fetch_sub(1, Ordering::SeqCst);
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    return Err(StudyError::Io {
                        path: "accept".to_string(),
                        reason: e.to_string(),
                    })
                }
            }
        }
    }
}

struct HttpRequest {
    method: String,
    path: String,
    body: Vec<u8>,
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

fn read_http_request(stream: &mut TcpStream) -> Result<HttpRequest, String> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = find_subslice(&buf, b"\r\n\r\n") {
            break pos;
        }
        if buf.len() > MAX_HEADER_BYTES {
            return Err("request header too large".to_string());
        }
        let n = stream.read(&mut chunk).map_err(|e| e.to_string())?;
        if n == 0 {
            return Err("connection closed mid-header".to_string());
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let header = std::str::from_utf8(&buf[..header_end])
        .map_err(|_| "request header is not UTF-8".to_string())?;
    let mut lines = header.split("\r\n");
    let mut request_line = lines.next().unwrap_or("").split_whitespace();
    let method = request_line.next().unwrap_or("").to_string();
    let path = request_line.next().unwrap_or("").to_string();
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| "malformed Content-Length".to_string())?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err("request body too large".to_string());
    }
    let mut body = buf[header_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).map_err(|e| e.to_string())?;
        if n == 0 {
            return Err("connection closed mid-body".to_string());
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(HttpRequest { method, path, body })
}

fn write_response(stream: &mut TcpStream, code: u16, body: &[u8]) -> io::Result<()> {
    let reason = match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        500 => "Internal Server Error",
        _ => "Error",
    };
    write!(
        stream,
        "HTTP/1.1 {code} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body)?;
    stream.flush()
}

fn error_body(message: &str) -> Vec<u8> {
    format!("{}\n", Json::obj(vec![("error", Json::from(message))])).into_bytes()
}

fn stats_json(state: &ServerState) -> Json {
    let session = &state.session;
    Json::obj(vec![
        ("requests", Json::u64(state.requests.load(Ordering::Relaxed))),
        ("in_flight", Json::u64(state.inflight.load(Ordering::SeqCst))),
        ("coalesced", Json::u64(state.coalescer.coalesced())),
        (
            "captures",
            Json::u64(session.cache().captures() + session.cpu_cache().captures()),
        ),
        (
            "restores",
            Json::u64(session.cache().restores() + session.cpu_cache().restores()),
        ),
        ("store_attached", Json::from(session.store().is_some())),
        ("store", store_counters_json()),
        ("draining", Json::from(state.draining.load(Ordering::SeqCst))),
    ])
}

fn handle_study(state: &ServerState, stream: &mut TcpStream, body: &[u8]) -> io::Result<()> {
    state.requests.fetch_add(1, Ordering::Relaxed);
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => return write_response(stream, 400, &error_body("request body is not UTF-8")),
    };
    let doc = match Json::parse(text) {
        Ok(d) => d,
        Err(e) => return write_response(stream, 400, &error_body(&e.to_string())),
    };
    let request = match StudyRequest::from_json(&doc).and_then(|r| {
        r.validate()?;
        Ok(r)
    }) {
        Ok(r) => r,
        Err(e) => return write_response(stream, 400, &error_body(&e.to_string())),
    };
    let key = request.study_key();
    let result = state
        .coalescer
        .join(&key, || execute(&state.session, &request, &mut Quiet).map(|r| r.body_bytes()));
    match result {
        Ok(bytes) => write_response(stream, 200, &bytes),
        Err(e) => write_response(stream, 500, &error_body(&e.to_string())),
    }
}

fn handle_connection(state: &ServerState, mut stream: TcpStream) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let req = match read_http_request(&mut stream) {
        Ok(r) => r,
        Err(e) => return write_response(&mut stream, 400, &error_body(&e)),
    };
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => write_response(&mut stream, 200, b"{\"ok\":true}\n"),
        ("GET", "/stats") => {
            let body = format!("{}\n", stats_json(state)).into_bytes();
            write_response(&mut stream, 200, &body)
        }
        ("POST", "/study") => handle_study(state, &mut stream, &req.body),
        ("POST", "/shutdown") => {
            state.draining.store(true, Ordering::SeqCst);
            write_response(&mut stream, 200, b"{\"draining\":true}\n")
        }
        ("GET" | "POST", _) => write_response(&mut stream, 404, &error_body("not found")),
        _ => write_response(&mut stream, 405, &error_body("method not allowed")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn coalescer_runs_the_leader_once_and_counts_joiners() {
        let c = Arc::new(Coalescer::new());
        let ran = Arc::new(AtomicU64::new(0));
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let release_rx = Arc::new(Mutex::new(release_rx));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let (c, ran, release_rx) = (Arc::clone(&c), Arc::clone(&ran), Arc::clone(&release_rx));
            handles.push(std::thread::spawn(move || {
                c.join("k", || {
                    ran.fetch_add(1, Ordering::SeqCst);
                    // Hold the slot open until the test releases it, so
                    // the other thread provably joins mid-flight.
                    release_rx.lock().unwrap().recv().unwrap();
                    Ok(b"body".to_vec())
                })
                .expect("leader succeeds")
            }));
        }
        // Deterministic: a follower counts itself before blocking, so
        // waiting for `coalesced == 1` proves the second request joined
        // the still-running leader — only then is the leader released.
        while c.coalesced() == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(c.in_flight(), 1, "one key in flight");
        release_tx.send(()).expect("leader is waiting");
        let bodies: Vec<_> = handles.into_iter().map(|h| h.join().expect("join")).collect();
        assert_eq!(ran.load(Ordering::SeqCst), 1, "exactly one execution");
        assert_eq!(c.coalesced(), 1, "the other request joined it");
        assert_eq!(bodies[0], bodies[1], "both callers share the body");
        assert_eq!(c.in_flight(), 0, "slot retired after completion");
        // A later identical request is a fresh execution (warm caches
        // make it cheap), not a stale replay of the first body.
        let again = c.join("k", || Ok(b"fresh".to_vec())).expect("re-run");
        assert_eq!(again.as_slice(), b"fresh");
    }

    #[test]
    fn coalescer_propagates_the_leader_error_to_joiners() {
        let c = Coalescer::new();
        let err = c
            .join("bad", || {
                Err(StudyError::Registry {
                    id: "X".to_string(),
                    reason: "boom",
                })
            })
            .unwrap_err();
        assert!(matches!(err, StudyError::Registry { .. }));
        assert_eq!(c.in_flight(), 0);
    }

    #[test]
    fn find_subslice_locates_the_header_terminator() {
        assert_eq!(find_subslice(b"ab\r\n\r\ncd", b"\r\n\r\n"), Some(2));
        assert_eq!(find_subslice(b"abcd", b"\r\n\r\n"), None);
    }
}

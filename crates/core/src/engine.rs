//! The parallel study engine: a worker pool with deterministic result
//! ordering, plus the per-session [`TraceCache`].
//!
//! Every experiment in the study decomposes into independent jobs —
//! one benchmark × one replay configuration — so [`StudySession`] fans
//! them over a [`std::thread::scope`] pool. Determinism is structural,
//! not best-effort: jobs carry their submission index, workers write
//! results into an index-addressed slot vector, and the caller reads
//! the slots back in submission order. The rendered tables are
//! therefore byte-identical for any worker count, including 1 (which
//! bypasses thread spawning entirely).
//!
//! # The two threading layers
//!
//! The session controls two independent pools, and both are pure
//! performance knobs — neither enters a study key or changes a byte of
//! output:
//!
//! * **`jobs`** (this module) parallelizes *across* replay jobs: many
//!   `(benchmark, configuration)` pairs run concurrently, each replay
//!   serial inside.
//! * **`sim_threads`** ([`simt::set_sim_threads`], forwarded by
//!   [`StudySession::set_sim_threads`]) parallelizes *inside* one
//!   replay: the simulated SMs are sharded across workers that advance
//!   in lockstep epochs and exchange shared-memory traffic at
//!   deterministic barriers, replaying it in canonical serial order
//!   (see `simt::gpu`). Byte-identity is an invariant of the engine,
//!   not a best-effort property of this knob.
//!
//! Wide sweeps want `jobs` (more independent work than cores); a single
//! Large-scale replay wants `sim_threads` (one long-running job). The
//! two compose — `jobs * sim_threads` threads can be live at once — so
//! oversubscribing both is rarely useful.
//!
//! ```
//! use rodinia_study::engine::StudySession;
//!
//! let session = StudySession::new(2);
//! session.set_sim_threads(4);
//! assert_eq!(session.sim_threads(), 4);
//! // Same tables as jobs=1 / sim_threads=1, sooner.
//! session.set_sim_threads(1);
//! ```

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use store::TraceStore;

use crate::error::StudyError;
use crate::trace_cache::{CpuTraceCache, TraceCache};

/// One run of the study: a worker-pool width and a shared trace cache.
///
/// Pass a session to the experiment drivers
/// (e.g. [`crate::experiments::run_gpu`]); within one session each
/// `(benchmark, scale, variant)` is functionally executed at most once
/// per capture fingerprint, no matter how many experiments or replay
/// configurations consume the trace.
#[derive(Debug)]
pub struct StudySession {
    jobs: AtomicUsize,
    cache: TraceCache,
    cpu_cache: CpuTraceCache,
    store: Option<Arc<TraceStore>>,
}

impl Default for StudySession {
    /// A session sized to the machine: one worker per available CPU.
    fn default() -> StudySession {
        StudySession::new(
            std::thread::available_parallelism()
                .map_or(1, NonZeroUsize::get),
        )
    }
}

impl StudySession {
    /// Creates a session with `jobs` workers (clamped to at least 1).
    #[must_use = "builds a session without running anything"]
    pub fn new(jobs: usize) -> StudySession {
        StudySession {
            jobs: AtomicUsize::new(jobs.max(1)),
            cache: TraceCache::new(),
            cpu_cache: CpuTraceCache::new(),
            store: None,
        }
    }

    /// A single-worker session: jobs run inline on the caller's thread,
    /// in submission order.
    #[must_use = "builds a session without running anything"]
    pub fn sequential() -> StudySession {
        StudySession::new(1)
    }

    /// The worker-pool width.
    pub fn jobs(&self) -> usize {
        self.jobs.load(Ordering::Relaxed)
    }

    /// Adjusts the worker-pool width for subsequent [`run_indexed`]
    /// calls (clamped to at least 1). Results are byte-identical at any
    /// width, so a long-running session — the `repro serve` daemon —
    /// can apply a per-request `jobs` hint without forking state; a
    /// sweep already in flight keeps the width it started with.
    ///
    /// [`run_indexed`]: StudySession::run_indexed
    pub fn set_jobs(&self, jobs: usize) {
        self.jobs.store(jobs.max(1), Ordering::Relaxed);
    }

    /// Sets the *intra-replay* worker count (`0` = auto, one per CPU)
    /// for subsequent replays, forwarding to [`simt::set_sim_threads`].
    ///
    /// Like [`set_jobs`], a pure wall-clock knob: the sharded replay
    /// engine is byte-identical at every width, so it is excluded from
    /// study keys and safe to flip between (or even during) requests.
    /// The setting is process-global — `simt` owns it — so concurrent
    /// sessions share it; replays already in flight keep the width they
    /// started with.
    ///
    /// [`set_jobs`]: StudySession::set_jobs
    pub fn set_sim_threads(&self, n: usize) {
        simt::set_sim_threads(n);
    }

    /// The configured intra-replay worker count (`0` = auto).
    pub fn sim_threads(&self) -> usize {
        simt::sim_threads()
    }

    /// The session's shared GPU kernel-trace cache.
    pub fn cache(&self) -> &TraceCache {
        &self.cache
    }

    /// The session's shared CPU memory-trace cache.
    pub fn cpu_cache(&self) -> &CpuTraceCache {
        &self.cpu_cache
    }

    /// Attaches a persistent [`TraceStore`] to this session: both trace
    /// caches check it before capturing and persist fresh captures back
    /// to it, and sweep drivers checkpoint their progress in its
    /// journals. The store is strictly a durability layer — detaching
    /// it (or damaging it) changes wall-clock time, never results.
    pub fn attach_store(&mut self, store: Arc<TraceStore>) {
        self.cache.set_store(Arc::clone(&store));
        self.cpu_cache.set_store(Arc::clone(&store));
        self.store = Some(store);
    }

    /// The attached persistent store, if any.
    pub fn store(&self) -> Option<&Arc<TraceStore>> {
        self.store.as_ref()
    }

    /// Runs `f(0), f(1), ..., f(n-1)` across the worker pool and
    /// returns the results **in index order**.
    ///
    /// Workers claim indices from a shared counter, so scheduling is
    /// nondeterministic — but reassembly is by index, which makes the
    /// output independent of the worker count and of thread timing.
    ///
    /// # Errors
    ///
    /// The lowest-index job error, matching what a sequential
    /// left-to-right run would report first. (Unlike the sequential
    /// path, later jobs may already have started when an early one
    /// fails; their side effects on the trace cache are harmless.)
    pub fn run_indexed<T, F>(&self, n: usize, f: F) -> Result<Vec<T>, StudyError>
    where
        T: Send,
        F: Fn(usize) -> Result<T, StudyError> + Sync,
    {
        let workers = self.jobs().min(n);
        if workers <= 1 {
            return (0..n).map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<T, StudyError>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = f(i);
                    *slots[i].lock().unwrap_or_else(std::sync::PoisonError::into_inner) = Some(r);
                });
            }
        });
        let mut out = Vec::with_capacity(n);
        for slot in slots {
            let r = slot
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .expect("scope joined: every claimed index stored a result");
            out.push(r?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_submission_order() {
        for jobs in [1, 2, 4, 7] {
            let session = StudySession::new(jobs);
            let out = session
                .run_indexed(20, |i| Ok(i * i))
                .expect("all jobs succeed");
            assert_eq!(out, (0..20).map(|i| i * i).collect::<Vec<_>>(), "jobs={jobs}");
        }
    }

    #[test]
    fn lowest_index_error_wins() {
        let session = StudySession::new(4);
        let err = session
            .run_indexed(16, |i| {
                if i == 3 || i == 11 {
                    Err(StudyError::TableRow {
                        got: i,
                        expected: 0,
                    })
                } else {
                    Ok(i)
                }
            })
            .unwrap_err();
        assert_eq!(err, StudyError::TableRow { got: 3, expected: 0 });
    }

    #[test]
    fn zero_jobs_clamps_to_one_and_empty_input_is_fine() {
        let session = StudySession::new(0);
        assert_eq!(session.jobs(), 1);
        let out = session.run_indexed(0, |_| Ok(())).expect("empty");
        assert!(out.is_empty());
        assert!(session.cache().is_empty());
    }

    #[test]
    fn default_session_uses_available_parallelism() {
        let session = StudySession::default();
        assert!(session.jobs() >= 1);
    }

    #[test]
    fn jobs_width_is_adjustable_and_clamped() {
        let session = StudySession::new(4);
        session.set_jobs(7);
        assert_eq!(session.jobs(), 7);
        session.set_jobs(0);
        assert_eq!(session.jobs(), 1, "zero clamps to one");
        let out = session.run_indexed(8, Ok).expect("runs");
        assert_eq!(out, (0..8).collect::<Vec<_>>());
    }
}

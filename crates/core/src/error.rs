//! Typed errors for the experiment drivers.
//!
//! [`StudyError`] unifies the two substrate error types — `simt`'s
//! [`SimError`] for simulation faults and `analysis`'s
//! [`AnalysisError`] for statistics faults — with the registry-,
//! trace-cache- and rendering-level failures the drivers themselves
//! can hit. Every driver entry point returns `Result<_, StudyError>`;
//! there are no panicking wrappers.

use analysis::AnalysisError;
use simt::SimError;
use std::error::Error;
use std::fmt;
use tracekit::TraceError;

/// Everything that can go wrong while regenerating a paper artifact.
#[derive(Debug, Clone, PartialEq)]
pub enum StudyError {
    /// The GPU simulator rejected a configuration or launch.
    Sim(SimError),
    /// The statistics pipeline rejected its input.
    Analysis(AnalysisError),
    /// The CPU instrumentation substrate rejected a configuration
    /// (cache geometry, thread count) during capture or replay.
    Trace(TraceError),
    /// An artifact was requested from the wrong registry entry point.
    Registry {
        /// The experiment id, Debug-formatted.
        id: String,
        /// Why the entry point refused (e.g. "needs the comparison
        /// corpus; use run_comparison").
        reason: &'static str,
    },
    /// A table row whose width disagrees with its header.
    TableRow {
        /// Cells in the offending row.
        got: usize,
        /// Columns in the header.
        expected: usize,
    },
    /// A cached trace was replayed under a configuration whose
    /// capture-relevant parameters (warp size, shared banks, segment
    /// bytes) differ from those it was captured with.
    TraceReuse {
        /// Fingerprint (and config name) the trace was captured under.
        capture: String,
        /// Fingerprint (and config name) the replay asked for.
        replay: String,
    },
    /// A manifest or telemetry artifact could not be written.
    ///
    /// Holds the rendered `std::io::Error` message rather than the error
    /// itself so [`StudyError`] stays `Clone + PartialEq`.
    Io {
        /// Path of the artifact that failed.
        path: String,
        /// Rendered I/O error.
        reason: String,
    },
}

impl fmt::Display for StudyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StudyError::Sim(e) => e.fmt(f),
            StudyError::Analysis(e) => e.fmt(f),
            StudyError::Trace(e) => e.fmt(f),
            StudyError::Registry { id, reason } => write!(f, "{id} {reason}"),
            StudyError::TableRow { got, expected } => write!(
                f,
                "row width mismatch: {got} cells for {expected} columns"
            ),
            StudyError::TraceReuse { capture, replay } => write!(
                f,
                "trace capture fingerprint mismatch: captured under {capture}, replayed under {replay}"
            ),
            StudyError::Io { path, reason } => write!(f, "cannot write {path}: {reason}"),
        }
    }
}

impl Error for StudyError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StudyError::Sim(e) => Some(e),
            StudyError::Analysis(e) => Some(e),
            StudyError::Trace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for StudyError {
    fn from(e: SimError) -> StudyError {
        StudyError::Sim(e)
    }
}

impl From<AnalysisError> for StudyError {
    fn from(e: AnalysisError) -> StudyError {
        StudyError::Analysis(e)
    }
}

impl From<TraceError> for StudyError {
    fn from(e: TraceError) -> StudyError {
        StudyError::Trace(e)
    }
}

impl From<store::StoreError> for StudyError {
    /// Store failures surface as I/O errors: by the time one reaches a
    /// driver it has already exhausted the store's own retry and
    /// degradation ladder.
    fn from(e: store::StoreError) -> StudyError {
        match e {
            store::StoreError::Unavailable { dir, reason } => StudyError::Io { path: dir, reason },
            store::StoreError::Io { path, reason } | store::StoreError::Journal { path, reason } => {
                StudyError::Io { path, reason }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_delegates_and_preserves_substrings() {
        let sim: StudyError = SimError::EmptyLaunch.into();
        assert_eq!(sim.to_string(), SimError::EmptyLaunch.to_string());
        let reg = StudyError::Registry {
            id: "Fig6".to_string(),
            reason: "needs the comparison corpus; use run_comparison",
        };
        assert!(reg.to_string().contains("needs the comparison corpus"));
        let row = StudyError::TableRow {
            got: 1,
            expected: 2,
        };
        assert!(row.to_string().contains("row width mismatch"));
    }

    #[test]
    fn trace_errors_wrap_and_chain() {
        let e: StudyError = TraceError::SetsNotPowerOfTwo { sets: 192 }.into();
        assert!(e.to_string().contains("power of two"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn source_chains_to_the_substrate_error() {
        let e: StudyError = AnalysisError::EmptyInput {
            what: "data matrix",
        }
        .into();
        assert!(std::error::Error::source(&e).is_some());
    }
}

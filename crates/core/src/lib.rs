//! # rodinia-study — experiment drivers for every table and figure
//!
//! This crate is the paper: each function in [`experiments`] regenerates
//! one table or figure of *"A Characterization of the Rodinia Benchmark
//! Suite with Comparison to Contemporary CMP Workloads"* (IISWC 2010)
//! on top of the substrates in this workspace:
//!
//! | Paper artifact | Module | Entry point |
//! |----------------|--------|-------------|
//! | Table I (suite) | [`suite`] | [`suite::rodinia_table`] |
//! | Table II (GPGPU-Sim config) | — | [`simt::GpuConfig::gpgpusim_default`] |
//! | Fig. 1 (IPC, 8 vs 28 SMs) | [`characterization`] | [`characterization::ipc_scaling`] |
//! | Fig. 2 (memory mix) | [`characterization`] | [`characterization::memory_mix`] |
//! | Fig. 3 (warp occupancy) | [`characterization`] | [`characterization::warp_occupancy`] |
//! | Fig. 4 (channel sweep) | [`characterization`] | [`characterization::channel_sweep`] |
//! | Table III (incremental versions) | [`characterization`] | [`characterization::incremental_versions`] |
//! | Fig. 5 (Fermi configurations) | [`characterization`] | [`characterization::fermi_study`] |
//! | §III.E (Plackett–Burman) | [`sensitivity`] | [`sensitivity::run`] |
//! | Table IV (suite comparison) | [`suite`] | [`suite::comparison_table`] |
//! | Table V (Parsec catalog) | — | [`parsec_lite::catalog()`] |
//! | Fig. 6 (dendrogram) | [`comparison`] | [`comparison::ComparisonStudy::dendrogram`] |
//! | Fig. 7–9 (PCA scatters) | [`comparison`] | [`comparison::ComparisonStudy`] |
//! | Fig. 10 (4 MB miss rates) | [`comparison`] | [`comparison::ComparisonStudy::miss_rates_4mb`] |
//! | Fig. 11–12 (footprints) | [`footprints`] | [`footprints::footprint_study`] |
//!
//! Everything prints through [`report::Table`], which renders aligned
//! text and CSV.
//!
//! Every driver returns `Result<_, `[`error::StudyError`]`>`, which
//! unifies `simt::SimError` and `analysis::AnalysisError` with the
//! drivers' own failure modes; there are no panicking wrappers.
//!
//! Drivers take a [`engine::StudySession`]: a worker pool
//! (`repro --jobs N`) plus two shared trace caches — a
//! [`trace_cache::TraceCache`] that captures each GPU benchmark's warp
//! trace exactly once and replays it under every requested machine
//! configuration, and a [`trace_cache::CpuTraceCache`] that captures
//! each CPU workload's memory trace exactly once and replays it at
//! every shared-cache capacity. Results are reassembled in submission
//! order, so tables are byte-identical for any worker count.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod analyze;
pub mod audit;
pub mod characterization;
pub mod check;
pub mod comparison;
pub mod engine;
pub mod error;
pub mod experiments;
pub mod features;
pub mod footprints;
pub mod manifest;
pub mod report;
pub mod request;
pub mod sensitivity;
pub mod serve;
pub mod suite;
pub mod trace_cache;

pub use datasets::Scale;
pub use engine::StudySession;
pub use error::StudyError;

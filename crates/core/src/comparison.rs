//! The cross-suite comparison study (Section V): profiles all 24
//! workloads once, then derives Figures 6–10 from the shared profiles.
//!
//! Profiling goes through the capture-once trace pipeline: each
//! workload's memory trace is captured exactly once into the session's
//! [`crate::trace_cache::CpuTraceCache`], then the eight cache
//! capacities replay as independent jobs on the session's worker pool.
//! The assembled profiles are byte-identical to the direct
//! [`tracekit::profile()`] path at any worker count (proven in
//! `tests/cpu_replay_determinism.rs`).

use analysis::cluster::{try_flat_clusters, try_hierarchical, Linkage};
use analysis::dendrogram::render_dendrogram;
use analysis::distance::euclidean_matrix;
use analysis::pca::Pca;
use datasets::Scale;
use tracekit::{Profile, ProfileConfig};

use crate::engine::StudySession;
use crate::error::StudyError;
use crate::features;
use crate::report::{f3, Table};
use crate::suite::combined_workloads;

/// The profiled corpus: every Rodinia and Parsec workload under the
/// Bienia methodology (8 threads, shared 4-way 64 B cache, 128 kB–16 MB).
#[derive(Debug)]
pub struct ComparisonStudy {
    /// Workload labels in Figure 6 style (`name(R)` / `name(P)`).
    pub labels: Vec<String>,
    /// One profile per workload, same order as `labels`.
    pub profiles: Vec<Profile>,
}

/// A 2-D PCA scatter (one of Figures 7–9).
#[derive(Debug, Clone)]
pub struct Scatter {
    /// Title.
    pub title: String,
    /// Workload labels.
    pub labels: Vec<String>,
    /// `(pc1, pc2)` coordinates per workload.
    pub points: Vec<(f64, f64)>,
    /// Variance explained by the two plotted components.
    pub variance_explained: (f64, f64),
}

impl Scatter {
    /// The coordinates of one workload (by label prefix, so
    /// `"mummergpu"` matches `"mummergpu(R)"`).
    ///
    /// # Panics
    ///
    /// Panics if the workload is not in the study.
    pub fn point(&self, name: &str) -> (f64, f64) {
        let idx = self
            .labels
            .iter()
            .position(|l| l.starts_with(name))
            .unwrap_or_else(|| panic!("{name} not in study"));
        self.points[idx]
    }

    /// Distance of a workload from the centroid of all points, in
    /// multiples of the mean distance — an outlier score.
    pub fn outlier_score(&self, name: &str) -> f64 {
        let n = self.points.len() as f64;
        let cx = self.points.iter().map(|p| p.0).sum::<f64>() / n;
        let cy = self.points.iter().map(|p| p.1).sum::<f64>() / n;
        let d = |p: (f64, f64)| ((p.0 - cx).powi(2) + (p.1 - cy).powi(2)).sqrt();
        let mean_d = self.points.iter().map(|&p| d(p)).sum::<f64>() / n;
        d(self.point(name)) / mean_d.max(1e-12)
    }

    /// Renders the scatter coordinates.
    pub fn to_table(&self) -> Result<Table, StudyError> {
        let mut t = Table::new(&self.title, &["Workload", "PC1", "PC2"]);
        for (l, p) in self.labels.iter().zip(&self.points) {
            t.push(vec![l.clone(), f3(p.0), f3(p.1)])?;
        }
        Ok(t)
    }
}

impl ComparisonStudy {
    /// Profiles all 24 workloads at the given scale. This is the
    /// expensive step; every figure below reuses the result.
    ///
    /// Two fan-out stages over the session pool: (1) one capture job
    /// per workload, deduplicated through the session's CPU trace
    /// cache; (2) one replay job per `(workload, capacity)` pair —
    /// 24 × 8 independent cache simulations at the default
    /// configuration. Results are reassembled in submission order, so
    /// the study is byte-identical for any `--jobs` value.
    ///
    /// # Errors
    ///
    /// [`StudyError::Trace`] if the profile configuration is invalid
    /// (the lowest-index failing job wins, as with every engine
    /// fan-out).
    pub fn run(session: &StudySession, scale: Scale) -> Result<ComparisonStudy, StudyError> {
        let _span = obs::span!("comparison.profile_corpus");
        let cfg = ProfileConfig::default();
        let workloads = combined_workloads(scale);
        let labels: Vec<String> = workloads.iter().map(|w| w.label.clone()).collect();
        let captures = session.run_indexed(workloads.len(), |i| {
            session.cpu_cache().capture_workload(
                &workloads[i].label,
                workloads[i].workload.as_ref(),
                scale,
                &cfg,
            )
        })?;
        let sizes = &cfg.cache_sizes;
        let per = sizes.len();
        let stats = session.run_indexed(captures.len() * per, |j| {
            captures[j / per]
                .replay(sizes[j % per])
                .map_err(StudyError::from)
        })?;
        let profiles = captures
            .iter()
            .zip(stats.chunks(per))
            .map(|(c, s)| c.profile_with(s.to_vec()))
            .collect();
        Ok(ComparisonStudy { labels, profiles })
    }

    fn scatter(
        &self,
        title: &str,
        features_of: impl Fn(&Profile) -> Vec<f64>,
    ) -> Result<Scatter, StudyError> {
        let data: Vec<Vec<f64>> = self.profiles.iter().map(features_of).collect();
        let pca = Pca::try_fit(&data)?;
        let ve = pca.variance_explained();
        Ok(Scatter {
            title: title.to_string(),
            labels: self.labels.clone(),
            points: pca.scores.iter().map(|r| (r[0], r[1])).collect(),
            variance_explained: (ve[0], *ve.get(1).unwrap_or(&0.0)),
        })
    }

    /// Figure 7: the instruction-mix PCA scatter.
    pub fn instruction_mix_pca(&self) -> Result<Scatter, StudyError> {
        self.scatter(
            "Figure 7: instruction mix (two PCA components)",
            features::instruction_mix_features,
        )
    }

    /// Figure 8: the working-set PCA scatter.
    pub fn working_set_pca(&self) -> Result<Scatter, StudyError> {
        self.scatter(
            "Figure 8: working sets (two PCA components)",
            features::working_set_features,
        )
    }

    /// Figure 9: the sharing PCA scatter.
    pub fn sharing_pca(&self) -> Result<Scatter, StudyError> {
        self.scatter(
            "Figure 9: sharing behavior (two PCA components)",
            features::sharing_features,
        )
    }

    /// The merges of the Figure 6 dendrogram: PCA over the full feature
    /// vector (components covering ≥ 90% variance), Euclidean distance,
    /// average linkage (MATLAB's default). A degenerate profile corpus
    /// (empty, NaN features) surfaces as [`StudyError::Analysis`].
    pub fn cluster_merges(&self) -> Result<Vec<analysis::cluster::Merge>, StudyError> {
        let data: Vec<Vec<f64>> = self.profiles.iter().map(features::full_features).collect();
        let pca = Pca::try_fit(&data)?;
        let k = pca.components_for(0.9);
        let scores = pca.truncated_scores(k);
        let dist = euclidean_matrix(&scores);
        Ok(try_hierarchical(&dist, Linkage::Average)?)
    }

    /// Figure 6: the rendered dendrogram.
    pub fn dendrogram(&self) -> Result<String, StudyError> {
        Ok(render_dendrogram(&self.labels, &self.cluster_merges()?))
    }

    /// Flat cluster labels at a chosen cluster count (for the mixing
    /// analysis: most clusters should contain both suites).
    pub fn flat(&self, k: usize) -> Result<Vec<usize>, StudyError> {
        Ok(try_flat_clusters(
            self.labels.len(),
            &self.cluster_merges()?,
            k,
        )?)
    }

    /// Figure 10: misses per memory reference under the 4 MB cache.
    pub fn miss_rates_4mb(&self) -> Result<Table, StudyError> {
        let mut t = Table::new(
            "Figure 10: miss rates under a 4 MB cache configuration",
            &["Workload", "Misses per memory reference"],
        );
        for (l, p) in self.labels.iter().zip(&self.profiles) {
            t.push(vec![l.clone(), f3(p.at_capacity(4 * 1024 * 1024).miss_rate())])?;
        }
        Ok(t)
    }

    /// Distance between two workloads in the full-feature PCA space used
    /// for clustering (by label prefix) — the quantity the paper's
    /// taxonomy discussion (Section V.B) compares.
    ///
    /// # Panics
    ///
    /// Panics if either workload is not in the study.
    pub fn pc_distance(&self, a: &str, b: &str) -> Result<f64, StudyError> {
        let data: Vec<Vec<f64>> = self.profiles.iter().map(features::full_features).collect();
        let pca = Pca::try_fit(&data)?;
        let k = pca.components_for(0.9);
        let scores = pca.truncated_scores(k);
        let idx = |name: &str| {
            self.labels
                .iter()
                .position(|l| l.starts_with(name))
                .unwrap_or_else(|| panic!("{name} not in study"))
        };
        Ok(analysis::distance::euclidean(
            &scores[idx(a)],
            &scores[idx(b)],
        ))
    }

    /// The Section V.B taxonomy discussion as a table: the paper's
    /// same-dwarf / same-domain pairs with their measured distances,
    /// against the reference pairs the paper contrasts them with.
    pub fn taxonomy_table(&self) -> Result<Table, StudyError> {
        let mut t = Table::new(
            "Section V.B: distances behind the taxonomy discussion",
            &["Pair", "Relation", "Distance"],
        );
        let pairs: [(&str, &str, &str); 6] = [
            ("srad", "fluidanimate", "both stencil-type (similar per the paper)"),
            ("hotspot", "heartwall", "same dwarf (Structured Grid), different clusters"),
            ("backprop", "cfd", "same dwarf (Unstructured Grid), significant differences"),
            ("mummergpu", "bfs", "same dwarf (Graph Traversal), very dissimilar"),
            ("kmeans", "streamcluster", "same domain (distance-based clustering), far apart"),
            ("fluidanimate", "facesim", "different dwarves, yet closer than fluidanimate-cfd"),
        ];
        for (a, b, rel) in pairs {
            t.push(vec![
                format!("{a} vs {b}"),
                rel.to_string(),
                format!("{:.3}", self.pc_distance(a, b)?),
            ])?;
        }
        Ok(t)
    }

    /// The 4 MB miss rate of one workload (by label prefix).
    ///
    /// # Panics
    ///
    /// Panics if the workload is not in the study.
    pub fn miss_rate_4mb(&self, name: &str) -> f64 {
        let idx = self
            .labels
            .iter()
            .position(|l| l.starts_with(name))
            .unwrap_or_else(|| panic!("{name} not in study"));
        self.profiles[idx].at_capacity(4 * 1024 * 1024).miss_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One shared Tiny study for all tests in this module: profiling 24
    // workloads is the expensive part.
    fn study() -> &'static ComparisonStudy {
        use std::sync::OnceLock;
        static STUDY: OnceLock<ComparisonStudy> = OnceLock::new();
        STUDY.get_or_init(|| {
            ComparisonStudy::run(&StudySession::new(2), Scale::Tiny).expect("tiny study")
        })
    }

    #[test]
    fn study_covers_24_workloads() {
        let s = study();
        assert_eq!(s.labels.len(), 24);
        assert_eq!(s.profiles.len(), 24);
    }

    #[test]
    fn dendrogram_names_every_workload() {
        let s = study();
        let d = s.dendrogram().expect("dendrogram renders");
        for l in &s.labels {
            assert!(d.contains(l.as_str()), "{l} missing from dendrogram");
        }
    }

    #[test]
    fn clusters_mix_the_two_suites() {
        // The paper's key finding: "most clusters contain both Rodinia
        // and Parsec applications".
        let s = study();
        let labels = s.flat(5).expect("flat clusters");
        let mut mixed = 0;
        for c in 0..5 {
            let members: Vec<&String> = s
                .labels
                .iter()
                .zip(&labels)
                .filter(|(_, &l)| l == c)
                .map(|(n, _)| n)
                .collect();
            let has_r = members.iter().any(|m| m.contains("(R"));
            let has_p = members.iter().any(|m| m.contains("(P)") || m.contains("R, P"));
            if has_r && has_p {
                mixed += 1;
            }
        }
        assert!(mixed >= 2, "at least two mixed clusters expected");
    }

    #[test]
    fn mummer_is_the_working_set_outlier() {
        let s = study();
        let ws = s.working_set_pca().expect("pca");
        let score = ws.outlier_score("mummergpu");
        assert!(score > 1.5, "MUMmer outlier score {score}");
    }

    #[test]
    fn heartwall_stands_out_in_sharing() {
        let s = study();
        let sh = s.sharing_pca().expect("pca");
        let score = sh.outlier_score("heartwall");
        assert!(score > 1.2, "Heartwall sharing outlier score {score}");
    }

    #[test]
    fn scatters_have_two_components() {
        let s = study();
        for sc in [s.instruction_mix_pca(), s.working_set_pca(), s.sharing_pca()] {
            let sc = sc.expect("pca");
            assert_eq!(sc.points.len(), 24);
            assert!(sc.variance_explained.0 > 0.0);
            assert!(sc.to_table().expect("renders").to_string().contains("PC1"));
        }
    }
}

//! The experiment registry: one entry per table/figure of the paper.

use datasets::Scale;
use simt::GpuConfig;

use crate::characterization;
use crate::comparison::ComparisonStudy;
use crate::engine::StudySession;
use crate::error::StudyError;
use crate::footprints;
use crate::report::Table;
use crate::sensitivity;
use crate::suite;

/// Identifier of a reproducible artifact of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExperimentId {
    /// Table I: the Rodinia suite.
    Table1,
    /// Table II: the GPGPU-Sim configuration.
    Table2,
    /// Figure 1: IPC over 8 and 28 shaders.
    Fig1,
    /// Figure 2: memory-operation breakdown.
    Fig2,
    /// Figure 3: warp occupancies.
    Fig3,
    /// Figure 4: memory-channel sweep.
    Fig4,
    /// Table III: incrementally optimized versions.
    Table3,
    /// Figure 5: Fermi (GTX 480) configurations vs GTX 280.
    Fig5,
    /// Section III.E: Plackett–Burman sensitivity.
    PlackettBurman,
    /// Table IV: Parsec vs Rodinia feature comparison.
    Table4,
    /// Table V: the Parsec catalog.
    Table5,
    /// Figure 6: cross-suite dendrogram.
    Fig6,
    /// Figure 7: instruction-mix PCA.
    Fig7,
    /// Figure 8: working-set PCA.
    Fig8,
    /// Figure 9: sharing PCA.
    Fig9,
    /// Figure 10: 4 MB miss rates.
    Fig10,
    /// Figure 11: instruction footprints.
    Fig11,
    /// Figure 12: data footprints.
    Fig12,
}

impl ExperimentId {
    /// All artifacts in paper order.
    pub fn all() -> Vec<ExperimentId> {
        use ExperimentId::*;
        vec![
            Table1, Table2, Fig1, Fig2, Fig3, Fig4, Table3, Fig5, PlackettBurman, Table4,
            Table5, Fig6, Fig7, Fig8, Fig9, Fig10, Fig11, Fig12,
        ]
    }

    /// Parses a CLI/API artifact name (`"fig1"`, `"table3"`, `"pb"`,
    /// case-insensitive) into its id. This is the single name table
    /// shared by the `repro` argument parser and the `repro serve`
    /// JSON decoder; [`ExperimentId::name`] is its inverse.
    pub fn parse(name: &str) -> Option<ExperimentId> {
        use ExperimentId::*;
        Some(match name.to_ascii_lowercase().as_str() {
            "table1" => Table1,
            "table2" => Table2,
            "table3" => Table3,
            "table4" => Table4,
            "table5" => Table5,
            "fig1" => Fig1,
            "fig2" => Fig2,
            "fig3" => Fig3,
            "fig4" => Fig4,
            "fig5" => Fig5,
            "pb" | "sensitivity" => PlackettBurman,
            "fig6" => Fig6,
            "fig7" => Fig7,
            "fig8" => Fig8,
            "fig9" => Fig9,
            "fig10" => Fig10,
            "fig11" => Fig11,
            "fig12" => Fig12,
            _ => return None,
        })
    }

    /// The canonical artifact name, as accepted by
    /// [`ExperimentId::parse`] and spelled into study keys and
    /// manifests.
    pub fn name(self) -> &'static str {
        use ExperimentId::*;
        match self {
            Table1 => "table1",
            Table2 => "table2",
            Table3 => "table3",
            Table4 => "table4",
            Table5 => "table5",
            Fig1 => "fig1",
            Fig2 => "fig2",
            Fig3 => "fig3",
            Fig4 => "fig4",
            Fig5 => "fig5",
            PlackettBurman => "pb",
            Fig6 => "fig6",
            Fig7 => "fig7",
            Fig8 => "fig8",
            Fig9 => "fig9",
            Fig10 => "fig10",
            Fig11 => "fig11",
            Fig12 => "fig12",
        }
    }

    /// Whether this artifact needs the profiled 24-workload comparison
    /// corpus (and therefore [`run_comparison`] instead of [`run_gpu`]).
    pub fn needs_corpus(self) -> bool {
        use ExperimentId::*;
        matches!(self, Fig6 | Fig7 | Fig8 | Fig9 | Fig10 | Fig11 | Fig12)
    }
}

/// Renders Table II from the default configuration.
pub fn table2() -> Result<Table, StudyError> {
    let c = GpuConfig::gpgpusim_default();
    let mut t = Table::new("Table II: GPGPU-Sim configuration", &["Parameter", "Value"]);
    let rows: Vec<(&str, String)> = vec![
        ("Clock Frequency", format!("{} GHz", c.core_clock_ghz)),
        ("No. of SMs", c.num_sms.to_string()),
        ("Warp Size", c.warp_size.to_string()),
        ("SIMD pipeline width", c.simd_width.to_string()),
        ("No. of Threads/Core", c.max_threads_per_sm.to_string()),
        ("No. of CTAs/Core", c.max_ctas_per_sm.to_string()),
        ("Number of Registers/Core", c.regs_per_sm.to_string()),
        ("Shared Memory/Core", format!("{} kB", c.shared_mem_per_sm / 1024)),
        (
            "Shared Memory Bank Conflict",
            c.model_bank_conflicts.to_string(),
        ),
        ("No. of Memory Channels", c.mem_channels.to_string()),
    ];
    for (k, v) in rows {
        t.push(vec![k.into(), v])?;
    }
    Ok(t)
}

/// Renders Table V from the parsec-lite catalog.
pub fn table5() -> Result<Table, StudyError> {
    let mut t = Table::new(
        "Table V: Parsec applications and sim-large input sizes",
        &["Application", "Domain", "Problem size", "Description"],
    );
    for a in parsec_lite::catalog() {
        t.push(vec![
            a.name.into(),
            a.domain.into(),
            a.sim_large.into(),
            a.description.into(),
        ])?;
    }
    Ok(t)
}

/// Runs one GPU-side experiment (those not needing the CPU comparison
/// corpus) and returns its tables. Invalid configurations, malformed
/// analyses, and registry misuse all surface as a typed [`StudyError`].
///
/// Jobs fan over `session`'s worker pool and share its trace cache;
/// the rendered tables are byte-identical for any worker count. The
/// whole experiment runs inside an `experiment.{id}` span; GPU drivers
/// add `bench.{abbrev}` child spans per job.
pub fn run_gpu(
    session: &StudySession,
    id: ExperimentId,
    scale: Scale,
) -> Result<Vec<Table>, StudyError> {
    let _span = obs::span!("experiment.{id:?}");
    Ok(match id {
        ExperimentId::Table1 => vec![suite::rodinia_table(scale)?],
        ExperimentId::Table2 => vec![table2()?],
        ExperimentId::Fig1 => vec![characterization::ipc_scaling(session, scale)?.to_table()?],
        ExperimentId::Fig2 => vec![characterization::memory_mix(session, scale)?.to_table()?],
        ExperimentId::Fig3 => {
            vec![characterization::warp_occupancy(session, scale)?.to_table()?]
        }
        ExperimentId::Fig4 => {
            vec![characterization::channel_sweep(session, scale)?.to_table()?]
        }
        ExperimentId::Table3 => {
            vec![characterization::incremental_versions(session, scale)?.to_table()?]
        }
        ExperimentId::Fig5 => vec![characterization::fermi_study(session, scale)?.to_table()?],
        ExperimentId::PlackettBurman => {
            let study = sensitivity::run(session, scale, None)?;
            vec![study.to_table()?, study.aggregate_table()?]
        }
        ExperimentId::Table4 => vec![suite::comparison_table()?],
        ExperimentId::Table5 => vec![table5()?],
        other => {
            return Err(StudyError::Registry {
                id: format!("{other:?}"),
                reason: "needs the comparison corpus; use run_comparison",
            })
        }
    })
}

/// Runs one comparison-corpus experiment against an existing study.
///
/// Runs inside an `experiment.{id}` span like [`run_gpu`]; the
/// expensive corpus profiling is spanned separately by
/// [`ComparisonStudy::run`].
pub fn run_comparison(id: ExperimentId, study: &ComparisonStudy) -> Result<Vec<Table>, StudyError> {
    let _span = obs::span!("experiment.{id:?}");
    Ok(match id {
        ExperimentId::Fig6 => {
            let mut t = Table::new("Figure 6: cross-suite dendrogram", &["Dendrogram"]);
            for line in study.dendrogram()?.lines() {
                t.push(vec![line.to_string()])?;
            }
            vec![t]
        }
        ExperimentId::Fig7 => vec![study.instruction_mix_pca()?.to_table()?],
        ExperimentId::Fig8 => vec![study.working_set_pca()?.to_table()?],
        ExperimentId::Fig9 => vec![study.sharing_pca()?.to_table()?],
        ExperimentId::Fig10 => vec![study.miss_rates_4mb()?],
        ExperimentId::Fig11 => {
            vec![footprints::footprint_study(study).instruction_table()?]
        }
        ExperimentId::Fig12 => vec![footprints::footprint_study(study).data_table()?],
        other => {
            return Err(StudyError::Registry {
                id: format!("{other:?}"),
                reason: "is a GPU-side artifact; use run_gpu",
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_all_18_artifacts() {
        assert_eq!(ExperimentId::all().len(), 18);
    }

    #[test]
    fn names_round_trip_through_parse() {
        for id in ExperimentId::all() {
            assert_eq!(ExperimentId::parse(id.name()), Some(id), "{id:?}");
        }
        assert_eq!(ExperimentId::parse("FIG1"), Some(ExperimentId::Fig1));
        assert_eq!(
            ExperimentId::parse("sensitivity"),
            Some(ExperimentId::PlackettBurman)
        );
        assert_eq!(ExperimentId::parse("fig99"), None);
    }

    #[test]
    fn table2_lists_the_paper_parameters() {
        let t = table2().expect("table2 renders");
        let s = t.to_string();
        assert!(s.contains("Warp Size"));
        assert!(s.contains("28"));
        assert!(s.contains("16384"));
    }

    #[test]
    fn table5_lists_thirteen_apps() {
        assert_eq!(table5().expect("table5 renders").rows.len(), 13);
    }

    #[test]
    fn cheap_gpu_experiments_run_at_tiny_scale() {
        let session = StudySession::sequential();
        for id in [ExperimentId::Table1, ExperimentId::Table4, ExperimentId::Fig2] {
            let tables = run_gpu(&session, id, Scale::Tiny).expect("experiment runs");
            assert!(!tables.is_empty());
            assert!(!tables[0].rows.is_empty());
        }
    }

    #[test]
    fn registry_misuse_yields_typed_error() {
        let session = StudySession::sequential();
        match run_gpu(&session, ExperimentId::Fig6, Scale::Tiny) {
            Err(StudyError::Registry { id, reason }) => {
                assert_eq!(id, "Fig6");
                assert!(reason.contains("needs the comparison corpus"));
            }
            other => panic!("expected StudyError::Registry, got {other:?}"),
        }
    }
}

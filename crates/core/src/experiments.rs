//! The experiment registry: one entry per table/figure of the paper.

use datasets::Scale;
use simt::GpuConfig;

use crate::characterization;
use crate::comparison::ComparisonStudy;
use crate::error::StudyError;
use crate::footprints;
use crate::report::Table;
use crate::sensitivity;
use crate::suite;

/// Identifier of a reproducible artifact of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExperimentId {
    /// Table I: the Rodinia suite.
    Table1,
    /// Table II: the GPGPU-Sim configuration.
    Table2,
    /// Figure 1: IPC over 8 and 28 shaders.
    Fig1,
    /// Figure 2: memory-operation breakdown.
    Fig2,
    /// Figure 3: warp occupancies.
    Fig3,
    /// Figure 4: memory-channel sweep.
    Fig4,
    /// Table III: incrementally optimized versions.
    Table3,
    /// Figure 5: Fermi (GTX 480) configurations vs GTX 280.
    Fig5,
    /// Section III.E: Plackett–Burman sensitivity.
    PlackettBurman,
    /// Table IV: Parsec vs Rodinia feature comparison.
    Table4,
    /// Table V: the Parsec catalog.
    Table5,
    /// Figure 6: cross-suite dendrogram.
    Fig6,
    /// Figure 7: instruction-mix PCA.
    Fig7,
    /// Figure 8: working-set PCA.
    Fig8,
    /// Figure 9: sharing PCA.
    Fig9,
    /// Figure 10: 4 MB miss rates.
    Fig10,
    /// Figure 11: instruction footprints.
    Fig11,
    /// Figure 12: data footprints.
    Fig12,
}

impl ExperimentId {
    /// All artifacts in paper order.
    pub fn all() -> Vec<ExperimentId> {
        use ExperimentId::*;
        vec![
            Table1, Table2, Fig1, Fig2, Fig3, Fig4, Table3, Fig5, PlackettBurman, Table4,
            Table5, Fig6, Fig7, Fig8, Fig9, Fig10, Fig11, Fig12,
        ]
    }
}

/// Renders Table II from the default configuration.
pub fn table2() -> Table {
    let c = GpuConfig::gpgpusim_default();
    let mut t = Table::new("Table II: GPGPU-Sim configuration", &["Parameter", "Value"]);
    let rows: Vec<(&str, String)> = vec![
        ("Clock Frequency", format!("{} GHz", c.core_clock_ghz)),
        ("No. of SMs", c.num_sms.to_string()),
        ("Warp Size", c.warp_size.to_string()),
        ("SIMD pipeline width", c.simd_width.to_string()),
        ("No. of Threads/Core", c.max_threads_per_sm.to_string()),
        ("No. of CTAs/Core", c.max_ctas_per_sm.to_string()),
        ("Number of Registers/Core", c.regs_per_sm.to_string()),
        ("Shared Memory/Core", format!("{} kB", c.shared_mem_per_sm / 1024)),
        (
            "Shared Memory Bank Conflict",
            c.model_bank_conflicts.to_string(),
        ),
        ("No. of Memory Channels", c.mem_channels.to_string()),
    ];
    for (k, v) in rows {
        t.push(vec![k.into(), v]);
    }
    t
}

/// Renders Table V from the parsec-lite catalog.
pub fn table5() -> Table {
    let mut t = Table::new(
        "Table V: Parsec applications and sim-large input sizes",
        &["Application", "Domain", "Problem size", "Description"],
    );
    for a in parsec_lite::catalog() {
        t.push(vec![
            a.name.into(),
            a.domain.into(),
            a.sim_large.into(),
            a.description.into(),
        ]);
    }
    t
}

/// Runs one GPU-side experiment (those not needing the CPU comparison
/// corpus) and returns its tables.
///
/// # Panics
///
/// Panics if asked for a comparison-corpus artifact; use
/// [`run_comparison`] for Figures 6–12. Prefer [`try_run_gpu`] for a
/// typed error.
pub fn run_gpu(id: ExperimentId, scale: Scale) -> Vec<Table> {
    try_run_gpu(id, scale).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`run_gpu`]: invalid configurations, malformed analyses,
/// and registry misuse all surface as a typed [`StudyError`].
///
/// The whole experiment runs inside an `experiment.{id}` span; GPU
/// drivers add `bench.{abbrev}` child spans per benchmark.
pub fn try_run_gpu(id: ExperimentId, scale: Scale) -> Result<Vec<Table>, StudyError> {
    let _span = obs::span!("experiment.{id:?}");
    Ok(match id {
        ExperimentId::Table1 => vec![suite::rodinia_table(scale)],
        ExperimentId::Table2 => vec![table2()],
        ExperimentId::Fig1 => vec![characterization::try_ipc_scaling(scale)?.try_to_table()?],
        ExperimentId::Fig2 => vec![characterization::try_memory_mix(scale)?.try_to_table()?],
        ExperimentId::Fig3 => {
            vec![characterization::try_warp_occupancy(scale)?.try_to_table()?]
        }
        ExperimentId::Fig4 => vec![characterization::try_channel_sweep(scale)?.try_to_table()?],
        ExperimentId::Table3 => {
            vec![characterization::try_incremental_versions(scale)?.try_to_table()?]
        }
        ExperimentId::Fig5 => vec![characterization::try_fermi_study(scale)?.try_to_table()?],
        ExperimentId::PlackettBurman => {
            let study = sensitivity::try_pb_study(scale, None)?;
            vec![study.try_to_table()?, study.try_aggregate_table()?]
        }
        ExperimentId::Table4 => vec![suite::comparison_table()],
        ExperimentId::Table5 => vec![table5()],
        other => {
            return Err(StudyError::Registry {
                id: format!("{other:?}"),
                reason: "needs the comparison corpus; use run_comparison",
            })
        }
    })
}

/// Runs one comparison-corpus experiment against an existing study.
///
/// # Panics
///
/// Panics if asked for a GPU-side artifact; use [`run_gpu`] for those.
/// Prefer [`try_run_comparison`] for a typed error.
pub fn run_comparison(id: ExperimentId, study: &ComparisonStudy) -> Vec<Table> {
    try_run_comparison(id, study).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`run_comparison`].
///
/// Runs inside an `experiment.{id}` span like [`try_run_gpu`]; the
/// expensive corpus profiling is spanned separately by
/// [`ComparisonStudy::run`].
pub fn try_run_comparison(
    id: ExperimentId,
    study: &ComparisonStudy,
) -> Result<Vec<Table>, StudyError> {
    let _span = obs::span!("experiment.{id:?}");
    Ok(match id {
        ExperimentId::Fig6 => {
            let mut t = Table::new("Figure 6: cross-suite dendrogram", &["Dendrogram"]);
            for line in study.dendrogram().lines() {
                t.try_push(vec![line.to_string()])?;
            }
            vec![t]
        }
        ExperimentId::Fig7 => vec![study.try_instruction_mix_pca()?.try_to_table()?],
        ExperimentId::Fig8 => vec![study.try_working_set_pca()?.try_to_table()?],
        ExperimentId::Fig9 => vec![study.try_sharing_pca()?.try_to_table()?],
        ExperimentId::Fig10 => vec![study.try_miss_rates_4mb()?],
        ExperimentId::Fig11 => {
            vec![footprints::footprint_study(study).try_instruction_table()?]
        }
        ExperimentId::Fig12 => vec![footprints::footprint_study(study).try_data_table()?],
        other => {
            return Err(StudyError::Registry {
                id: format!("{other:?}"),
                reason: "is a GPU-side artifact; use run_gpu",
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_all_18_artifacts() {
        assert_eq!(ExperimentId::all().len(), 18);
    }

    #[test]
    fn table2_lists_the_paper_parameters() {
        let t = table2();
        let s = t.to_string();
        assert!(s.contains("Warp Size"));
        assert!(s.contains("28"));
        assert!(s.contains("16384"));
    }

    #[test]
    fn table5_lists_thirteen_apps() {
        assert_eq!(table5().rows.len(), 13);
    }

    #[test]
    fn cheap_gpu_experiments_run_at_tiny_scale() {
        for id in [ExperimentId::Table1, ExperimentId::Table4, ExperimentId::Fig2] {
            let tables = run_gpu(id, Scale::Tiny);
            assert!(!tables.is_empty());
            assert!(!tables[0].rows.is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "needs the comparison corpus")]
    fn comparison_artifacts_reject_gpu_path() {
        let _ = run_gpu(ExperimentId::Fig6, Scale::Tiny);
    }

    #[test]
    fn registry_misuse_yields_typed_error() {
        match try_run_gpu(ExperimentId::Fig6, Scale::Tiny) {
            Err(StudyError::Registry { id, reason }) => {
                assert_eq!(id, "Fig6");
                assert!(reason.contains("comparison corpus"));
            }
            other => panic!("expected StudyError::Registry, got {other:?}"),
        }
    }
}

//! The `repro audit` driver: symbolic access-contract verification
//! across the suite.
//!
//! Where `repro check` reports what one launch *did* (dynamic checkers
//! over a concrete tape), `repro audit` proves what every launch *must
//! do*: for each benchmark it captures the corpus at **tiny** scale
//! with the sanitizer sink installed, fits an affine access contract
//! `addr = c0 + c1·lane + c2·warp + c3·block + c4·phase + c5·launch`
//! per static op site ([`sanitize::infer_contracts`], falling back to
//! interval summaries where no affine form exists), and runs the
//! integer-constraint checker ([`sanitize::check_contracts`]) proving
//! race-freedom between barrier intervals, in-bounds access, and
//! coalescing/bank-conflict degrees symbolically — for all grid
//! shapes, not just the one that ran.
//!
//! When invoked at a larger scale, the corpus is additionally captured
//! at that scale and [`sanitize::compare_scales`] cross-validates the
//! tiny-grid evidence: a site whose access pattern *class* degrades
//! (affine at tiny, non-affine at scale) is flagged as scale-variant,
//! because tiny-grid proofs would not transfer to it.
//!
//! The written `AUDIT_manifest.json` (schema [`AUDIT_SCHEMA`]) carries
//! the full contract payload and proof verdicts with no wall-clock
//! state, so two independent runs are byte-identical — the CI audit
//! gate diffs exactly this file with `cmp`.

use std::path::{Path, PathBuf};

use datasets::Scale;
use obs::Json;
use sanitize::{
    check_contracts, compare_scales, contracts_json, error_count, findings_json, infer_contracts,
    warning_count, Finding, Form, KernelContract,
};
use simt::GpuConfig;

use crate::check::{sanitized_capture, suite_targets};
use crate::engine::StudySession;
use crate::error::StudyError;
use crate::report::Table;

pub use crate::manifest::{AUDIT_FILE, AUDIT_SCHEMA};

/// The contract verdict for one benchmark (or incremental variant).
#[derive(Debug)]
pub struct BenchAudit {
    /// Display name (`BP`, `SRAD v1`, ...).
    pub name: String,
    /// Contracts fitted from the tiny-scale capture — the evidence the
    /// proofs run on.
    pub contracts: Vec<KernelContract>,
    /// Proof findings: contract violations (error severity) and
    /// non-affine caveats (warning severity), plus scale-variance
    /// findings when a verification scale ran.
    pub findings: Vec<Finding>,
}

impl BenchAudit {
    /// Error-severity findings for this benchmark.
    pub fn errors(&self) -> usize {
        error_count(&self.findings)
    }

    /// Warning-severity findings for this benchmark.
    pub fn warnings(&self) -> usize {
        warning_count(&self.findings)
    }

    /// Total static op sites under contract.
    pub fn sites(&self) -> usize {
        self.contracts.iter().map(|k| k.sites.len()).sum()
    }

    /// Sites with a fitted affine form (the provable ones).
    pub fn affine_sites(&self) -> usize {
        self.contracts
            .iter()
            .flat_map(|k| &k.sites)
            .filter(|s| matches!(s.form, Form::Affine(_)))
            .count()
    }
}

/// The full `repro audit` result across the suite.
#[derive(Debug)]
pub struct AuditReport {
    /// Scale the audit was requested at. Contracts are always fitted
    /// at tiny; any larger scale adds the cross-validation pass.
    pub scale: Scale,
    /// Per-benchmark verdicts, suite order then variants.
    pub benches: Vec<BenchAudit>,
}

impl AuditReport {
    /// Total error-severity findings (drives the exit code).
    pub fn error_count(&self) -> usize {
        self.benches.iter().map(BenchAudit::errors).sum()
    }

    /// Total warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.benches.iter().map(BenchAudit::warnings).sum()
    }

    /// The summary table: one row per benchmark.
    ///
    /// # Errors
    ///
    /// [`StudyError::TableRow`] only on an internal width bug.
    pub fn summary_table(&self) -> Result<Table, StudyError> {
        let mut t = Table::new(
            &format!("Access-contract audit ({:?} scale)", self.scale),
            &["Benchmark", "Kernels", "Sites", "Affine", "Errors", "Warnings"],
        );
        for b in &self.benches {
            t.push(vec![
                b.name.clone(),
                b.contracts.len().to_string(),
                b.sites().to_string(),
                b.affine_sites().to_string(),
                b.errors().to_string(),
                b.warnings().to_string(),
            ])?;
        }
        Ok(t)
    }

    /// Every finding as a rendered text line, grouped by benchmark.
    pub fn finding_lines(&self) -> Vec<String> {
        let mut out = Vec::new();
        for b in &self.benches {
            for line in sanitize::render_findings(&b.findings) {
                out.push(format!("{}: {line}", b.name));
            }
        }
        out
    }

    /// The `AUDIT_manifest.json` document: schema and scale tags,
    /// error/warning totals, and per benchmark the findings payload
    /// plus the full contract set ([`sanitize::contracts_json`]).
    /// Deterministic — nothing wall-clock-dependent is included.
    pub fn to_json(&self) -> Json {
        let benches = self
            .benches
            .iter()
            .map(|b| {
                let mut pairs = vec![("name".to_string(), Json::Str(b.name.clone()))];
                if let Json::Obj(inner) = findings_json(&b.findings) {
                    pairs.extend(inner);
                }
                pairs.push(("contracts".to_string(), contracts_json(&b.contracts)));
                Json::Obj(pairs)
            })
            .collect();
        Json::obj(vec![
            ("schema", Json::from(AUDIT_SCHEMA)),
            ("scale", Json::from(crate::manifest::scale_str(self.scale))),
            ("errors", Json::u64(self.error_count() as u64)),
            ("warnings", Json::u64(self.warning_count() as u64)),
            ("benchmarks", Json::Arr(benches)),
        ])
    }

    /// A compact verdict for embedding as a manifest section:
    /// error/warning totals and per-benchmark site/proof counts,
    /// without the full contract payloads.
    pub fn manifest_section(&self) -> Json {
        Json::obj(vec![
            ("errors", Json::u64(self.error_count() as u64)),
            ("warnings", Json::u64(self.warning_count() as u64)),
            (
                "benchmarks",
                Json::Obj(
                    self.benches
                        .iter()
                        .map(|b| {
                            (
                                b.name.clone(),
                                Json::obj(vec![
                                    ("sites", Json::u64(b.sites() as u64)),
                                    ("affine", Json::u64(b.affine_sites() as u64)),
                                    ("errors", Json::u64(b.errors() as u64)),
                                    ("warnings", Json::u64(b.warnings() as u64)),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Writes the manifest to `dir/AUDIT_manifest.json` through the
    /// [`ManifestKind`](crate::manifest::ManifestKind) registry
    /// (atomic, creating `dir` if needed). Returns the written path.
    ///
    /// # Errors
    ///
    /// [`StudyError::Io`] if the directory cannot be created or the
    /// file cannot be written.
    pub fn write(&self, dir: &Path) -> Result<PathBuf, StudyError> {
        crate::manifest::write_manifest(dir, crate::manifest::ManifestKind::Audit, &self.to_json())
    }
}

/// Runs the access-contract audit across the suite and the incremental
/// variants.
///
/// The corpus always captures at [`Scale::Tiny`] — the pigeonhole set
/// the affine fitter needs is small, and the proofs extrapolate
/// symbolically. When `scale` is larger, the corpus also captures at
/// `scale` and each benchmark's contracts are cross-validated for
/// pattern-class stability. Both captures go through the session's
/// shared [`TraceCache`](crate::trace_cache::TraceCache), so an audit
/// after `run`/`check` in the same session reuses warm traces. Jobs
/// fan out across the session's workers.
///
/// # Errors
///
/// [`StudyError::Sim`] if a capture itself fails — a *failed launch*
/// is not an error here (its partial tape is still evidence), but a
/// refused configuration is.
pub fn run_audit(session: &StudySession, scale: Scale) -> Result<AuditReport, StudyError> {
    let cfg = GpuConfig::gpgpusim_default();
    let tiny_targets = suite_targets(Scale::Tiny);
    let verify_targets = (scale != Scale::Tiny).then(|| suite_targets(scale));
    let benches = session.run_indexed(tiny_targets.len(), |i| {
        let target = &tiny_targets[i];
        let _span = obs::span!("audit.{}", target.label);
        let (tapes, _) = sanitized_capture(session, Scale::Tiny, &cfg, target)?;
        let contracts = infer_contracts(&tapes, cfg.shared_banks, cfg.segment_bytes);
        let mut findings = check_contracts(&contracts);
        if let Some(targets) = &verify_targets {
            let (tapes, _) = sanitized_capture(session, scale, &cfg, &targets[i])?;
            let verify = infer_contracts(&tapes, cfg.shared_banks, cfg.segment_bytes);
            findings.extend(compare_scales(&contracts, &verify));
        }
        Ok(BenchAudit {
            name: target.label.clone(),
            contracts,
            findings,
        })
    })?;
    Ok(AuditReport { scale, benches })
}

//! Instruction and data footprints (Figures 11 and 12).

use crate::comparison::ComparisonStudy;
use crate::error::StudyError;
use crate::report::Table;

/// Footprint data for all workloads in the study.
#[derive(Debug, Clone)]
pub struct FootprintStudy {
    /// `(label, instr_blocks_64B, data_blocks_4kB)` per workload.
    pub rows: Vec<(String, usize, usize)>,
}

impl FootprintStudy {
    /// Figure 11's series: 64-byte instruction blocks touched.
    pub fn instruction_table(&self) -> Result<Table, StudyError> {
        let mut t = Table::new(
            "Figure 11: 64-byte instruction blocks touched",
            &["Workload", "Instruction blocks"],
        );
        for (l, i, _) in &self.rows {
            t.push(vec![l.clone(), i.to_string()])?;
        }
        Ok(t)
    }

    /// Figure 12's series: 4 kB data blocks touched.
    pub fn data_table(&self) -> Result<Table, StudyError> {
        let mut t = Table::new(
            "Figure 12: 4 kB data blocks touched",
            &["Workload", "Data blocks"],
        );
        for (l, _, d) in &self.rows {
            t.push(vec![l.clone(), d.to_string()])?;
        }
        Ok(t)
    }

    /// Instruction blocks of one workload (by label prefix).
    ///
    /// # Panics
    ///
    /// Panics if the workload is not in the study.
    pub fn instr_blocks(&self, name: &str) -> usize {
        self.rows
            .iter()
            .find(|(l, ..)| l.starts_with(name))
            .unwrap_or_else(|| panic!("{name} not in study"))
            .1
    }

    /// Data blocks of one workload (by label prefix).
    ///
    /// # Panics
    ///
    /// Panics if the workload is not in the study.
    pub fn data_blocks(&self, name: &str) -> usize {
        self.rows
            .iter()
            .find(|(l, ..)| l.starts_with(name))
            .unwrap_or_else(|| panic!("{name} not in study"))
            .2
    }

    /// Median instruction blocks across a suite (labels containing the
    /// given tag).
    pub fn median_instr_blocks(&self, tag: &str) -> usize {
        let mut vals: Vec<usize> = self
            .rows
            .iter()
            .filter(|(l, ..)| l.contains(tag))
            .map(|(_, i, _)| *i)
            .collect();
        vals.sort_unstable();
        if vals.is_empty() {
            0
        } else {
            vals[vals.len() / 2]
        }
    }
}

/// Extracts the footprint figures from an existing comparison study.
pub fn footprint_study(study: &ComparisonStudy) -> FootprintStudy {
    FootprintStudy {
        rows: study
            .labels
            .iter()
            .zip(&study.profiles)
            .map(|(l, p)| (l.clone(), p.instr_blocks, p.data_blocks))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasets::Scale;

    #[test]
    fn parsec_code_exceeds_rodinia_with_mummer_exception() {
        let study = ComparisonStudy::run(&crate::engine::StudySession::sequential(), Scale::Tiny)
            .expect("tiny study");
        let fp = footprint_study(&study);
        assert_eq!(fp.rows.len(), 24);
        // The paper: "Parsec applications tend to have larger
        // instruction footprints than Rodinia workloads", with MUMmer
        // the exception.
        let parsec_median = fp.median_instr_blocks("(P)");
        let rodinia_median = fp.median_instr_blocks("(R)");
        assert!(
            parsec_median > 2 * rodinia_median,
            "parsec {parsec_median} vs rodinia {rodinia_median}"
        );
        assert!(
            fp.instr_blocks("mummergpu") > parsec_median / 2,
            "MUMmer is the Rodinia exception"
        );
        // Figure 12: both suites touch large data sets.
        assert!(fp.data_blocks("mummergpu") > 10);
        assert!(fp
            .instruction_table()
            .expect("renders")
            .to_string()
            .contains("vips"));
        assert!(fp.data_table().expect("renders").to_string().contains("canneal"));
    }
}

//! Study-level proof of the robustness tentpole: a persistent store
//! accelerates studies but can never change them. Every injected fault
//! class ends in detect → quarantine → recapture with tables
//! byte-identical to an in-memory run, and checkpoint journals resume
//! a sweep without recomputing (or re-capturing) anything.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use datasets::Scale;
use rodinia_study::sensitivity;
use rodinia_study::trace_cache::{
    CaptureFingerprint, CpuCaptureFingerprint, CpuTraceCache, CpuTraceKey, TraceKey,
};
use rodinia_study::{suite, StudySession};
use simt::GpuConfig;
use store::{inject, StoreFault, TraceStore};
use tracekit::ProfileConfig;

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rodinia-recovery-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Renders the HS Plackett–Burman study to its two result tables.
fn pb_tables(session: &StudySession) -> String {
    let study = sensitivity::run(session, Scale::Tiny, Some(&["HS"])).expect("pb study runs");
    format!(
        "{}\n{}",
        study.to_table().expect("per-benchmark table"),
        study.aggregate_table().expect("aggregate table")
    )
}

/// The store key the PB study's HS capture lands under.
fn hs_store_key() -> String {
    TraceKey {
        benchmark: "HS".to_string(),
        scale: Scale::Tiny,
        variant: "",
        fingerprint: CaptureFingerprint::of(&GpuConfig::gpgpusim_default()),
    }
    .store_key()
}

#[test]
fn every_fault_class_recovers_to_byte_identical_tables() {
    let reference = pb_tables(&StudySession::sequential());
    for fault in StoreFault::ALL {
        let dir = test_dir(&format!("fault-{fault:?}"));
        let store = Arc::new(TraceStore::open(&dir).expect("open store"));

        // Warm run: populates the store (and the sweep journal).
        let mut warm = StudySession::sequential();
        warm.attach_store(Arc::clone(&store));
        assert_eq!(pb_tables(&warm), reference, "{fault:?}: warm run");
        assert!(store.contains(&hs_store_key()), "{fault:?}: capture persisted");

        // Drop the sweep journal so the next run actually re-reads the
        // (about to be damaged) entry instead of restoring responses.
        let _ = fs::remove_dir_all(dir.join("journals"));
        inject(&store, &hs_store_key(), fault).expect("inject");

        // Recovery run over the damaged store: same tables, no panic.
        let mut cold = StudySession::sequential();
        cold.attach_store(Arc::clone(&store));
        assert_eq!(pb_tables(&cold), reference, "{fault:?}: recovery run");
        if fault != StoreFault::TransientIo {
            assert!(
                store.quarantined_count() >= 1,
                "{fault:?}: damaged entry was quarantined, not deleted"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn sweep_journal_resume_skips_every_capture() {
    let dir = test_dir("resume");
    let store = Arc::new(TraceStore::open(&dir).expect("open store"));

    let mut first = StudySession::sequential();
    first.attach_store(Arc::clone(&store));
    let reference = pb_tables(&first);
    assert!(!first.cache().is_empty(), "first run captured");

    // Second session, same store: every response restores from the
    // journal, so the trace cache is never even consulted.
    let mut resumed = StudySession::sequential();
    resumed.attach_store(Arc::clone(&store));
    assert_eq!(pb_tables(&resumed), reference, "resumed tables are identical");
    assert!(
        resumed.cache().is_empty(),
        "journal restore avoided every capture"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn gpu_capture_restores_from_store_without_rerunning() {
    let dir = test_dir("gpu-restore");
    let store = Arc::new(TraceStore::open(&dir).expect("open store"));
    let cfg = GpuConfig::gpgpusim_default();

    let mut warm = StudySession::sequential();
    warm.attach_store(Arc::clone(&store));
    let benches = rodinia_gpu::suite::all_benchmarks(Scale::Tiny);
    let hs = benches
        .iter()
        .find(|b| b.abbrev() == "HS")
        .expect("HS in suite");
    let original = warm
        .cache()
        .capture_benchmark(hs.as_ref(), Scale::Tiny, &cfg)
        .expect("warm capture");

    // A fresh session (simulating a new process) must satisfy the same
    // request purely from the store: the run closure diverges if called.
    let mut cold = StudySession::sequential();
    cold.attach_store(Arc::clone(&store));
    let restored = cold
        .cache()
        .capture_fn("HS", Scale::Tiny, "", &cfg, |_| {
            unreachable!("a verified store entry must preempt recapture")
        })
        .expect("restore");
    assert_eq!(restored.baseline.cycles, original.baseline.cycles);
    assert_eq!(
        restored.baseline.thread_instructions,
        original.baseline.thread_instructions
    );
    assert_eq!(restored.h2d_bytes, original.h2d_bytes);
    assert_eq!(restored.d2h_bytes, original.d2h_bytes);
    assert_eq!(restored.traces.len(), original.traces.len());
    // And the restored capture replays identically on another machine.
    let alt = GpuConfig::gpgpusim_8sm();
    let (r, o) = (
        restored.replay(&alt).expect("replay restored"),
        original.replay(&alt).expect("replay original"),
    );
    assert_eq!(r.cycles, o.cycles);
    assert_eq!(r.thread_instructions, o.thread_instructions);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn cpu_capture_persists_and_recovers_from_damage() {
    let dir = test_dir("cpu");
    let store = Arc::new(TraceStore::open(&dir).expect("open store"));
    let cfg = ProfileConfig::default();
    let ws = suite::combined_workloads(Scale::Tiny);
    let lw = &ws[0];
    let key = CpuTraceKey {
        workload: lw.label.clone(),
        scale: Scale::Tiny,
        fingerprint: CpuCaptureFingerprint::of(&cfg),
    }
    .store_key();

    let warm = CpuTraceCache::new();
    warm.set_store(Arc::clone(&store));
    let original = warm
        .capture_workload(&lw.label, lw.workload.as_ref(), Scale::Tiny, &cfg)
        .expect("warm capture");
    assert!(store.contains(&key), "cpu capture persisted");

    // Fresh cache restores from the store and replays identically.
    let cold = CpuTraceCache::new();
    cold.set_store(Arc::clone(&store));
    let restored = cold
        .capture_workload(&lw.label, lw.workload.as_ref(), Scale::Tiny, &cfg)
        .expect("restore");
    let sizes = &cfg.cache_sizes;
    assert_eq!(
        restored.replay_all(sizes).expect("replay restored"),
        original.replay_all(sizes).expect("replay original")
    );

    // Damage the entry: the next fresh cache quarantines + recaptures.
    inject(&store, &key, StoreFault::BitFlip).expect("inject");
    let recovered = CpuTraceCache::new();
    recovered.set_store(Arc::clone(&store));
    let recaptured = recovered
        .capture_workload(&lw.label, lw.workload.as_ref(), Scale::Tiny, &cfg)
        .expect("recapture");
    assert_eq!(
        recaptured.replay_all(sizes).expect("replay recaptured"),
        original.replay_all(sizes).expect("replay original")
    );
    assert!(store.quarantined_count() >= 1);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn unwritable_store_never_reaches_a_session() {
    // `TraceStore::open` on a file path fails up front (the repro
    // binary downgrades to in-memory caching on that signal); a session
    // without a store runs the study normally.
    let dir = test_dir("unwritable");
    fs::create_dir_all(&dir).expect("mkdir");
    let file = dir.join("occupied");
    fs::write(&file, b"x").expect("write");
    assert!(TraceStore::open(&file).is_err());
    let session = StudySession::sequential();
    assert!(session.store().is_none());
    let _ = pb_tables(&session);
    let _ = fs::remove_dir_all(&dir);
}

//! Suite-level contract-audit regression: `repro audit` proves the
//! whole corpus free of error findings from tiny-grid evidence, every
//! benchmark contributes affine sites for the proofs to run on, and the
//! manifest is byte-deterministic.
//!
//! This is the static counterpart of `sanitizer_suite.rs`: where that
//! test pins what one concrete launch *did*, this one pins what the
//! inferred contracts prove about *every* launch shape.

use rodinia_study::audit::{run_audit, AuditReport};
use rodinia_study::{Scale, StudySession};
use sanitize::FindingKind;

#[test]
fn corpus_contracts_prove_clean_and_manifest_is_deterministic() {
    let session = StudySession::sequential();
    let report = run_audit(&session, Scale::Tiny).expect("audit runs");

    // Contract: no provable race or bounds violation anywhere in the
    // suite or its incremental variants.
    assert_eq!(
        report.error_count(),
        0,
        "contract errors in a clean suite:\n{}",
        report.finding_lines().join("\n")
    );

    // Every benchmark must yield evidence (sites under contract), and
    // most of the suite must fit affine forms — a corpus that silently
    // degraded to all-interval summaries would gut the proofs while
    // still reporting zero errors. (Individual benchmarks may be fully
    // non-affine: hotspot's clamped stencil fits no affine form.)
    for b in &report.benches {
        assert!(b.sites() > 0, "{}: no sites under contract", b.name);
    }
    let (affine, sites) = report
        .benches
        .iter()
        .fold((0, 0), |(a, s), b| (a + b.affine_sites(), s + b.sites()));
    assert!(
        affine >= 40,
        "affine coverage collapsed: {affine}/{sites} sites (55/218 at pinning)"
    );

    // The non-affine caveats are the known data-dependent sites
    // (BFS/B+tree traversals, clipped stencils); they must stay
    // warnings, never errors.
    assert!(report
        .benches
        .iter()
        .flat_map(|b| &b.findings)
        .all(|f| f.kind == FindingKind::NonAffineAccess));

    // Two renders of the same report are byte-identical, and a second
    // independent run (warm trace cache) reproduces them exactly —
    // the property the CI audit gate `cmp`s.
    let once = format!("{}", report.to_json());
    assert_eq!(once, format!("{}", report.to_json()));
    let again = run_audit(&session, Scale::Tiny).expect("audit reruns");
    assert_eq!(once, format!("{}", again.to_json()));
    assert!(matches!(again, AuditReport { scale: Scale::Tiny, .. }));
}

//! In-process acceptance test of the `repro serve` daemon: concurrent
//! identical study requests share one execution (byte-identical
//! bodies, capture work done exactly once), a later identical request
//! is a pure warm hit, and a fresh daemon over the same store restores
//! instead of recapturing.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use obs::Json;
use rodinia_study::serve::{ServeConfig, Server};

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rodinia-serve-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Minimal HTTP/1.1 client: one request, reads to EOF (the server
/// closes every connection), returns `(status, body)`.
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect to daemon");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    let text = String::from_utf8_lossy(&response);
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let header_end = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("header terminator");
    (status, response[header_end + 4..].to_vec())
}

fn post_study(addr: SocketAddr, body: &str) -> (u16, Vec<u8>) {
    http(addr, "POST", "/study", body)
}

fn spawn(server: &Arc<Server>) -> std::thread::JoinHandle<()> {
    let server = Arc::clone(server);
    std::thread::spawn(move || server.run().expect("daemon runs until drained"))
}

fn shutdown(addr: SocketAddr, runner: std::thread::JoinHandle<()>) {
    let (status, _) = http(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    runner.join().expect("accept loop drains and returns");
}

#[test]
fn concurrent_identical_requests_share_one_execution() {
    let store_dir = test_dir("coalesce");
    let server = Arc::new(
        Server::bind(&ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            store: Some(store_dir.clone()),
            jobs: Some(2),
            sim_threads: Some(2),
        })
        .expect("bind"),
    );
    assert!(server.store_warning().is_none(), "store dir is usable");
    let addr = server.local_addr().expect("addr");
    let runner = spawn(&server);

    // Two concurrent identical requests. fig2 at tiny captures every
    // suite benchmark once; the session cache (and the coalescer, when
    // the requests overlap) must keep that to exactly one capture pass.
    let body = r#"{"artifacts":["fig2"],"scale":"tiny"}"#;
    let workers: Vec<_> = (0..2)
        .map(|_| {
            std::thread::spawn(move || post_study(addr, body))
        })
        .collect();
    let results: Vec<(u16, Vec<u8>)> =
        workers.into_iter().map(|w| w.join().expect("client thread")).collect();
    for (status, _) in &results {
        assert_eq!(*status, 200);
    }
    assert_eq!(results[0].1, results[1].1, "identical requests, identical bytes");
    let doc = Json::parse(std::str::from_utf8(&results[0].1).expect("utf-8")).expect("parses");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("rodinia-repro.study/v1")
    );
    let captures_after_pair = server.session().cache().captures();
    assert!(captures_after_pair > 0, "something was actually captured");

    // A third identical request after completion: answered entirely
    // from the in-memory cache — zero new captures.
    let (status, body3) = post_study(addr, body);
    assert_eq!(status, 200);
    assert_eq!(body3, results[0].1);
    assert_eq!(
        server.session().cache().captures(),
        captures_after_pair,
        "warm request must not capture"
    );

    // /stats reflects the instance counters.
    let (status, stats) = http(addr, "GET", "/stats", "");
    assert_eq!(status, 200);
    let stats = Json::parse(std::str::from_utf8(&stats).expect("utf-8")).expect("stats parse");
    assert_eq!(
        stats.get("captures").and_then(Json::as_f64),
        Some(captures_after_pair as f64)
    );
    assert_eq!(stats.get("requests").and_then(Json::as_f64), Some(3.0));
    assert_eq!(stats.get("store_attached"), Some(&Json::Bool(true)));

    shutdown(addr, runner);

    // A fresh daemon over the same store answers the same request with
    // zero captures: everything restores from the persistent store.
    let server2 = Arc::new(
        Server::bind(&ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            store: Some(store_dir.clone()),
            jobs: Some(2),
            sim_threads: Some(2),
        })
        .expect("rebind"),
    );
    let addr2 = server2.local_addr().expect("addr");
    let runner2 = spawn(&server2);
    let (status, body4) = post_study(addr2, body);
    assert_eq!(status, 200);
    assert_eq!(body4, results[0].1, "store-restored run renders the same bytes");
    assert_eq!(server2.session().cache().captures(), 0, "pure warm-store run");
    assert!(server2.session().cache().restores() > 0, "captures came from the store");
    shutdown(addr2, runner2);

    let _ = std::fs::remove_dir_all(&store_dir);
}

#[test]
fn bad_requests_are_rejected_and_do_not_kill_the_daemon() {
    let server = Arc::new(
        Server::bind(&ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            store: None,
            jobs: Some(1),
            sim_threads: None,
        })
        .expect("bind"),
    );
    let addr = server.local_addr().expect("addr");
    let runner = spawn(&server);

    let (status, body) = http(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert_eq!(body, b"{\"ok\":true}\n");

    let cases = [
        "not json at all",
        r#"{"artifacts":["fig99"]}"#,
        r#"{"artifacts":["fig1"],"store":"/tmp/x"}"#,
        r#"{"artifacts":[]}"#,
        r#"{"mystery":1}"#,
    ];
    for case in cases {
        let (status, body) = post_study(addr, case);
        assert_eq!(status, 400, "case {case:?}");
        let doc = Json::parse(std::str::from_utf8(&body).expect("utf-8")).expect("error body");
        assert!(doc.get("error").is_some(), "case {case:?}");
    }
    let (status, _) = http(addr, "GET", "/nope", "");
    assert_eq!(status, 404);

    // The daemon survived all of it and still answers real requests.
    let (status, body) = post_study(addr, r#"{"artifacts":["table1","table5"],"scale":"tiny"}"#);
    assert_eq!(status, 200);
    assert!(std::str::from_utf8(&body).expect("utf-8").contains("rodinia-repro.study/v1"));
    shutdown(addr, runner);
}

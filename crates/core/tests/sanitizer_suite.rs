//! Suite-level sanitizer regression: `repro check` stays clean, and the
//! Table III incremental versions keep their pinned lint verdicts.
//!
//! The pins are the ground truth the lint thresholds were calibrated
//! against: each *unoptimized* variant trips exactly the lint its
//! optimization removes, and the optimized counterpart stays below it.
//! NW's tiled kernel keeps its 16-way bank conflicts by design (the
//! paper notes the padding fix was left out), so it pins a
//! [`FindingKind::BankConflict`] warning instead of staying silent.

use rodinia_study::check::{run_check, BenchCheck, CheckReport};
use rodinia_study::{Scale, StudySession};
use sanitize::FindingKind;

fn bench<'a>(report: &'a CheckReport, name: &str) -> &'a BenchCheck {
    report
        .benches
        .iter()
        .find(|b| b.name == name)
        .unwrap_or_else(|| panic!("no bench {name:?} in report"))
}

fn has(b: &BenchCheck, kind: FindingKind) -> bool {
    b.findings.iter().any(|f| f.kind == kind)
}

#[test]
fn suite_is_clean_and_lint_verdicts_are_pinned() {
    let session = StudySession::sequential();
    let report = run_check(&session, Scale::Tiny).expect("check runs");

    // Contract: the whole suite (and every variant) is free of
    // error-severity findings — races, barrier divergence, OOB,
    // read-before-write.
    assert_eq!(
        report.error_count(),
        0,
        "error findings in a clean suite:\n{}",
        report.finding_lines().join("\n")
    );

    // SRAD: v1 re-fetches each CTA's tile from global memory, v2 stages
    // it in shared memory.
    assert!(has(bench(&report, "SRAD v1"), FindingKind::RedundantGlobal));
    assert!(!has(bench(&report, "SRAD v2"), FindingKind::RedundantGlobal));

    // Leukocyte: v1 re-fetches the GICOV matrix through the texture
    // cache, v2 fuses and stages.
    assert!(has(bench(&report, "LC v1"), FindingKind::RedundantGlobal));
    assert!(!has(bench(&report, "LC v2"), FindingKind::RedundantGlobal));

    // Needleman-Wunsch: the naive kernel reads one cell per lane from a
    // different row (uncoalesced); the tiled kernel coalesces but keeps
    // its by-design bank conflicts.
    assert!(has(bench(&report, "NW naive"), FindingKind::UncoalescedGlobal));
    let tiled = bench(&report, "NW");
    assert!(!has(tiled, FindingKind::UncoalescedGlobal));
    assert!(has(tiled, FindingKind::BankConflict));
}

//! MUMmerGPU: high-throughput DNA read alignment against a suffix tree
//! (Table I: 50000 25-character queries; Graph Traversal dwarf,
//! Bioinformatics). After Schatz et al., as shipped in Rodinia.
//!
//! The reference genome's suffix tree is built on the **CPU with
//! Ukkonen's algorithm** (a real implementation, below) and flattened
//! into arrays the GPU walks through the **texture** path — the paper
//! notes the original encodes the tree in 2-D textures. Each thread
//! aligns one query; reads diverge from the reference at sequencing
//! errors after unpredictable depths, so warps bleed lanes as they
//! descend, producing MUMmer's signature pathology: "more than 60% of
//! its warps have less than 5 active threads". The tree dwarfs every
//! cache, making MUMmer both the working-set outlier of Figure 8 and a
//! prime beneficiary of extra DRAM channels (Figure 4) and the Fermi
//! L1-bias configuration (Figure 5).

use datasets::sequence::{self, base_code, SIGMA};
use datasets::Scale;
use simt::{BufU32, Gpu, GridShape, Kernel, KernelStats, PhaseControl, WarpCtx};
use std::cell::RefCell;

pub use datasets::sequence::SuffixTree;

/// The MUMmer benchmark instance.
#[derive(Debug, Clone)]
pub struct Mummer {
    /// Reference-genome length.
    pub ref_len: usize,
    /// Number of query reads (Table I: 50000).
    pub queries: usize,
    /// Read length (Table I: 25).
    pub read_len: usize,
    /// Per-base sequencing-error probability.
    pub error_rate: f64,
    /// Input seed.
    pub seed: u64,
}

impl Mummer {
    /// Standard instance for a scale.
    pub fn new(scale: Scale) -> Mummer {
        Mummer {
            ref_len: scale.pick(2_000, 50_000, 1_000_000),
            queries: scale.pick(256, 5_000, 50_000),
            read_len: 25,
            // Chosen so that per-lane match-depth attrition reproduces
            // the paper's observation that most MUMmer warps run with
            // fewer than 5 active threads by the end of a traversal.
            error_rate: 0.12,
            seed: 31,
        }
    }

    fn inputs(&self) -> (Vec<u8>, Vec<Vec<u8>>) {
        let reference = sequence::reference(self.ref_len, self.seed);
        let reads = sequence::reads(
            &reference,
            self.queries,
            self.read_len,
            self.error_rate,
            self.seed + 1,
        );
        (reference, reads)
    }

    /// Sequential reference: per-query longest-prefix match lengths via
    /// the host-side tree walk.
    pub fn reference(&self) -> Vec<u32> {
        let (reference, reads) = self.inputs();
        let tree = SuffixTree::build(&reference);
        reads.iter().map(|r| tree.match_prefix(r) as u32).collect()
    }

    /// Runs alignment on `gpu` (tree construction on the host, matching
    /// on the device); returns stats and per-query match lengths.
    pub fn launch(&self, gpu: &mut Gpu) -> (KernelStats, Vec<u32>) {
        let (reference, reads) = self.inputs();
        let tree = SuffixTree::build(&reference);
        let (children, starts, ends, text) = tree.flatten();
        let children_buf = gpu.mem_mut().alloc_u32("mum-children", &children);
        let starts_buf = gpu.mem_mut().alloc_u32("mum-starts", &starts);
        let ends_buf = gpu.mem_mut().alloc_u32("mum-ends", &ends);
        let text_buf = gpu.mem_mut().alloc_u32("mum-text", &text);
        let qcodes: Vec<u32> = reads
            .iter()
            .flat_map(|r| r.iter().map(|&b| base_code(b) as u32))
            .collect();
        let query_buf = gpu.mem_mut().alloc_u32("mum-queries", &qcodes);
        let out_buf = gpu.mem_mut().alloc_u32_zeroed("mum-out", self.queries);
        let kern = MummerKernel {
            children: children_buf,
            starts: starts_buf,
            ends: ends_buf,
            text: text_buf,
            queries: query_buf,
            out: out_buf,
            n_queries: self.queries,
            read_len: self.read_len,
        };
        let stats = gpu.launch(&kern);
        let out = gpu.mem().read_u32(out_buf);
        (stats, out)
    }

    /// Convenience wrapper returning only statistics.
    pub fn run(&self, gpu: &mut Gpu) -> KernelStats {
        self.launch(gpu).0
    }
}

struct MummerKernel {
    children: BufU32,
    starts: BufU32,
    ends: BufU32,
    text: BufU32,
    queries: BufU32,
    out: BufU32,
    n_queries: usize,
    read_len: usize,
}

impl Kernel for MummerKernel {
    fn name(&self) -> &str {
        "mummer-match"
    }

    fn shape(&self) -> GridShape {
        GridShape::cover(self.n_queries, 256)
    }

    fn regs_per_thread(&self) -> u32 {
        24
    }

    fn run_warp(&self, w: &mut WarpCtx<'_>) -> PhaseControl {
        let nq = self.n_queries;
        let rl = self.read_len;
        let tids = w.tids();
        let in_range: Vec<bool> = tids.iter().map(|&t| t < nq).collect();
        let me = (
            self.children,
            self.starts,
            self.ends,
            self.text,
            self.queries,
            self.out,
        );
        w.if_active(&in_range, |w| {
            let (children, starts, ends, text, queries, out) = me;
            let ws = w.warp_size();
            // Per-lane walker state.
            #[derive(Clone, Copy, Default)]
            struct Lane {
                node: u32,
                edge_pos: u32,
                edge_end: u32,
                on_edge: bool,
                matched: u32,
                qpos: u32,
                done: bool,
            }
            let state = RefCell::new(vec![Lane::default(); ws]);
            w.loop_while(
                |w| {
                    w.alu(1);
                    let st = state.borrow();
                    (0..ws).map(|l| !st[l].done && (st[l].qpos as usize) < rl).collect()
                },
                |w| {
                    let act = w.active();
                    // Fetch this step's query character (one uncoalesced
                    // global load per lane: queries are row-major).
                    let snapshot = state.borrow().clone();
                    let qc = w.ld_u32(queries, |lane, tid| {
                        act[lane].then_some(tid * rl + snapshot[lane].qpos as usize)
                    });
                    // Lanes at a node boundary descend via the child
                    // table; lanes inside an edge compare the next text
                    // character. Both are texture walks over arrays far
                    // larger than any cache.
                    let at_node: Vec<bool> = (0..ws)
                        .map(|l| act[l] && !snapshot[l].on_edge)
                        .collect();
                    let child = w.ld_tex_u32(children, |lane, _| {
                        at_node[lane].then_some(
                            snapshot[lane].node as usize * SIGMA + qc[lane] as usize,
                        )
                    });
                    let child_start = w.ld_tex_u32(starts, |lane, _| {
                        (at_node[lane] && child[lane] != 0).then_some(child[lane] as usize)
                    });
                    let child_end = w.ld_tex_u32(ends, |lane, _| {
                        (at_node[lane] && child[lane] != 0).then_some(child[lane] as usize)
                    });
                    let on_edge: Vec<bool> =
                        (0..ws).map(|l| act[l] && snapshot[l].on_edge).collect();
                    let tchar = w.ld_tex_u32(text, |lane, _| {
                        on_edge[lane].then_some(snapshot[lane].edge_pos as usize)
                    });
                    w.alu(6); // comparisons and cursor updates
                    let mut st = state.borrow_mut();
                    for l in 0..ws {
                        if !act[l] {
                            continue;
                        }
                        if !snapshot[l].on_edge {
                            if child[l] == 0 {
                                st[l].done = true;
                                continue;
                            }
                            // First character of the edge always matches
                            // the query character (children are indexed
                            // by it).
                            st[l].matched += 1;
                            st[l].qpos += 1;
                            if child_start[l] + 1 == child_end[l] {
                                st[l].node = child[l];
                            } else {
                                st[l].on_edge = true;
                                st[l].edge_pos = child_start[l] + 1;
                                st[l].edge_end = child_end[l];
                                st[l].node = child[l];
                            }
                        } else {
                            if tchar[l] != qc[l] {
                                st[l].done = true;
                                continue;
                            }
                            st[l].matched += 1;
                            st[l].qpos += 1;
                            st[l].edge_pos += 1;
                            if st[l].edge_pos == st[l].edge_end {
                                st[l].on_edge = false;
                            }
                        }
                    }
                },
            );
            let st = state.borrow();
            let matched: Vec<u32> = st.iter().map(|l| l.matched).collect();
            w.st_u32(out, |lane, tid| (tid < nq).then_some((tid, matched[lane])));
        });
        PhaseControl::Done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt::{GpuConfig, MemSpace};

    /// Naive longest-prefix-substring match for cross-validation.
    fn naive_match(text: &[u8], query: &[u8]) -> usize {
        let mut best = 0;
        for s in 0..text.len() {
            let mut k = 0;
            while s + k < text.len() && k < query.len() && text[s + k] == query[k] {
                k += 1;
            }
            best = best.max(k);
        }
        best
    }

    #[test]
    fn suffix_tree_matches_naive_search() {
        let reference = sequence::reference(500, 7);
        let tree = SuffixTree::build(&reference);
        let reads = sequence::reads(&reference, 60, 20, 0.15, 8);
        for r in &reads {
            assert_eq!(
                tree.match_prefix(r),
                naive_match(&reference, r),
                "query {:?}",
                String::from_utf8_lossy(r)
            );
        }
    }

    #[test]
    fn suffix_tree_finds_all_substrings() {
        let text = b"GATTACAGATTACAT".to_vec();
        let tree = SuffixTree::build(&text);
        for s in 0..text.len() {
            for e in (s + 1)..=text.len() {
                assert_eq!(
                    tree.match_prefix(&text[s..e]),
                    e - s,
                    "substring {:?} must fully match",
                    String::from_utf8_lossy(&text[s..e])
                );
            }
        }
        // A string absent from the text stops early.
        assert!(tree.match_prefix(b"CCCCCCCC") < 8);
    }

    #[test]
    fn suffix_tree_node_count_is_linear() {
        let reference = sequence::reference(2000, 1);
        let tree = SuffixTree::build(&reference);
        // A suffix tree over n+1 symbols has at most 2(n+1) nodes.
        assert!(tree.num_nodes() <= 2 * (reference.len() + 1) + 1);
    }

    #[test]
    fn gpu_matches_host_tree_walk() {
        let mum = Mummer {
            ref_len: 800,
            queries: 128,
            read_len: 20,
            error_rate: 0.1,
            seed: 5,
        };
        let want = mum.reference();
        let mut gpu = Gpu::new(GpuConfig::gpgpusim_default());
        let (_, got) = mum.launch(&mut gpu);
        assert_eq!(want, got);
    }

    #[test]
    fn mummer_is_divergent_and_texture_heavy() {
        let mum = Mummer::new(Scale::Tiny);
        let mut gpu = Gpu::new(GpuConfig::gpgpusim_default());
        let stats = mum.run(&mut gpu);
        // Texture traffic dominates the mix (the tree walk).
        assert!(
            stats.mem_mix.fraction(MemSpace::Texture) > 0.4,
            "tex fraction {:.3}",
            stats.mem_mix.fraction(MemSpace::Texture)
        );
        // Severe divergence: a large share of warps run nearly empty as
        // reads mismatch at different depths.
        let q = stats.occupancy.quartile_fractions();
        assert!(q[0] > 0.2, "low-occupancy share {q:?}");
        assert!(stats.ipc() < 250.0, "MUMmer IPC {}", stats.ipc());
    }

    #[test]
    fn error_free_reads_match_fully() {
        let reference = sequence::reference(1000, 3);
        let tree = SuffixTree::build(&reference);
        for r in sequence::reads(&reference, 40, 25, 0.0, 4) {
            assert_eq!(tree.match_prefix(&r), 25);
        }
    }
}

//! # rodinia-gpu — the 12 Rodinia benchmarks as CUDA-style kernels
//!
//! Each module re-implements one Rodinia application against the
//! [`simt`] warp-level kernel DSL. The implementations are *functionally
//! real* — every benchmark computes its actual algorithm and is validated
//! against a sequential reference — and they reproduce the optimization
//! structure of the CUDA originals that the paper characterizes:
//!
//! | Module | App (Table I) | Dwarf | Key GPU behavior |
//! |--------|---------------|-------|------------------|
//! | [`kmeans`] | Kmeans | Dense Linear Algebra | texture-bound, coalesced via transposed layout |
//! | [`nw`] | Needleman-Wunsch | Dynamic Programming | diagonal-strip parallelism, copious bank conflicts |
//! | [`hotspot`] | HotSpot | Structured Grid | shared-memory ghost-zone tiles |
//! | [`backprop`] | Back Propagation | Unstructured Grid | shared-memory parallel reduction (8/4/2/1 lanes) |
//! | [`srad`] | SRAD | Structured Grid | v1 global-heavy vs v2 shared-tiled |
//! | [`leukocyte`] | Leukocyte | Structured Grid | texture + constant memory; v2 persistent blocks |
//! | [`bfs`] | Breadth-First Search | Graph Traversal | global-memory bound, high divergence |
//! | [`streamcluster`] | Stream Cluster | Dense Linear Algebra | shared-memory candidate centers |
//! | [`mummer`] | MUMmer | Graph Traversal | suffix-tree walk in texture memory, <5-lane warps |
//! | [`cfd`] | CFD Solver | Unstructured Grid | indirect gathers, redundant-flux variant |
//! | [`lud`] | LU Decomposition | Dense Linear Algebra | row/column dependencies, small grids |
//! | [`heartwall`] | Heart Wall | Structured Grid | braided (task × data) parallelism, constant memory |
//!
//! [`suite::all_benchmarks`] returns the whole suite for the experiment
//! drivers; incrementally optimized versions (Table III) live in
//! [`srad`], [`leukocyte`], [`nw`], and [`lud`].

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]
// In workload code the loop index is usually also the *traced address*,
// so indexed loops are clearer than iterator chains here.
#![allow(clippy::needless_range_loop)]

pub mod backprop;
pub mod bfs;
pub mod cfd;
pub mod heartwall;
pub mod hotspot;
pub mod kmeans;
pub mod leukocyte;
pub mod lud;
pub mod mummer;
pub mod nw;
pub mod refimpl;
pub mod srad;
pub mod streamcluster;
pub mod suite;

pub use suite::{all_benchmarks, Dwarf, GpuBenchmark};

//! LU Decomposition: blocked, in-place Doolittle factorization
//! (Table I: 256×256 data points; Dense Linear Algebra dwarf).
//!
//! The paper added LUD to Rodinia precisely for its "significant
//! inter-thread sharing and row and column dependencies": the blocked
//! algorithm serializes over diagonal steps, and early/late steps launch
//! tiny grids, which caps IPC and scalability (Figure 1 shows LUD among
//! the benchmarks that do *not* scale from 8 to 28 shaders).
//!
//! Three kernels per diagonal step, as in Rodinia:
//! * `lud_diagonal` — one block factors the diagonal tile in shared
//!   memory (16 dependent elimination phases);
//! * `lud_perimeter` — row panels get `L⁻¹ ×` solves, column panels get
//!   `× U⁻¹` solves, both against the shared diagonal tile;
//! * `lud_internal` — the trailing submatrix receives a 16-term
//!   rank-update from shared panel tiles (the only high-parallelism
//!   kernel of the three).

use datasets::{matrix, Scale};
use simt::{BufF32, Gpu, GridShape, Kernel, KernelStats, PhaseControl, WarpCtx};

const TILE: usize = 16;

/// Which incremental LUD implementation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LudVersion {
    /// Unblocked right-looking elimination: two global-memory kernels
    /// per step (the "before" point of the incremental-optimization
    /// road map).
    Naive,
    /// The shipping Rodinia scheme: blocked diagonal/perimeter/internal
    /// kernels with shared-memory tiles.
    Blocked,
}

/// The LU Decomposition benchmark instance.
#[derive(Debug, Clone)]
pub struct Lud {
    /// Matrix edge length (multiple of 16).
    pub n: usize,
    /// Implementation version.
    pub version: LudVersion,
    /// Input seed.
    pub seed: u64,
}

impl Lud {
    /// Standard (blocked) instance (Table I uses 256×256 at every scale
    /// but Tiny).
    pub fn new(scale: Scale) -> Lud {
        Lud {
            n: scale.pick(64, 256, 256),
            version: LudVersion::Blocked,
            seed: 17,
        }
    }

    /// Naive-version instance for the incremental-optimization study.
    pub fn naive(scale: Scale) -> Lud {
        Lud {
            version: LudVersion::Naive,
            ..Lud::new(scale)
        }
    }

    /// Sequential in-place Doolittle reference; returns the packed LU
    /// matrix (unit L below the diagonal, U on and above).
    pub fn reference(&self, a: &[f32]) -> Vec<f32> {
        let n = self.n;
        let mut m = a.to_vec();
        for k in 0..n {
            for i in (k + 1)..n {
                m[i * n + k] /= m[k * n + k];
                for j in (k + 1)..n {
                    m[i * n + j] -= m[i * n + k] * m[k * n + j];
                }
            }
        }
        m
    }

    /// Reconstructs `L·U` from a packed LU matrix (for validation).
    pub fn reconstruct(&self, lu: &[f32]) -> Vec<f32> {
        let n = self.n;
        let mut out = vec![0.0f32; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0f64;
                for k in 0..=i.min(j) {
                    let l = if k == i { 1.0f64 } else { lu[i * n + k] as f64 };
                    s += l * lu[k * n + j] as f64;
                }
                out[i * n + j] = s as f32;
            }
        }
        out
    }

    /// Runs the blocked factorization on `gpu`.
    pub fn launch(&self, gpu: &mut Gpu) -> (KernelStats, BufF32) {
        assert!(self.n.is_multiple_of(TILE), "n must be a multiple of 16");
        let a = matrix::diag_dominant_matrix(self.n, self.seed);
        let buf = gpu.mem_mut().alloc_f32("lud-a", &a);
        let nb = self.n / TILE;
        let mut stats: Option<KernelStats> = None;
        let push = |s: KernelStats, stats: &mut Option<KernelStats>| match stats {
            None => *stats = Some(s),
            Some(acc) => acc.merge(&s),
        };
        if self.version == LudVersion::Naive {
            for k in 0..self.n - 1 {
                push(
                    gpu.launch(&LudNaiveDiv {
                        a: buf,
                        n: self.n,
                        k,
                    }),
                    &mut stats,
                );
                push(
                    gpu.launch(&LudNaiveUpdate {
                        a: buf,
                        n: self.n,
                        k,
                    }),
                    &mut stats,
                );
            }
            return (stats.expect("kernels launched"), buf);
        }
        for b in 0..nb {
            push(
                gpu.launch(&LudDiagonal {
                    a: buf,
                    n: self.n,
                    b,
                }),
                &mut stats,
            );
            if b + 1 < nb {
                push(
                    gpu.launch(&LudPerimeter {
                        a: buf,
                        n: self.n,
                        b,
                    }),
                    &mut stats,
                );
                push(
                    gpu.launch(&LudInternal {
                        a: buf,
                        n: self.n,
                        b,
                    }),
                    &mut stats,
                );
            }
        }
        (stats.expect("kernels launched"), buf)
    }

    /// Convenience wrapper returning only statistics.
    pub fn run(&self, gpu: &mut Gpu) -> KernelStats {
        self.launch(gpu).0
    }
}

/// Naive step 1: divide column `k` below the pivot (global memory).
struct LudNaiveDiv {
    a: BufF32,
    n: usize,
    k: usize,
}

impl Kernel for LudNaiveDiv {
    fn name(&self) -> &str {
        "lud-naive-div"
    }

    fn shape(&self) -> GridShape {
        GridShape::cover(self.n - self.k - 1, 64)
    }

    fn run_warp(&self, w: &mut WarpCtx<'_>) -> PhaseControl {
        let (n, k) = (self.n, self.k);
        let rows = n - k - 1;
        let in_range: Vec<bool> = w.tids().iter().map(|&t| t < rows).collect();
        let a = self.a;
        w.if_active(&in_range, |w| {
            let row = |tid: usize| k + 1 + tid;
            let v = w.ld_f32(a, |_, t| (t < rows).then(|| row(t) * n + k));
            let piv = w.ld_f32(a, |_, t| (t < rows).then_some(k * n + k));
            w.sfu(1);
            let ws = w.warp_size();
            let out: Vec<f32> = (0..ws).map(|l| v[l] / piv[l]).collect();
            w.st_f32(a, |lane, t| (t < rows).then(|| (row(t) * n + k, out[lane])));
        });
        PhaseControl::Done
    }
}

/// Naive step 2: rank-1 update of the trailing submatrix (global
/// memory; the column reads are uncoalesced, which is exactly what the
/// blocked version fixes).
struct LudNaiveUpdate {
    a: BufF32,
    n: usize,
    k: usize,
}

impl Kernel for LudNaiveUpdate {
    fn name(&self) -> &str {
        "lud-naive-update"
    }

    fn shape(&self) -> GridShape {
        let rem = self.n - self.k - 1;
        GridShape::cover(rem * rem, 256)
    }

    fn run_warp(&self, w: &mut WarpCtx<'_>) -> PhaseControl {
        let (n, k) = (self.n, self.k);
        let rem = n - k - 1;
        let total = rem * rem;
        let in_range: Vec<bool> = w.tids().iter().map(|&t| t < total).collect();
        let a = self.a;
        w.if_active(&in_range, |w| {
            let cell = |tid: usize| (k + 1 + tid / rem, k + 1 + tid % rem);
            let aij = w.ld_f32(a, |_, t| {
                (t < total).then(|| {
                    let (i, j) = cell(t);
                    i * n + j
                })
            });
            let lik = w.ld_f32(a, |_, t| {
                (t < total).then(|| {
                    let (i, _) = cell(t);
                    i * n + k
                })
            });
            let ukj = w.ld_f32(a, |_, t| {
                (t < total).then(|| {
                    let (_, j) = cell(t);
                    k * n + j
                })
            });
            w.alu(6);
            let ws = w.warp_size();
            let out: Vec<f32> = (0..ws).map(|l| aij[l] - lik[l] * ukj[l]).collect();
            w.st_f32(a, |lane, t| {
                (t < total).then(|| {
                    let (i, j) = cell(t);
                    (i * n + j, out[lane])
                })
            });
        });
        PhaseControl::Done
    }
}

/// Lane decomposition shared by the three kernels: 256 threads as a
/// 16×16 (row, col) tile.
fn tile_coords(ltids: &[usize]) -> (Vec<usize>, Vec<usize>) {
    let ty = ltids.iter().map(|&l| l / TILE).collect();
    let tx = ltids.iter().map(|&l| l % TILE).collect();
    (ty, tx)
}

struct LudDiagonal {
    a: BufF32,
    n: usize,
    b: usize,
}

impl Kernel for LudDiagonal {
    fn name(&self) -> &str {
        "lud-diagonal"
    }

    fn shape(&self) -> GridShape {
        GridShape::new(1, TILE * TILE)
    }

    fn shared_f32_words(&self) -> usize {
        TILE * TILE
    }

    fn run_warp(&self, w: &mut WarpCtx<'_>) -> PhaseControl {
        let (n, off) = (self.n, self.b * TILE);
        let (ty, tx) = tile_coords(&w.ltids());
        match w.phase() {
            0 => {
                let a = self.a;
                let v = w.ld_f32(a, |lane, _| Some((off + ty[lane]) * n + off + tx[lane]));
                w.sh_st_f32(|lane, _| Some((ty[lane] * TILE + tx[lane], v[lane])));
                PhaseControl::Continue
            }
            p @ 1..=TILE => {
                let k = p - 1;
                // Divide column k below the pivot.
                let div_lanes: Vec<bool> = ty
                    .iter()
                    .zip(&tx)
                    .map(|(&y, &x)| x == k && y > k)
                    .collect();
                let (tyv, txv) = (ty.clone(), tx.clone());
                w.if_active(&div_lanes, |w| {
                    let val = w.sh_ld_f32(|lane, _| Some(tyv[lane] * TILE + k));
                    let piv = w.sh_ld_f32(|_, _| Some(k * TILE + k));
                    w.sfu(1);
                    w.sh_st_f32(|lane, _| {
                        Some((tyv[lane] * TILE + k, val[lane] / piv[lane]))
                    });
                });
                // Rank-1 update of the trailing tile.
                let upd_lanes: Vec<bool> = ty
                    .iter()
                    .zip(&tx)
                    .map(|(&y, &x)| y > k && x > k)
                    .collect();
                let (tyv, txv2) = (ty.clone(), txv);
                w.if_active(&upd_lanes, |w| {
                    let aij = w.sh_ld_f32(|lane, _| Some(tyv[lane] * TILE + txv2[lane]));
                    let lik = w.sh_ld_f32(|lane, _| Some(tyv[lane] * TILE + k));
                    let ukj = w.sh_ld_f32(|lane, _| Some(k * TILE + txv2[lane]));
                    w.alu(2);
                    w.sh_st_f32(|lane, _| {
                        Some((
                            tyv[lane] * TILE + txv2[lane],
                            aij[lane] - lik[lane] * ukj[lane],
                        ))
                    });
                });
                PhaseControl::Continue
            }
            _ => {
                let v = w.sh_ld_f32(|lane, _| Some(ty[lane] * TILE + tx[lane]));
                w.st_f32(self.a, |lane, _| {
                    Some(((off + ty[lane]) * n + off + tx[lane], v[lane]))
                });
                PhaseControl::Done
            }
        }
    }
}

struct LudPerimeter {
    a: BufF32,
    n: usize,
    b: usize,
}

impl Kernel for LudPerimeter {
    fn name(&self) -> &str {
        "lud-perimeter"
    }

    fn shape(&self) -> GridShape {
        let nb = self.n / TILE;
        GridShape::new(2 * (nb - self.b - 1), TILE * TILE)
    }

    fn shared_f32_words(&self) -> usize {
        2 * TILE * TILE // diagonal tile + panel tile
    }

    fn run_warp(&self, w: &mut WarpCtx<'_>) -> PhaseControl {
        let (n, off) = (self.n, self.b * TILE);
        let nb = self.n / TILE;
        let panels = nb - self.b - 1;
        let is_row_panel = w.block() < panels;
        let panel_idx = w.block() % panels;
        // Row panel (off, c): tile origin (off, c0); col panel: (r0, off).
        let (pr0, pc0) = if is_row_panel {
            (off, off + (panel_idx + 1) * TILE)
        } else {
            (off + (panel_idx + 1) * TILE, off)
        };
        const DIAG0: usize = 0;
        const PANEL0: usize = TILE * TILE;
        let (ty, tx) = tile_coords(&w.ltids());
        match w.phase() {
            0 => {
                let a = self.a;
                let d = w.ld_f32(a, |lane, _| Some((off + ty[lane]) * n + off + tx[lane]));
                w.sh_st_f32(|lane, _| Some((DIAG0 + ty[lane] * TILE + tx[lane], d[lane])));
                let p = w.ld_f32(a, |lane, _| Some((pr0 + ty[lane]) * n + pc0 + tx[lane]));
                w.sh_st_f32(|lane, _| Some((PANEL0 + ty[lane] * TILE + tx[lane], p[lane])));
                PhaseControl::Continue
            }
            p @ 1..=TILE => {
                let k = p - 1;
                let (tyv, txv) = (ty.clone(), tx.clone());
                if is_row_panel {
                    // panel[i][j] -= L_diag[i][k] * panel[k][j], i > k.
                    let act: Vec<bool> = ty.iter().map(|&y| y > k).collect();
                    w.if_active(&act, |w| {
                        let pij =
                            w.sh_ld_f32(|lane, _| Some(PANEL0 + tyv[lane] * TILE + txv[lane]));
                        let lik = w.sh_ld_f32(|lane, _| Some(DIAG0 + tyv[lane] * TILE + k));
                        let pkj = w.sh_ld_f32(|lane, _| Some(PANEL0 + k * TILE + txv[lane]));
                        w.alu(2);
                        w.sh_st_f32(|lane, _| {
                            Some((
                                PANEL0 + tyv[lane] * TILE + txv[lane],
                                pij[lane] - lik[lane] * pkj[lane],
                            ))
                        });
                    });
                } else {
                    // Divide column k, then update columns j > k.
                    let div: Vec<bool> = tx.iter().map(|&x| x == k).collect();
                    let tyv2 = tyv.clone();
                    w.if_active(&div, |w| {
                        let pik = w.sh_ld_f32(|lane, _| Some(PANEL0 + tyv2[lane] * TILE + k));
                        let ukk = w.sh_ld_f32(|_, _| Some(DIAG0 + k * TILE + k));
                        w.sfu(1);
                        w.sh_st_f32(|lane, _| {
                            Some((PANEL0 + tyv2[lane] * TILE + k, pik[lane] / ukk[lane]))
                        });
                    });
                    let upd: Vec<bool> = tx.iter().map(|&x| x > k).collect();
                    w.if_active(&upd, |w| {
                        let pij =
                            w.sh_ld_f32(|lane, _| Some(PANEL0 + tyv[lane] * TILE + txv[lane]));
                        let pik = w.sh_ld_f32(|lane, _| Some(PANEL0 + tyv[lane] * TILE + k));
                        let ukj = w.sh_ld_f32(|lane, _| Some(DIAG0 + k * TILE + txv[lane]));
                        w.alu(2);
                        w.sh_st_f32(|lane, _| {
                            Some((
                                PANEL0 + tyv[lane] * TILE + txv[lane],
                                pij[lane] - pik[lane] * ukj[lane],
                            ))
                        });
                    });
                }
                PhaseControl::Continue
            }
            _ => {
                let v = w.sh_ld_f32(|lane, _| Some(PANEL0 + ty[lane] * TILE + tx[lane]));
                w.st_f32(self.a, |lane, _| {
                    Some(((pr0 + ty[lane]) * n + pc0 + tx[lane], v[lane]))
                });
                PhaseControl::Done
            }
        }
    }
}

struct LudInternal {
    a: BufF32,
    n: usize,
    b: usize,
}

impl Kernel for LudInternal {
    fn name(&self) -> &str {
        "lud-internal"
    }

    fn shape(&self) -> GridShape {
        let rem = self.n / TILE - self.b - 1;
        GridShape::new(rem * rem, TILE * TILE)
    }

    fn shared_f32_words(&self) -> usize {
        2 * TILE * TILE // L panel tile + U panel tile
    }

    fn run_warp(&self, w: &mut WarpCtx<'_>) -> PhaseControl {
        let (n, off) = (self.n, self.b * TILE);
        let rem = self.n / TILE - self.b - 1;
        let (br, bc) = (w.block() / rem, w.block() % rem);
        let r0 = off + (br + 1) * TILE;
        let c0 = off + (bc + 1) * TILE;
        const L0: usize = 0;
        const U0: usize = TILE * TILE;
        let (ty, tx) = tile_coords(&w.ltids());
        match w.phase() {
            0 => {
                let a = self.a;
                let l = w.ld_f32(a, |lane, _| Some((r0 + ty[lane]) * n + off + tx[lane]));
                w.sh_st_f32(|lane, _| Some((L0 + ty[lane] * TILE + tx[lane], l[lane])));
                let u = w.ld_f32(a, |lane, _| Some((off + ty[lane]) * n + c0 + tx[lane]));
                w.sh_st_f32(|lane, _| Some((U0 + ty[lane] * TILE + tx[lane], u[lane])));
                PhaseControl::Continue
            }
            _ => {
                let a = self.a;
                let mut acc = vec![0.0f32; w.warp_size()];
                for k in 0..TILE {
                    let l = w.sh_ld_f32(|lane, _| Some(L0 + ty[lane] * TILE + k));
                    let u = w.sh_ld_f32(|lane, _| Some(U0 + k * TILE + tx[lane]));
                    w.alu(2);
                    for lane in 0..acc.len() {
                        acc[lane] += l[lane] * u[lane];
                    }
                }
                let own = w.ld_f32(a, |lane, _| Some((r0 + ty[lane]) * n + c0 + tx[lane]));
                w.alu(1);
                w.st_f32(a, |lane, _| {
                    Some(((r0 + ty[lane]) * n + c0 + tx[lane], own[lane] - acc[lane]))
                });
                PhaseControl::Done
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refimpl::max_rel_diff;
    use simt::GpuConfig;

    #[test]
    fn blocked_matches_sequential() {
        let lud = Lud {
            n: 64,
            version: LudVersion::Blocked,
            seed: 2,
        };
        let a = matrix::diag_dominant_matrix(lud.n, lud.seed);
        let want = lud.reference(&a);
        let mut gpu = Gpu::new(GpuConfig::gpgpusim_default());
        let (_, buf) = lud.launch(&mut gpu);
        let got = gpu.mem().read_f32(buf);
        assert!(
            max_rel_diff(&want, &got) < 1e-3,
            "blocked LU differs: {}",
            max_rel_diff(&want, &got)
        );
    }

    #[test]
    fn reconstruction_recovers_input() {
        let lud = Lud {
            n: 48,
            version: LudVersion::Blocked,
            seed: 6,
        };
        let a = matrix::diag_dominant_matrix(lud.n, lud.seed);
        let mut gpu = Gpu::new(GpuConfig::gpgpusim_default());
        let (_, buf) = lud.launch(&mut gpu);
        let lu = gpu.mem().read_f32(buf);
        let back = lud.reconstruct(&lu);
        assert!(
            max_rel_diff(&a, &back) < 1e-3,
            "L*U must reproduce A, diff {}",
            max_rel_diff(&a, &back)
        );
    }

    #[test]
    fn reference_reconstructs_too() {
        let lud = Lud {
            n: 32,
            version: LudVersion::Blocked,
            seed: 1,
        };
        let a = matrix::diag_dominant_matrix(lud.n, lud.seed);
        let lu = lud.reference(&a);
        assert!(max_rel_diff(&a, &lud.reconstruct(&lu)) < 1e-3);
    }

    #[test]
    fn naive_matches_reference_exactly() {
        // The unblocked kernels apply updates in the sequential order:
        // bit-for-bit agreement with the reference.
        let lud = Lud {
            n: 48,
            version: LudVersion::Naive,
            seed: 2,
        };
        let a = matrix::diag_dominant_matrix(lud.n, lud.seed);
        let want = lud.reference(&a);
        let mut gpu = Gpu::new(GpuConfig::gpgpusim_default());
        let (_, buf) = lud.launch(&mut gpu);
        assert_eq!(want, gpu.mem().read_f32(buf));
    }

    #[test]
    fn blocked_version_outperforms_naive() {
        let mk = |version| {
            let lud = Lud {
                n: 64,
                version,
                seed: 2,
            };
            let mut gpu = Gpu::new(GpuConfig::gpgpusim_default());
            lud.run(&mut gpu)
        };
        let naive = mk(LudVersion::Naive);
        let blocked = mk(LudVersion::Blocked);
        assert!(
            blocked.cycles < naive.cycles,
            "blocked {} !< naive {}",
            blocked.cycles,
            naive.cycles
        );
    }

    #[test]
    fn lud_ipc_is_modest() {
        // Row/column dependencies + small grids: LUD must not approach
        // the compute-bound IPC ceiling.
        let lud = Lud::new(Scale::Tiny);
        let mut gpu = Gpu::new(GpuConfig::gpgpusim_default());
        let stats = lud.run(&mut gpu);
        assert!(stats.ipc() < 450.0, "LUD IPC {}", stats.ipc());
        assert!(stats.ipc() > 0.0);
    }
}

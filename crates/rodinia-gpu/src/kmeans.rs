//! Kmeans clustering
//! (Table I: 204800 points × 34 features; Dense Linear Algebra dwarf,
//! Data Mining).
//!
//! The Rodinia CUDA implementation binds the (feature-major, transposed)
//! point array to **texture memory** and keeps the cluster centers in
//! **constant memory**; membership assignment runs on the GPU and the
//! center recomputation on the host. The texture working set per warp is
//! small and reused across the cluster loop, so Kmeans barely responds to
//! DRAM channel scaling (Figure 4) — the texture cache absorbs the
//! traffic.

use datasets::{mining, Scale};
use simt::{BufF32, BufU32, Gpu, GridShape, Kernel, KernelStats, PhaseControl, WarpCtx};

/// The Kmeans benchmark instance.
#[derive(Debug, Clone)]
pub struct Kmeans {
    /// Number of points.
    pub n: usize,
    /// Features per point (Table I: 34).
    pub features: usize,
    /// Number of clusters.
    pub k: usize,
    /// Lloyd iterations.
    pub iterations: usize,
    /// Input seed.
    pub seed: u64,
}

impl Kmeans {
    /// Standard instance for a scale.
    pub fn new(scale: Scale) -> Kmeans {
        Kmeans {
            n: scale.pick(1024, 16_384, 204_800),
            features: 34,
            k: 5,
            iterations: 2,
            seed: 8,
        }
    }

    /// Generates points in point-major layout (`n × features`).
    pub fn points(&self) -> Vec<f32> {
        mining::clustered_points(self.n, self.features, self.k, self.seed)
    }

    fn assign(&self, points: &[f32], centers: &[f32]) -> Vec<u32> {
        let (n, f, k) = (self.n, self.features, self.k);
        (0..n)
            .map(|i| {
                let mut best = 0u32;
                let mut best_d = f32::INFINITY;
                for c in 0..k {
                    let mut d = 0.0f32;
                    for j in 0..f {
                        let diff = points[i * f + j] - centers[c * f + j];
                        d += diff * diff;
                    }
                    if d < best_d {
                        best_d = d;
                        best = c as u32;
                    }
                }
                best
            })
            .collect()
    }

    fn recompute_centers(&self, points: &[f32], membership: &[u32]) -> Vec<f32> {
        let (n, f, k) = (self.n, self.features, self.k);
        let mut centers = vec![0.0f32; k * f];
        let mut counts = vec![0usize; k];
        for i in 0..n {
            let c = membership[i] as usize;
            counts[c] += 1;
            for j in 0..f {
                centers[c * f + j] += points[i * f + j];
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for j in 0..f {
                    centers[c * f + j] /= counts[c] as f32;
                }
            }
        }
        centers
    }

    /// Sequential reference: returns final membership.
    pub fn reference(&self) -> Vec<u32> {
        let points = self.points();
        // Initial centers = first k points, as in Rodinia.
        let mut centers = points[..self.k * self.features].to_vec();
        let mut membership = Vec::new();
        for _ in 0..self.iterations {
            membership = self.assign(&points, &centers);
            centers = self.recompute_centers(&points, &membership);
        }
        membership
    }

    /// Runs on `gpu`; the assignment kernel executes per iteration, the
    /// center update on the host (as in Rodinia).
    pub fn launch(&self, gpu: &mut Gpu) -> (KernelStats, Vec<u32>) {
        let points = self.points();
        // Transposed (feature-major) copy for coalesced texture fetches.
        let (n, f) = (self.n, self.features);
        let mut tpoints = vec![0.0f32; n * f];
        for i in 0..n {
            for j in 0..f {
                tpoints[j * n + i] = points[i * f + j];
            }
        }
        let tex_points = gpu.mem_mut().alloc_f32("km-points-t", &tpoints);
        let mut centers = points[..self.k * f].to_vec();
        let membership_buf = gpu.mem_mut().alloc_u32_zeroed("km-membership", n);
        let mut stats: Option<KernelStats> = None;
        let mut membership = Vec::new();
        for _ in 0..self.iterations {
            let center_buf = gpu.mem_mut().alloc_f32("km-centers", &centers);
            let kern = KmeansKernel {
                points: tex_points,
                centers: center_buf,
                membership: membership_buf,
                n,
                features: f,
                k: self.k,
            };
            let s = gpu.launch(&kern);
            match &mut stats {
                None => stats = Some(s),
                Some(acc) => acc.merge(&s),
            }
            membership = gpu.mem().read_u32(membership_buf);
            centers = self.recompute_centers(&points, &membership);
        }
        (stats.expect("at least one iteration"), membership)
    }

    /// Convenience wrapper returning only statistics.
    pub fn run(&self, gpu: &mut Gpu) -> KernelStats {
        self.launch(gpu).0
    }
}

struct KmeansKernel {
    points: BufF32,
    centers: BufF32,
    membership: BufU32,
    n: usize,
    features: usize,
    k: usize,
}

impl Kernel for KmeansKernel {
    fn name(&self) -> &str {
        "kmeans-assign"
    }

    fn shape(&self) -> GridShape {
        GridShape::cover(self.n, 256)
    }

    fn run_warp(&self, w: &mut WarpCtx<'_>) -> PhaseControl {
        let (n, f, k) = (self.n, self.features, self.k);
        let tids = w.tids();
        let in_range: Vec<bool> = tids.iter().map(|&t| t < n).collect();
        let me = (self.points, self.centers, self.membership);
        w.if_active(&in_range, |w| {
            let (points, centers, membership) = me;
            let ws = w.warp_size();
            let mut d = vec![vec![0.0f32; ws]; k];
            // Feature-outer, cluster-inner loop: each feature slab is
            // re-read k times back-to-back while still texture-resident,
            // which is what keeps Kmeans off the DRAM channels (the
            // paper's Figure 4 observation).
            for j in 0..f {
                for (c, dc) in d.iter_mut().enumerate() {
                    // Transposed layout: lane-consecutive texture fetch.
                    let pv = w.ld_tex_f32(points, |_, tid| (tid < n).then_some(j * n + tid));
                    let cv =
                        w.ld_const_f32(centers, |_, tid| (tid < n).then_some(c * f + j));
                    w.alu(6);
                    for lane in 0..ws {
                        let diff = pv[lane] - cv[lane];
                        dc[lane] += diff * diff;
                    }
                }
            }
            let mut best = vec![0u32; ws];
            let mut best_d = vec![f32::INFINITY; ws];
            w.alu(2 * k as u32); // compare + select over clusters
            for (c, dc) in d.iter().enumerate() {
                for lane in 0..ws {
                    if dc[lane] < best_d[lane] {
                        best_d[lane] = dc[lane];
                        best[lane] = c as u32;
                    }
                }
            }
            w.st_u32(membership, |lane, tid| {
                (tid < n).then_some((tid, best[lane]))
            });
        });
        PhaseControl::Done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt::{GpuConfig, MemSpace};

    #[test]
    fn matches_reference() {
        let km = Kmeans {
            n: 512,
            features: 8,
            k: 4,
            iterations: 2,
            seed: 3,
        };
        let want = km.reference();
        let mut gpu = Gpu::new(GpuConfig::gpgpusim_default());
        let (_, got) = km.launch(&mut gpu);
        assert_eq!(want, got);
    }

    #[test]
    fn memberships_respect_cluster_structure() {
        // Points generated round-robin from k blobs: membership should
        // be k-periodic for the overwhelming majority of points.
        let km = Kmeans {
            n: 600,
            features: 6,
            k: 3,
            iterations: 4,
            seed: 5,
        };
        let m = km.reference();
        let agree = (0..km.n)
            .filter(|&i| m[i] == m[i % km.k])
            .count();
        assert!(agree > km.n * 9 / 10, "only {agree}/{} consistent", km.n);
    }

    #[test]
    fn texture_dominates_memory_mix() {
        let km = Kmeans::new(Scale::Tiny);
        let mut gpu = Gpu::new(GpuConfig::gpgpusim_default());
        let stats = km.run(&mut gpu);
        let mix = &stats.mem_mix;
        assert!(
            mix.fraction(MemSpace::Texture) > 0.4,
            "tex fraction {:.3}",
            mix.fraction(MemSpace::Texture)
        );
        assert!(mix.fraction(MemSpace::Global) < 0.1);
        // Texture-cache reuse across the cluster loop keeps Kmeans off
        // the DRAM channels.
        assert!(
            stats.tex_hits > stats.tex_misses,
            "tex hits {} vs misses {}",
            stats.tex_hits,
            stats.tex_misses
        );
    }
}

//! CFD Solver: unstructured-grid finite-volume solver for the 3-D Euler
//! equations (Table I: 97k elements; Unstructured Grid dwarf, Fluid
//! Dynamics). After Corrigan et al., as shipped in Rodinia.
//!
//! Per element and per iteration the flux kernel gathers the five
//! conserved variables of each of four face neighbors through **indirect
//! indices** — the defining memory behavior of the unstructured dwarf.
//! Variables live in a struct-of-arrays (`[variable][element]`) layout so
//! own-element accesses coalesce, while neighbor gathers do not; combined
//! with heavy floating-point work per face this makes CFD
//! bandwidth-hungry (it is one of the three big winners in the paper's
//! Figure 4 channel sweep).
//!
//! The two released variants are modeled: [`CfdVariant::PrecomputedFlux`]
//! reads per-face contributions computed once, while
//! [`CfdVariant::RedundantFlux`] recomputes both sides of every face.

use datasets::{mesh, Scale};
use simt::{BufF32, BufU32, Gpu, GridShape, Kernel, KernelStats, PhaseControl, WarpCtx};

/// Conserved variables per element (density, 3 momenta, energy).
const NVAR: usize = 5;
/// Faces per element.
const NFACE: usize = 4;
/// Pseudo-time-step factor.
const DT: f32 = 0.001;
/// Upwind dissipation strength.
const EPS: f32 = 0.05;

/// Floating-point precision of the solver's device arrays.
///
/// The paper: the CFD solver "provides both single-precision and
/// double-precision floating point implementations for the GPU, which
/// allows users to analyze the trade-off between performance and
/// computational precision." [`CfdPrecision::Double`] models the
/// double-precision *cost*: the conserved-variable and flux arrays are
/// laid out as 8-byte elements (halving coalescing density and doubling
/// DRAM traffic) and the flux arithmetic runs at the pre-Fermi 1:8
/// DP:SP throughput ratio. Numerically the reproduction still computes
/// in `f32` (the simulator's functional value type).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CfdPrecision {
    /// 4-byte elements, full-rate arithmetic.
    Single,
    /// 8-byte elements, eighth-rate arithmetic.
    Double,
}

/// Flux-computation strategy (the two released versions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CfdVariant {
    /// Each face's flux recomputed by both adjacent elements.
    RedundantFlux,
    /// Fluxes taken from a precomputed per-face table.
    PrecomputedFlux,
}

/// The CFD benchmark instance.
#[derive(Debug, Clone)]
pub struct Cfd {
    /// Number of mesh elements.
    pub n: usize,
    /// Solver iterations.
    pub iterations: usize,
    /// Variant under test.
    pub variant: CfdVariant,
    /// Floating-point precision under test.
    pub precision: CfdPrecision,
    /// Input seed.
    pub seed: u64,
}

impl Cfd {
    /// Standard (redundant-flux) instance for a scale.
    pub fn new(scale: Scale) -> Cfd {
        Cfd {
            n: scale.pick(1024, 16_384, 97_000),
            iterations: scale.pick(2, 3, 4),
            variant: CfdVariant::RedundantFlux,
            precision: CfdPrecision::Single,
            seed: 19,
        }
    }

    /// The same instance in double precision.
    pub fn double_precision(self) -> Cfd {
        Cfd {
            precision: CfdPrecision::Double,
            ..self
        }
    }

    fn initial_variables(&self) -> Vec<f32> {
        // Free-stream initialization with a density perturbation.
        let mut v = vec![0.0f32; NVAR * self.n];
        for e in 0..self.n {
            v[e] = 1.0 + 0.1 * ((e % 97) as f32 / 97.0); // density
            v[self.n + e] = 0.5; // x-momentum
            v[2 * self.n + e] = 0.0;
            v[3 * self.n + e] = 0.0;
            v[4 * self.n + e] = 2.5; // energy
        }
        v
    }

    /// One element's flux accumulation, shared by kernel and reference.
    /// `me` and `nb` are per-variable values; `normal` the face normal.
    #[inline]
    fn face_flux(me: &[f32; NVAR], nb: &[f32; NVAR], normal: &[f32; 3]) -> [f32; NVAR] {
        // Central flux of the Euler equations with scalar dissipation.
        let pressure = |v: &[f32; NVAR]| 0.4 * (v[4] - 0.5 * (v[1] * v[1] + v[2] * v[2] + v[3] * v[3]) / v[0]);
        let pm = pressure(me);
        let pn = pressure(nb);
        let mut out = [0.0f32; NVAR];
        for (k, o) in out.iter_mut().enumerate() {
            // Momentum-weighted transport in the normal direction.
            let fm = me[1] * normal[0] + me[2] * normal[1] + me[3] * normal[2];
            let fn_ = nb[1] * normal[0] + nb[2] * normal[1] + nb[3] * normal[2];
            let transport = 0.5 * (fm * me[k] / me[0] + fn_ * nb[k] / nb[0]);
            let press = if (1..=3).contains(&k) {
                0.5 * (pm + pn) * normal[k - 1]
            } else if k == 4 {
                0.5 * (pm * fm / me[0] + pn * fn_ / nb[0])
            } else {
                0.0
            };
            *o = transport + press - EPS * (nb[k] - me[k]);
        }
        out
    }

    /// Sequential reference run; returns final variables.
    pub fn reference(&self) -> Vec<f32> {
        let m = mesh::cfd_mesh(self.n, self.seed);
        let mut vars = self.initial_variables();
        let n = self.n;
        for _ in 0..self.iterations {
            let mut flux = vec![0.0f32; NVAR * n];
            for e in 0..n {
                let me: [f32; NVAR] = std::array::from_fn(|k| vars[k * n + e]);
                for f in 0..NFACE {
                    let nb_idx = m.neighbors[e * NFACE + f];
                    let nb: [f32; NVAR] = if nb_idx == mesh::BOUNDARY {
                        me // reflective boundary: mirror state
                    } else {
                        std::array::from_fn(|k| vars[k * n + nb_idx as usize])
                    };
                    let normal: [f32; 3] =
                        std::array::from_fn(|d| m.normals[(e * NFACE + f) * 3 + d]);
                    let ff = Self::face_flux(&me, &nb, &normal);
                    for k in 0..NVAR {
                        flux[k * n + e] += ff[k];
                    }
                }
            }
            for e in 0..n {
                let factor = DT / m.volumes[e];
                for k in 0..NVAR {
                    vars[k * n + e] -= factor * flux[k * n + e];
                }
            }
        }
        vars
    }

    /// Element stride in f32 words (2 models the 8-byte footprint of
    /// the double-precision arrays; values live at even indices).
    fn stride(&self) -> usize {
        match self.precision {
            CfdPrecision::Single => 1,
            CfdPrecision::Double => 2,
        }
    }

    /// Spreads values to the configured element stride.
    fn widen(&self, xs: &[f32]) -> Vec<f32> {
        let w = self.stride();
        if w == 1 {
            return xs.to_vec();
        }
        let mut out = vec![0.0f32; xs.len() * w];
        for (i, &x) in xs.iter().enumerate() {
            out[i * w] = x;
        }
        out
    }

    /// Runs the solver on `gpu`; returns stats and the variables buffer.
    pub fn launch(&self, gpu: &mut Gpu) -> (KernelStats, BufF32) {
        let m = mesh::cfd_mesh(self.n, self.seed);
        let n = self.n;
        let vars = gpu
            .mem_mut()
            .alloc_f32("cfd-vars", &self.widen(&self.initial_variables()));
        let flux = gpu
            .mem_mut()
            .alloc_f32_zeroed("cfd-flux", NVAR * n * self.stride());
        let neighbors = gpu.mem_mut().alloc_u32("cfd-neighbors", &m.neighbors);
        let normals = gpu.mem_mut().alloc_f32("cfd-normals", &self.widen(&m.normals));
        let volumes = gpu.mem_mut().alloc_f32("cfd-volumes", &self.widen(&m.volumes));
        let mut stats: Option<KernelStats> = None;
        for _ in 0..self.iterations {
            let kf = CfdFluxKernel {
                vars,
                flux,
                neighbors,
                normals,
                n,
                variant: self.variant,
                stride: self.stride(),
            };
            let s1 = gpu.launch(&kf);
            let kt = CfdTimeStepKernel {
                vars,
                flux,
                volumes,
                n,
                stride: self.stride(),
            };
            let s2 = gpu.launch(&kt);
            match &mut stats {
                None => {
                    let mut s = s1;
                    s.merge(&s2);
                    stats = Some(s);
                }
                Some(acc) => {
                    acc.merge(&s1);
                    acc.merge(&s2);
                }
            }
        }
        (stats.expect("iterations run"), vars)
    }

    /// Convenience wrapper returning only statistics.
    pub fn run(&self, gpu: &mut Gpu) -> KernelStats {
        self.launch(gpu).0
    }
}

struct CfdFluxKernel {
    vars: BufF32,
    flux: BufF32,
    neighbors: BufU32,
    normals: BufF32,
    n: usize,
    variant: CfdVariant,
    /// Element stride in f32 words (2 = double precision).
    stride: usize,
}

impl Kernel for CfdFluxKernel {
    fn name(&self) -> &str {
        "cfd-flux"
    }

    fn shape(&self) -> GridShape {
        GridShape::cover(self.n, 128)
    }

    fn regs_per_thread(&self) -> u32 {
        32 // the flux kernel is register-hungry, limiting occupancy
    }

    fn run_warp(&self, w: &mut WarpCtx<'_>) -> PhaseControl {
        let n = self.n;
        let sw = self.stride;
        let tids = w.tids();
        let in_range: Vec<bool> = tids.iter().map(|&t| t < n).collect();
        let me = (self.vars, self.flux, self.neighbors, self.normals, self.variant);
        w.if_active(&in_range, |w| {
            let (vars, flux, neighbors, normals, variant) = me;
            let ws = w.warp_size();
            // Own variables: coalesced (SoA layout; 8-byte elements at
            // stride 2 halve the coalescing density).
            let mut own = vec![[0.0f32; NVAR]; ws];
            for k in 0..NVAR {
                let v = w.ld_f32(vars, |_, tid| (tid < n).then_some((k * n + tid) * sw));
                for (lane, o) in own.iter_mut().enumerate() {
                    o[k] = v[lane];
                }
            }
            let mut acc = vec![[0.0f32; NVAR]; ws];
            for f in 0..NFACE {
                let nb_idx =
                    w.ld_u32(neighbors, |_, tid| (tid < n).then_some(tid * NFACE + f));
                // Neighbor gathers: indirect, uncoalesced.
                let mut nbv = own.clone();
                for k in 0..NVAR {
                    let v = w.ld_f32(vars, |lane, tid| {
                        (tid < n && nb_idx[lane] != mesh::BOUNDARY)
                            .then_some((k * n + nb_idx[lane] as usize) * sw)
                    });
                    for (lane, nb) in nbv.iter_mut().enumerate() {
                        if nb_idx[lane] != mesh::BOUNDARY {
                            nb[k] = v[lane];
                        }
                    }
                }
                let mut normal = vec![[0.0f32; 3]; ws];
                for d in 0..3 {
                    let v = w.ld_f32(normals, |_, tid| {
                        (tid < n).then_some(((tid * NFACE + f) * 3 + d) * sw)
                    });
                    for (lane, nm) in normal.iter_mut().enumerate() {
                        nm[d] = v[lane];
                    }
                }
                // The flux arithmetic: heavy FP work, with divides on
                // the SFU. The redundant variant recomputes both sides;
                // double precision runs at the pre-Fermi 1:8 DP:SP rate.
                let flops = match variant {
                    CfdVariant::RedundantFlux => 45,
                    CfdVariant::PrecomputedFlux => 24,
                };
                let dp = if sw == 2 { 8 } else { 1 };
                w.alu(flops * dp);
                w.sfu(4 * dp);
                for lane in 0..ws {
                    let ff = Cfd::face_flux(&own[lane], &nbv[lane], &normal[lane]);
                    for k in 0..NVAR {
                        acc[lane][k] += ff[k];
                    }
                }
            }
            for k in 0..NVAR {
                w.st_f32(flux, |lane, tid| {
                    (tid < n).then_some(((k * n + tid) * sw, acc[lane][k]))
                });
            }
        });
        PhaseControl::Done
    }
}

struct CfdTimeStepKernel {
    vars: BufF32,
    flux: BufF32,
    volumes: BufF32,
    n: usize,
    /// Element stride in f32 words (2 = double precision).
    stride: usize,
}

impl Kernel for CfdTimeStepKernel {
    fn name(&self) -> &str {
        "cfd-timestep"
    }

    fn shape(&self) -> GridShape {
        GridShape::cover(self.n, 128)
    }

    fn run_warp(&self, w: &mut WarpCtx<'_>) -> PhaseControl {
        let n = self.n;
        let sw = self.stride;
        let tids = w.tids();
        let in_range: Vec<bool> = tids.iter().map(|&t| t < n).collect();
        let me = (self.vars, self.flux, self.volumes);
        w.if_active(&in_range, |w| {
            let (vars, flux, volumes) = me;
            let ws = w.warp_size();
            let dp = if sw == 2 { 8 } else { 1 };
            let vol = w.ld_f32(volumes, |_, tid| (tid < n).then_some(tid * sw));
            w.sfu(dp); // DT / volume
            let factor: Vec<f32> = vol.iter().map(|&v| if v > 0.0 { DT / v } else { 0.0 }).collect();
            for k in 0..NVAR {
                let v = w.ld_f32(vars, |_, tid| (tid < n).then_some((k * n + tid) * sw));
                let fl = w.ld_f32(flux, |_, tid| (tid < n).then_some((k * n + tid) * sw));
                w.alu(2 * dp);
                let out: Vec<f32> = (0..ws).map(|l| v[l] - factor[l] * fl[l]).collect();
                w.st_f32(vars, |lane, tid| {
                    (tid < n).then_some(((k * n + tid) * sw, out[lane]))
                });
            }
        });
        PhaseControl::Done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refimpl::max_abs_diff;
    use simt::{GpuConfig, MemSpace};

    #[test]
    fn matches_reference() {
        let cfd = Cfd {
            n: 512,
            iterations: 2,
            variant: CfdVariant::RedundantFlux,
            precision: CfdPrecision::Single,
            seed: 4,
        };
        let want = cfd.reference();
        let mut gpu = Gpu::new(GpuConfig::gpgpusim_default());
        let (_, buf) = cfd.launch(&mut gpu);
        let got = gpu.mem().read_f32(buf);
        assert!(max_abs_diff(&want, &got) < 1e-4);
    }

    #[test]
    fn solution_stays_finite_and_positive_density() {
        let cfd = Cfd {
            n: 256,
            iterations: 4,
            variant: CfdVariant::RedundantFlux,
            precision: CfdPrecision::Single,
            seed: 1,
        };
        let vars = cfd.reference();
        assert!(vars.iter().all(|v| v.is_finite()));
        assert!(vars[..cfd.n].iter().all(|&d| d > 0.0), "density positive");
    }

    #[test]
    fn cfd_is_global_memory_heavy() {
        let cfd = Cfd::new(Scale::Tiny);
        let mut gpu = Gpu::new(GpuConfig::gpgpusim_default());
        let stats = cfd.run(&mut gpu);
        assert!(
            stats.mem_mix.fraction(MemSpace::Global) > 0.9,
            "global fraction {:.3}",
            stats.mem_mix.fraction(MemSpace::Global)
        );
        // The unstructured gathers should consume real bandwidth.
        assert!(stats.dram_bytes > 0);
    }

    #[test]
    fn double_precision_costs_bandwidth_and_time() {
        // The paper's performance-vs-precision trade-off: DP doubles the
        // DRAM traffic of the variable arrays and runs the flux math at
        // an eighth of the SP rate — while computing the same solution.
        let sp = Cfd {
            n: 1024,
            iterations: 2,
            variant: CfdVariant::RedundantFlux,
            precision: CfdPrecision::Single,
            seed: 3,
        };
        let dp = sp.clone().double_precision();
        let mut g1 = Gpu::new(GpuConfig::gpgpusim_default());
        let (s_sp, b_sp) = sp.launch(&mut g1);
        let mut g2 = Gpu::new(GpuConfig::gpgpusim_default());
        let (s_dp, b_dp) = dp.launch(&mut g2);
        assert!(
            s_dp.cycles > s_sp.cycles * 3 / 2,
            "DP {} should be much slower than SP {}",
            s_dp.cycles,
            s_sp.cycles
        );
        // Coalesced streams double their traffic; the scattered
        // neighbor gathers already fetched a full segment per lane at
        // SP, so the aggregate rises by ~1.3-1.4x rather than 2x.
        assert!(
            s_dp.dram_bytes > s_sp.dram_bytes * 5 / 4,
            "DP traffic {} vs SP {}",
            s_dp.dram_bytes,
            s_sp.dram_bytes
        );
        // Same solution: de-widen the DP buffer and compare.
        let sp_out = g1.mem().read_f32(b_sp);
        let dp_wide = g2.mem().read_f32(b_dp);
        let dp_out: Vec<f32> = dp_wide.iter().step_by(2).copied().collect();
        assert_eq!(sp_out, dp_out);
    }

    #[test]
    fn redundant_variant_does_more_arithmetic() {
        let mk = |variant| {
            let cfd = Cfd {
                n: 1024,
                iterations: 1,
                variant,
                precision: CfdPrecision::Single,
                seed: 2,
            };
            let mut gpu = Gpu::new(GpuConfig::gpgpusim_default());
            cfd.run(&mut gpu)
        };
        let red = mk(CfdVariant::RedundantFlux);
        let pre = mk(CfdVariant::PrecomputedFlux);
        assert!(red.thread_instructions > pre.thread_instructions);
    }
}

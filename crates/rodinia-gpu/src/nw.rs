//! Needleman-Wunsch: global DNA sequence alignment by dynamic programming
//! (Table I: 2048×2048 data points; Dynamic Programming dwarf,
//! Bioinformatics).
//!
//! The DP recurrence only exposes parallelism along anti-diagonals, which
//! the paper cites as the cause of NW's low IPC ("limited parallelism per
//! iteration ... due to the dependencies of processing data elements in a
//! diagonal strip manner"). Two incremental versions are provided:
//!
//! * [`NwVersion::Naive`]: one kernel launch per *element* diagonal, all
//!   operands in global memory;
//! * [`NwVersion::Tiled`]: the shipping Rodinia scheme — one launch per
//!   *tile* diagonal, each 16-thread block sweeping a 16×16 tile through
//!   a (16+1)² shared-memory buffer. The 17-wide rows make the diagonal
//!   accesses stride-16 across 16 banks, reproducing the "copious bank
//!   conflict" the paper's Plackett–Burman discussion calls out.

use datasets::{rng_for, Scale};
use rand::Rng;
use simt::{BufF32, Gpu, GridShape, Kernel, KernelStats, PhaseControl, WarpCtx};

const TILE: usize = 16;
/// Gap penalty.
const GAP: f32 = -2.0;

/// Which incremental implementation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NwVersion {
    /// Per-element diagonal kernel, global memory only.
    Naive,
    /// Shared-memory tiled diagonal kernel (the Rodinia implementation).
    Tiled,
}

/// The Needleman-Wunsch benchmark instance.
#[derive(Debug, Clone)]
pub struct Nw {
    /// Sequence length (the DP matrix is `(n+1)²`).
    pub n: usize,
    /// Implementation version.
    pub version: NwVersion,
    /// Input seed.
    pub seed: u64,
}

impl Nw {
    /// Standard (tiled) instance; `n` is tile-aligned.
    pub fn new(scale: Scale) -> Nw {
        Nw {
            n: scale.pick(64, 512, 2048),
            version: NwVersion::Tiled,
            seed: 33,
        }
    }

    /// Naive-version instance for the incremental-optimization study.
    pub fn naive(scale: Scale) -> Nw {
        Nw {
            version: NwVersion::Naive,
            ..Nw::new(scale)
        }
    }

    /// The pairwise similarity matrix (`n × n`) from two random DNA
    /// sequences: +3 match / −1 mismatch.
    pub fn similarity(&self) -> Vec<f32> {
        let mut rng = rng_for("nw", self.seed);
        let a: Vec<u8> = (0..self.n).map(|_| rng.random_range(0..4u8)).collect();
        let b: Vec<u8> = (0..self.n).map(|_| rng.random_range(0..4u8)).collect();
        let mut sim = vec![0.0f32; self.n * self.n];
        for i in 0..self.n {
            for j in 0..self.n {
                sim[i * self.n + j] = if a[i] == b[j] { 3.0 } else { -1.0 };
            }
        }
        sim
    }

    /// Sequential reference DP fill; returns the `(n+1)²` score matrix.
    pub fn reference(&self, sim: &[f32]) -> Vec<f32> {
        let n = self.n;
        let m = n + 1;
        let mut f = vec![0.0f32; m * m];
        for j in 0..m {
            f[j] = j as f32 * GAP;
        }
        for i in 0..m {
            f[i * m] = i as f32 * GAP;
        }
        for i in 1..m {
            for j in 1..m {
                let diag = f[(i - 1) * m + (j - 1)] + sim[(i - 1) * n + (j - 1)];
                let up = f[(i - 1) * m + j] + GAP;
                let left = f[i * m + (j - 1)] + GAP;
                f[i * m + j] = diag.max(up).max(left);
            }
        }
        f
    }

    /// Runs on `gpu`; returns aggregate stats and the score-matrix buffer.
    pub fn launch(&self, gpu: &mut Gpu) -> (KernelStats, BufF32) {
        assert!(self.n.is_multiple_of(TILE), "n must be tile-aligned");
        let n = self.n;
        let m = n + 1;
        let sim = self.similarity();
        let sim_buf = gpu.mem_mut().alloc_f32("nw-sim", &sim);
        // Initialize first row/column on the host (Rodinia does too).
        let mut f0 = vec![0.0f32; m * m];
        for j in 0..m {
            f0[j] = j as f32 * GAP;
        }
        for i in 0..m {
            f0[i * m] = i as f32 * GAP;
        }
        let f_buf = gpu.mem_mut().alloc_f32("nw-score", &f0);
        let mut stats: Option<KernelStats> = None;
        let push = |s: KernelStats, stats: &mut Option<KernelStats>| match stats {
            None => *stats = Some(s),
            Some(acc) => acc.merge(&s),
        };
        match self.version {
            NwVersion::Tiled => {
                let nb = n / TILE;
                for db in 0..(2 * nb - 1) {
                    let k = NwTiledKernel {
                        sim: sim_buf,
                        f: f_buf,
                        n,
                        diag: db,
                    };
                    push(gpu.launch(&k), &mut stats);
                }
            }
            NwVersion::Naive => {
                for d in 1..(2 * n) {
                    let k = NwNaiveKernel {
                        sim: sim_buf,
                        f: f_buf,
                        n,
                        diag: d,
                    };
                    push(gpu.launch(&k), &mut stats);
                }
            }
        }
        (stats.expect("kernels launched"), f_buf)
    }

    /// Convenience wrapper returning only statistics.
    pub fn run(&self, gpu: &mut Gpu) -> KernelStats {
        self.launch(gpu).0
    }
}

/// Cells on element-diagonal `d` of the DP interior: `(i, j)` with
/// `i + j == d + 1`, `1 <= i, j <= n`.
fn diag_cells(n: usize, d: usize) -> (usize, usize) {
    let i_min = if d + 1 > n { d + 1 - n } else { 1 };
    let i_max = d.min(n);
    (i_min, i_max - i_min + 1)
}

struct NwNaiveKernel {
    sim: BufF32,
    f: BufF32,
    n: usize,
    diag: usize,
}

impl Kernel for NwNaiveKernel {
    fn name(&self) -> &str {
        "nw-naive"
    }

    fn shape(&self) -> GridShape {
        let (_, count) = diag_cells(self.n, self.diag);
        GridShape::cover(count, 64)
    }

    fn run_warp(&self, w: &mut WarpCtx<'_>) -> PhaseControl {
        let (n, m, d) = (self.n, self.n + 1, self.diag);
        let (i_min, count) = diag_cells(n, d);
        let tids = w.tids();
        let cell = move |tid: usize| -> Option<(usize, usize)> {
            (tid < count).then(|| {
                let i = i_min + tid;
                (i, d + 1 - i)
            })
        };
        let in_range: Vec<bool> = tids.iter().map(|&t| cell(t).is_some()).collect();
        let (sim_buf, f_buf) = (self.sim, self.f);
        w.if_active(&in_range, |w| {
            let dg = w.ld_f32(f_buf, |_, t| cell(t).map(|(i, j)| (i - 1) * m + j - 1));
            let up = w.ld_f32(f_buf, |_, t| cell(t).map(|(i, j)| (i - 1) * m + j));
            let lf = w.ld_f32(f_buf, |_, t| cell(t).map(|(i, j)| i * m + j - 1));
            let sv = w.ld_f32(sim_buf, |_, t| cell(t).map(|(i, j)| (i - 1) * n + j - 1));
            w.alu(5);
            let out: Vec<f32> = (0..w.warp_size())
                .map(|l| (dg[l] + sv[l]).max(up[l] + GAP).max(lf[l] + GAP))
                .collect();
            w.st_f32(f_buf, |lane, t| cell(t).map(|(i, j)| (i * m + j, out[lane])));
        });
        PhaseControl::Done
    }
}

struct NwTiledKernel {
    sim: BufF32,
    f: BufF32,
    n: usize,
    /// Tile anti-diagonal index.
    diag: usize,
}

impl Kernel for NwTiledKernel {
    fn name(&self) -> &str {
        "nw-tiled"
    }

    fn shape(&self) -> GridShape {
        let nb = self.n / TILE;
        let bi_min = self.diag.saturating_sub(nb - 1);
        let bi_max = self.diag.min(nb - 1);
        GridShape::new(bi_max - bi_min + 1, TILE)
    }

    // temp[(TILE+1)²] for scores; ref tile of TILE².
    fn shared_f32_words(&self) -> usize {
        (TILE + 1) * (TILE + 1) + TILE * TILE
    }

    fn run_warp(&self, w: &mut WarpCtx<'_>) -> PhaseControl {
        let (n, m) = (self.n, self.n + 1);
        let nb = n / TILE;
        let bi = self.diag.saturating_sub(nb - 1) + w.block();
        let bj = self.diag - bi;
        // Tile origin in DP-matrix coordinates.
        let (r0, c0) = (1 + bi * TILE, 1 + bj * TILE);
        const T1: usize = TILE + 1;
        const REF0: usize = T1 * T1;
        let ltids = w.ltids();
        let tx: Vec<usize> = ltids.clone();
        let valid: Vec<bool> = tx.iter().map(|&x| x < TILE).collect();
        let (sim_buf, f_buf) = (self.sim, self.f);

        // Load the north halo row (including corner) and the west halo
        // column.
        let txv = tx.clone();
        w.if_active(&valid.clone(), |w| {
            let north = w.ld_f32(f_buf, |lane, _| Some((r0 - 1) * m + (c0 - 1) + txv[lane]));
            w.sh_st_f32(|lane, _| Some((txv[lane], north[lane])));
            let west = w.ld_f32(f_buf, |lane, _| Some((r0 + txv[lane]) * m + (c0 - 1)));
            w.sh_st_f32(|lane, _| Some(((txv[lane] + 1) * T1, west[lane])));
            // Corner and the last north element.
            let tail = w.ld_f32(f_buf, |lane, _| {
                (txv[lane] == 0).then_some((r0 - 1) * m + (c0 - 1) + TILE)
            });
            w.sh_st_f32(|lane, _| (txv[lane] == 0).then_some((TILE, tail[lane])));
            // Similarity tile, one coalesced row per step.
            for row in 0..TILE {
                let sv = w.ld_f32(sim_buf, |lane, _| {
                    Some((r0 - 1 + row) * n + (c0 - 1) + txv[lane])
                });
                w.sh_st_f32(|lane, _| Some((REF0 + row * TILE + txv[lane], sv[lane])));
            }
        });

        // Sweep the 31 internal anti-diagonals. temp rows are T1 = 17
        // wide, so lanes on a diagonal access stride-16 words: a full
        // 16-way bank conflict on a 16-bank scratchpad, as in Rodinia.
        for d in 0..(2 * TILE - 1) {
            let txv = tx.clone();
            let on_diag: Vec<bool> = tx
                .iter()
                .zip(&valid)
                .map(|(&x, &v)| v && x <= d && d - x < TILE)
                .collect();
            w.if_active(&on_diag, |w| {
                let cell = |lane: usize| -> (usize, usize) {
                    let x = txv[lane];
                    (d - x, x) // (ty, tx) within the tile
                };
                let dg = w.sh_ld_f32(|lane, _| {
                    let (ty, x) = cell(lane);
                    Some(ty * T1 + x)
                });
                let up = w.sh_ld_f32(|lane, _| {
                    let (ty, x) = cell(lane);
                    Some(ty * T1 + x + 1)
                });
                let lf = w.sh_ld_f32(|lane, _| {
                    let (ty, x) = cell(lane);
                    Some((ty + 1) * T1 + x)
                });
                let sv = w.sh_ld_f32(|lane, _| {
                    let (ty, x) = cell(lane);
                    Some(REF0 + ty * TILE + x)
                });
                w.alu(5);
                let out: Vec<f32> = (0..w.warp_size())
                    .map(|l| (dg[l] + sv[l]).max(up[l] + GAP).max(lf[l] + GAP))
                    .collect();
                w.sh_st_f32(|lane, _| {
                    let (ty, x) = cell(lane);
                    Some(((ty + 1) * T1 + x + 1, out[lane]))
                });
            });
        }

        // Write the tile back, one row per step (coalesced).
        let txv = tx;
        w.if_active(&valid, |w| {
            for row in 0..TILE {
                let vals = w.sh_ld_f32(|lane, _| Some((row + 1) * T1 + txv[lane] + 1));
                w.st_f32(f_buf, |lane, _| {
                    Some(((r0 + row) * m + c0 + txv[lane], vals[lane]))
                });
            }
        });
        PhaseControl::Done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refimpl::max_abs_diff;
    use simt::GpuConfig;

    fn run_version(version: NwVersion, n: usize) -> Vec<f32> {
        let nw = Nw {
            n,
            version,
            seed: 4,
        };
        let mut gpu = Gpu::new(GpuConfig::gpgpusim_default());
        let (_, f) = nw.launch(&mut gpu);
        gpu.mem().read_f32(f)
    }

    #[test]
    fn tiled_matches_reference() {
        let nw = Nw {
            n: 48,
            version: NwVersion::Tiled,
            seed: 4,
        };
        let want = nw.reference(&nw.similarity());
        assert_eq!(max_abs_diff(&want, &run_version(NwVersion::Tiled, 48)), 0.0);
    }

    #[test]
    fn naive_matches_reference() {
        let nw = Nw {
            n: 48,
            version: NwVersion::Naive,
            seed: 4,
        };
        let want = nw.reference(&nw.similarity());
        assert_eq!(max_abs_diff(&want, &run_version(NwVersion::Naive, 48)), 0.0);
    }

    #[test]
    fn diag_cells_enumeration() {
        // n = 4: diagonals d = 1..8 have 1, 2, 3, 4, 3, 2, 1 cells... and
        // d counts i+j-1.
        let n = 4;
        let counts: Vec<usize> = (1..2 * n).map(|d| diag_cells(n, d).1).collect();
        assert_eq!(counts, vec![1, 2, 3, 4, 3, 2, 1]);
        assert_eq!(diag_cells(n, 5), (2, 3)); // i in 2..=4
    }

    #[test]
    fn nw_has_low_occupancy_and_bank_conflicts() {
        let nw = Nw::new(Scale::Tiny);
        let mut gpu = Gpu::new(GpuConfig::gpgpusim_default());
        let stats = nw.run(&mut gpu);
        // 16-thread blocks: every warp instruction has <= 16 active lanes.
        let q = stats.occupancy.quartile_fractions();
        assert_eq!(q[2] + q[3], 0.0, "no warp may exceed 16 lanes: {q:?}");
        // IPC is low: limited parallelism per diagonal strip.
        assert!(stats.ipc() < 150.0, "NW IPC should be low, got {}", stats.ipc());
    }
}

//! Breadth-First Search
//! (Table I: 1,000,000 nodes; Graph Traversal dwarf).
//!
//! The Rodinia BFS is level-synchronous: every kernel launch assigns one
//! thread per graph node, and only frontier nodes do work. The paper
//! attributes BFS's low IPC to "the overhead of the GPU's global memory
//! accesses" and its low warp occupancy to the frontier test and the
//! variable-degree neighbor loops ("it must determine whether or not
//! neighboring nodes have been visited ... hence the high number of low
//! occupancy warps"). Both effects fall out of this implementation:
//! almost every memory operation is an uncoalesced global access, and
//! divergence grows as frontiers sparsify — making BFS one of the
//! biggest winners from extra DRAM channels (Figure 4) and from the
//! Fermi L1-bias configuration (Figure 5).

use datasets::{graph, Graph, Scale};
use simt::{BufU32, Gpu, GridShape, Kernel, KernelStats, PhaseControl, WarpCtx};

/// Sentinel cost for unreached nodes.
const UNREACHED: u32 = u32::MAX;

/// The BFS benchmark instance.
#[derive(Debug, Clone)]
pub struct Bfs {
    /// Number of graph nodes.
    pub n: usize,
    /// Maximum out-degree of the generated graph.
    pub max_degree: usize,
    /// Input seed.
    pub seed: u64,
}

impl Bfs {
    /// Standard instance for a scale (Table I: one million nodes).
    pub fn new(scale: Scale) -> Bfs {
        Bfs {
            n: scale.pick(2048, 65_536, 1_000_000),
            max_degree: 6,
            seed: 12,
        }
    }

    fn graph(&self) -> Graph {
        graph::random_graph(self.n, self.max_degree, self.seed)
    }

    /// Sequential reference: BFS levels from node 0.
    pub fn reference(&self) -> Vec<u32> {
        let g = self.graph();
        let mut cost = vec![UNREACHED; self.n];
        cost[0] = 0;
        let mut frontier = vec![0usize];
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &v in &frontier {
                for &u in g.neighbors(v) {
                    if cost[u as usize] == UNREACHED {
                        cost[u as usize] = cost[v] + 1;
                        next.push(u as usize);
                    }
                }
            }
            frontier = next;
        }
        cost
    }

    /// Runs the level-synchronous BFS on `gpu`.
    pub fn launch(&self, gpu: &mut Gpu) -> (KernelStats, Vec<u32>) {
        let g = self.graph();
        let n = self.n;
        let offsets = gpu.mem_mut().alloc_u32("bfs-offsets", &g.offsets);
        let edges = gpu.mem_mut().alloc_u32("bfs-edges", &g.edges);
        let mut frontier0 = vec![0u32; n];
        frontier0[0] = 1;
        let frontier = gpu.mem_mut().alloc_u32("bfs-frontier", &frontier0);
        let updating = gpu.mem_mut().alloc_u32_zeroed("bfs-updating", n);
        let mut visited0 = vec![0u32; n];
        visited0[0] = 1;
        let visited = gpu.mem_mut().alloc_u32("bfs-visited", &visited0);
        let mut cost0 = vec![UNREACHED; n];
        cost0[0] = 0;
        let cost = gpu.mem_mut().alloc_u32("bfs-cost", &cost0);
        let stop = gpu.mem_mut().alloc_u32_zeroed("bfs-stop", 1);

        let mut stats: Option<KernelStats> = None;
        loop {
            gpu.mem_mut().write_u32(stop, &[0]);
            let k1 = BfsExpand {
                offsets,
                edges,
                frontier,
                updating,
                visited,
                cost,
                n,
            };
            let s1 = gpu.launch(&k1);
            let k2 = BfsPromote {
                frontier,
                updating,
                visited,
                stop,
                n,
            };
            let s2 = gpu.launch(&k2);
            match &mut stats {
                None => {
                    let mut s = s1;
                    s.merge(&s2);
                    stats = Some(s);
                }
                Some(acc) => {
                    acc.merge(&s1);
                    acc.merge(&s2);
                }
            }
            if gpu.mem().read_u32(stop)[0] == 0 {
                break;
            }
        }
        let out = gpu.mem().read_u32(cost);
        (stats.expect("at least one level"), out)
    }

    /// Convenience wrapper returning only statistics.
    pub fn run(&self, gpu: &mut Gpu) -> KernelStats {
        self.launch(gpu).0
    }
}

/// Kernel 1: frontier nodes visit their neighbors and mark updates.
struct BfsExpand {
    offsets: BufU32,
    edges: BufU32,
    frontier: BufU32,
    updating: BufU32,
    visited: BufU32,
    cost: BufU32,
    n: usize,
}

impl Kernel for BfsExpand {
    fn name(&self) -> &str {
        "bfs-expand"
    }

    fn shape(&self) -> GridShape {
        GridShape::cover(self.n, 256)
    }

    fn run_warp(&self, w: &mut WarpCtx<'_>) -> PhaseControl {
        let n = self.n;
        let me = (
            self.offsets,
            self.edges,
            self.frontier,
            self.updating,
            self.visited,
            self.cost,
        );
        let fv = w.ld_u32(self.frontier, |_, tid| (tid < n).then_some(tid));
        let on_frontier: Vec<bool> = (0..w.warp_size())
            .zip(w.tids())
            .map(|(lane, tid)| tid < n && fv[lane] == 1)
            .collect();
        w.if_active(&on_frontier, |w| {
            let (offsets, edges, frontier, updating, visited, cost) = me;
            // Clear own frontier flag.
            w.st_u32(frontier, |_, tid| Some((tid, 0)));
            let start = w.ld_u32(offsets, |_, tid| Some(tid));
            let end = w.ld_u32(offsets, |_, tid| Some(tid + 1));
            let my_cost = w.ld_u32(cost, |_, tid| Some(tid));
            let ws = w.warp_size();
            let e = std::cell::RefCell::new(start.clone());
            // Variable-degree neighbor loop: lanes drop out as their
            // adjacency lists end (the paper's divergence source).
            w.loop_while(
                |w| {
                    w.alu(1);
                    let e = e.borrow();
                    (0..ws).map(|l| e[l] < end[l]).collect()
                },
                |w| {
                    let act = w.active();
                    let cursor = e.borrow().clone();
                    let nb =
                        w.ld_u32(edges, |lane, _| act[lane].then_some(cursor[lane] as usize));
                    let seen = w.ld_u32(visited, |lane, _| act[lane].then_some(nb[lane] as usize));
                    let unseen: Vec<bool> = (0..ws).map(|l| act[l] && seen[l] == 0).collect();
                    let nb2 = nb.clone();
                    let mc = my_cost.clone();
                    w.if_active(&unseen, |w| {
                        w.st_u32(cost, |lane, _| Some((nb2[lane] as usize, mc[lane] + 1)));
                        w.st_u32(updating, |lane, _| Some((nb2[lane] as usize, 1)));
                    });
                    w.alu(1);
                    let mut e = e.borrow_mut();
                    for l in 0..ws {
                        if act[l] {
                            e[l] += 1;
                        }
                    }
                },
            );
        });
        PhaseControl::Done
    }
}

/// Kernel 2: promote updated nodes into the next frontier.
struct BfsPromote {
    frontier: BufU32,
    updating: BufU32,
    visited: BufU32,
    stop: BufU32,
    n: usize,
}

impl Kernel for BfsPromote {
    fn name(&self) -> &str {
        "bfs-promote"
    }

    fn shape(&self) -> GridShape {
        GridShape::cover(self.n, 256)
    }

    fn run_warp(&self, w: &mut WarpCtx<'_>) -> PhaseControl {
        let n = self.n;
        let uv = w.ld_u32(self.updating, |_, tid| (tid < n).then_some(tid));
        let pending: Vec<bool> = (0..w.warp_size())
            .zip(w.tids())
            .map(|(lane, tid)| tid < n && uv[lane] == 1)
            .collect();
        let me = (self.frontier, self.updating, self.visited, self.stop);
        w.if_active(&pending, |w| {
            let (frontier, updating, visited, stop) = me;
            w.st_u32(frontier, |_, tid| Some((tid, 1)));
            w.st_u32(visited, |_, tid| Some((tid, 1)));
            w.st_u32(updating, |_, tid| Some((tid, 0)));
            w.st_u32(stop, |_, _| Some((0, 1)));
        });
        PhaseControl::Done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt::{GpuConfig, MemSpace};

    #[test]
    fn matches_reference() {
        let bfs = Bfs {
            n: 1500,
            max_degree: 5,
            seed: 3,
        };
        let want = bfs.reference();
        let mut gpu = Gpu::new(GpuConfig::gpgpusim_default());
        let (_, got) = bfs.launch(&mut gpu);
        assert_eq!(want, got);
    }

    #[test]
    fn every_node_is_reached() {
        let bfs = Bfs::new(Scale::Tiny);
        let cost = bfs.reference();
        assert!(cost.iter().all(|&c| c != UNREACHED));
        assert_eq!(cost[0], 0);
    }

    #[test]
    fn bfs_is_global_memory_bound_and_divergent() {
        let bfs = Bfs::new(Scale::Tiny);
        let mut gpu = Gpu::new(GpuConfig::gpgpusim_default());
        let stats = bfs.run(&mut gpu);
        // All memory traffic is global (Figure 2's BFS bar).
        assert!(
            stats.mem_mix.fraction(MemSpace::Global) > 0.95,
            "global fraction {:.3}",
            stats.mem_mix.fraction(MemSpace::Global)
        );
        // Sparse frontiers: a large share of low-occupancy warps
        // (Figure 3's BFS bar).
        let q = stats.occupancy.quartile_fractions();
        assert!(q[0] > 0.3, "low-occupancy fraction {q:?}");
        // And low IPC overall (Figure 1).
        assert!(stats.ipc() < 200.0, "BFS IPC {}", stats.ipc());
    }
}

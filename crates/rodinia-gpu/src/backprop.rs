//! Back Propagation: one training step of a fully connected
//! input → hidden → output network
//! (Table I: 65536 input nodes; Unstructured Grid dwarf, Pattern
//! Recognition).
//!
//! The CUDA implementation the paper characterizes has two kernels:
//!
//! * `layerforward`: each 16×16 thread block multiplies a 16-input chunk
//!   against all 16 hidden units in shared memory, then reduces over the
//!   inputs with a binary tree. The paper calls this reduction out
//!   explicitly in its Figure 3 discussion: "assuming a 16-element sum
//!   reduction, the number of active threads during the four iterations
//!   are 8, 4, 2 and 1" — the reduction phases here reproduce exactly
//!   that occupancy signature (and the column-strided shared accesses
//!   reproduce its bank conflicts).
//! * `adjust_weights`: an embarrassingly parallel coalesced update of the
//!   input→hidden weight matrix.

use datasets::{matrix, Scale};
use simt::{BufF32, Gpu, GridShape, Kernel, KernelStats, PhaseControl, WarpCtx};

/// Hidden-layer width (Rodinia uses 16).
const HIDDEN: usize = 16;
/// Inputs per thread block.
const CHUNK: usize = 16;
/// Learning rate.
const ETA: f32 = 0.3;
/// Training target for the single output unit.
const TARGET: f32 = 0.8;

/// Logistic activation.
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Binary-tree sum of 16 values in the exact order the GPU reduction
/// produces (shared by kernel and reference so results match
/// bit-for-bit).
fn tree16(vals: &[f32; 16]) -> f32 {
    let mut v = *vals;
    let mut stride = 1;
    while stride < 16 {
        let mut i = 0;
        while i < 16 {
            v[i] += v[i + stride];
            i += 2 * stride;
        }
        stride *= 2;
    }
    v[0]
}

/// The Back Propagation benchmark instance.
#[derive(Debug, Clone)]
pub struct Backprop {
    /// Number of input units.
    pub n: usize,
    /// Input seed.
    pub seed: u64,
}

/// Everything a training step computes, for validation.
#[derive(Debug, Clone)]
pub struct BackpropResult {
    /// Hidden activations.
    pub hidden: Vec<f32>,
    /// Output activation.
    pub output: f32,
    /// Updated input→hidden weights (`n × HIDDEN`, hidden-major rows).
    pub w1: Vec<f32>,
}

impl Backprop {
    /// Standard instance for a scale (Table I: 65536 input nodes).
    pub fn new(scale: Scale) -> Backprop {
        Backprop {
            n: scale.pick(512, 16_384, 65_536),
            seed: 21,
        }
    }

    fn inputs(&self) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let scale = 1.0 / (self.n as f32).sqrt();
        let input = matrix::random_vector(self.n, self.seed);
        let w1: Vec<f32> = matrix::random_vector(self.n * HIDDEN, self.seed + 1)
            .into_iter()
            .map(|x| (x - 0.5) * scale)
            .collect();
        let w2: Vec<f32> = matrix::random_vector(HIDDEN, self.seed + 2)
            .into_iter()
            .map(|x| x - 0.5)
            .collect();
        (input, w1, w2)
    }

    /// Host-side part of the training step, shared by GPU run and
    /// reference: combines per-block partial sums into activations,
    /// errors, and the hidden deltas the weight-update kernel consumes.
    fn finish_forward(&self, partials: &[f32], w2: &[f32]) -> (Vec<f32>, f32, Vec<f32>) {
        let blocks = self.n / CHUNK;
        let mut hidden = vec![0.0f32; HIDDEN];
        for (j, h) in hidden.iter_mut().enumerate() {
            let mut sum = 0.0f32;
            for b in 0..blocks {
                sum += partials[b * HIDDEN + j];
            }
            *h = sigmoid(sum);
        }
        let out_sum: f32 = (0..HIDDEN).map(|j| hidden[j] * w2[j]).sum();
        let output = sigmoid(out_sum);
        let delta_out = (TARGET - output) * output * (1.0 - output);
        let delta_hidden: Vec<f32> = (0..HIDDEN)
            .map(|j| hidden[j] * (1.0 - hidden[j]) * delta_out * w2[j])
            .collect();
        (hidden, output, delta_hidden)
    }

    /// Sequential reference implementation of the full training step.
    pub fn reference(&self) -> BackpropResult {
        let (input, mut w1, w2) = self.inputs();
        let blocks = self.n / CHUNK;
        let mut partials = vec![0.0f32; blocks * HIDDEN];
        for b in 0..blocks {
            for j in 0..HIDDEN {
                let mut chunk = [0.0f32; 16];
                for (i, c) in chunk.iter_mut().enumerate() {
                    let row = b * CHUNK + i;
                    *c = input[row] * w1[row * HIDDEN + j];
                }
                partials[b * HIDDEN + j] = tree16(&chunk);
            }
        }
        let (hidden, output, delta_hidden) = self.finish_forward(&partials, &w2);
        for i in 0..self.n {
            for j in 0..HIDDEN {
                w1[i * HIDDEN + j] += ETA * delta_hidden[j] * input[i];
            }
        }
        BackpropResult { hidden, output, w1 }
    }

    /// Runs the two-kernel training step on `gpu`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a multiple of 16.
    pub fn launch(&self, gpu: &mut Gpu) -> (KernelStats, BackpropResult) {
        assert!(self.n.is_multiple_of(CHUNK), "input count must be a multiple of 16");
        let (input, w1, w2) = self.inputs();
        let blocks = self.n / CHUNK;
        let input_buf = gpu.mem_mut().alloc_f32("bp-input", &input);
        let w1_buf = gpu.mem_mut().alloc_f32("bp-w1", &w1);
        let partial_buf = gpu.mem_mut().alloc_f32_zeroed("bp-partial", blocks * HIDDEN);
        let fwd = LayerForward {
            input: input_buf,
            w1: w1_buf,
            partial: partial_buf,
            n: self.n,
        };
        let mut stats = gpu.launch(&fwd);
        let partials = gpu.mem_mut().copy_out_f32(partial_buf);
        let (hidden, output, delta_hidden) = self.finish_forward(&partials, &w2);
        let delta_buf = gpu.mem_mut().alloc_f32("bp-delta", &delta_hidden);
        let adj = AdjustWeights {
            input: input_buf,
            w1: w1_buf,
            delta: delta_buf,
            n: self.n,
        };
        stats.merge(&gpu.launch(&adj));
        let w1_out = gpu.mem_mut().copy_out_f32(w1_buf);
        (
            stats,
            BackpropResult {
                hidden,
                output,
                w1: w1_out,
            },
        )
    }

    /// Convenience wrapper returning only statistics.
    pub fn run(&self, gpu: &mut Gpu) -> KernelStats {
        self.launch(gpu).0
    }
}

/// `layerforward`: shared-memory chunk multiply + tree reduction.
struct LayerForward {
    input: BufF32,
    w1: BufF32,
    partial: BufF32,
    n: usize,
}

impl Kernel for LayerForward {
    fn name(&self) -> &str {
        "bp-layerforward"
    }

    fn shape(&self) -> GridShape {
        GridShape::new(self.n / CHUNK, CHUNK * HIDDEN)
    }

    // 16 input values + a 16x16 product matrix (unpadded, as in Rodinia:
    // the column-strided reduction accesses conflict).
    fn shared_f32_words(&self) -> usize {
        CHUNK + CHUNK * HIDDEN
    }

    fn run_warp(&self, w: &mut WarpCtx<'_>) -> PhaseControl {
        let ltids = w.ltids();
        let block = w.block();
        let ty: Vec<usize> = ltids.iter().map(|&l| l / HIDDEN).collect();
        let tx: Vec<usize> = ltids.iter().map(|&l| l % HIDDEN).collect();
        let n = self.n;
        match w.phase() {
            0 => {
                // Lane 0 of each row loads the input value (tx == 0):
                // 2 active lanes per 32-lane warp, as in the CUDA code.
                let first: Vec<bool> = tx.iter().map(|&x| x == 0).collect();
                let input = self.input;
                let tyv = ty.clone();
                w.if_active(&first, |w| {
                    let vals = w.ld_f32(input, |lane, _| Some(block * CHUNK + tyv[lane]));
                    w.sh_st_f32(|lane, _| Some((tyv[lane], vals[lane])));
                });
                PhaseControl::Continue
            }
            1 => {
                // product[ty][tx] = input[ty] * w1[row][tx]
                let iv = w.sh_ld_f32(|lane, _| Some(ty[lane]));
                let wv = w.ld_f32(self.w1, |lane, _| {
                    Some((block * CHUNK + ty[lane]) * HIDDEN + tx[lane])
                });
                w.alu(2);
                w.sh_st_f32(|lane, _| {
                    Some((CHUNK + ty[lane] * HIDDEN + tx[lane], iv[lane] * wv[lane]))
                });
                PhaseControl::Continue
            }
            p @ 2..=5 => {
                // Tree-reduction step: stride = 2^(p-2); active threads
                // have ty % (2*stride) == 0 (8, 4, 2, 1 per 16 rows).
                let stride = 1usize << (p - 2);
                let active: Vec<bool> = ty.iter().map(|&y| y % (2 * stride) == 0).collect();
                let tyv = ty.clone();
                let txv = tx.clone();
                w.if_active(&active, |w| {
                    let a = w.sh_ld_f32(|lane, _| Some(CHUNK + tyv[lane] * HIDDEN + txv[lane]));
                    let b = w.sh_ld_f32(|lane, _| {
                        Some(CHUNK + (tyv[lane] + stride) * HIDDEN + txv[lane])
                    });
                    w.alu(1);
                    w.sh_st_f32(|lane, _| {
                        Some((CHUNK + tyv[lane] * HIDDEN + txv[lane], a[lane] + b[lane]))
                    });
                });
                PhaseControl::Continue
            }
            _ => {
                // Row 0 writes the per-block partial sums.
                let active: Vec<bool> = ty.iter().map(|&y| y == 0).collect();
                let (partial, txv) = (self.partial, tx.clone());
                let blocks = n / CHUNK;
                w.if_active(&active, |w| {
                    let sums = w.sh_ld_f32(|lane, _| Some(CHUNK + txv[lane]));
                    w.st_f32(partial, |lane, _| {
                        let idx = block * HIDDEN + txv[lane];
                        (block < blocks).then_some((idx, sums[lane]))
                    });
                });
                PhaseControl::Done
            }
        }
    }
}

/// `adjust_weights`: coalesced streaming update of the weight matrix.
struct AdjustWeights {
    input: BufF32,
    w1: BufF32,
    delta: BufF32,
    n: usize,
}

impl Kernel for AdjustWeights {
    fn name(&self) -> &str {
        "bp-adjust-weights"
    }

    fn shape(&self) -> GridShape {
        GridShape::cover(self.n * HIDDEN, 256)
    }

    fn run_warp(&self, w: &mut WarpCtx<'_>) -> PhaseControl {
        let total = self.n * HIDDEN;
        let tids = w.tids();
        let in_range: Vec<bool> = tids.iter().map(|&t| t < total).collect();
        let me = (self.input, self.w1, self.delta);
        w.if_active(&in_range, |w| {
            let (input, w1, delta) = me;
            let wv = w.ld_f32(w1, |_, tid| (tid < total).then_some(tid));
            let iv = w.ld_f32(input, |_, tid| (tid < total).then_some(tid / HIDDEN));
            let dv = w.ld_f32(delta, |_, tid| (tid < total).then_some(tid % HIDDEN));
            w.alu(3);
            let out: Vec<f32> = (0..w.warp_size())
                .map(|l| wv[l] + ETA * dv[l] * iv[l])
                .collect();
            w.st_f32(w1, |lane, tid| (tid < total).then_some((tid, out[lane])));
        });
        PhaseControl::Done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refimpl::max_abs_diff;
    use simt::{GpuConfig, MemSpace};

    #[test]
    fn matches_reference_exactly() {
        let bp = Backprop { n: 256, seed: 3 };
        let want = bp.reference();
        let mut gpu = Gpu::new(GpuConfig::gpgpusim_default());
        let (_, got) = bp.launch(&mut gpu);
        assert_eq!(want.output, got.output, "identical float order end-to-end");
        assert!(max_abs_diff(&want.hidden, &got.hidden) == 0.0);
        assert!(max_abs_diff(&want.w1, &got.w1) < 1e-6);
    }

    #[test]
    fn reduction_produces_low_occupancy_tail() {
        let bp = Backprop::new(Scale::Tiny);
        let mut gpu = Gpu::new(GpuConfig::gpgpusim_default());
        let stats = bp.run(&mut gpu);
        let q = stats.occupancy.quartile_fractions();
        // The 8/4/2/1-lane reduction steps plus the tx==0 loads put a
        // sizable share of warp instructions in the half-empty bins.
        assert!(q[0] + q[1] > 0.25, "low-occupancy fractions {q:?}");
        assert!(q[0] > 0.03, "1-8 lane fraction {q:?}");
        // Shared memory should dominate the mix (Figure 2's BP bar).
        assert!(
            stats.mem_mix.fraction(MemSpace::Shared) > 0.4,
            "shared fraction {:.3}",
            stats.mem_mix.fraction(MemSpace::Shared)
        );
    }

    #[test]
    fn training_moves_output_toward_target() {
        // After one step with positive error, re-running forward with the
        // new weights should move the output toward the target.
        let bp = Backprop { n: 256, seed: 9 };
        let r = bp.reference();
        let (input, _, w2) = bp.inputs();
        let forward = |w1: &[f32]| -> f32 {
            let mut hidden = [0.0f32; HIDDEN];
            for (j, h) in hidden.iter_mut().enumerate() {
                let s: f32 = (0..bp.n).map(|i| input[i] * w1[i * HIDDEN + j]).sum();
                *h = sigmoid(s);
            }
            sigmoid((0..HIDDEN).map(|j| hidden[j] * w2[j]).sum())
        };
        let after = forward(&r.w1);
        assert!(
            (TARGET - after).abs() <= (TARGET - r.output).abs() + 1e-6,
            "training step must not move away from the target"
        );
    }

    #[test]
    fn tree16_matches_plain_sum() {
        let vals: [f32; 16] = std::array::from_fn(|i| (i as f32) * 0.25 + 1.0);
        let plain: f32 = vals.iter().sum();
        assert!((tree16(&vals) - plain).abs() < 1e-4);
    }
}

//! SRAD: Speckle Reducing Anisotropic Diffusion
//! (Table I: 512×512 data points; Structured Grid dwarf, Image
//! Processing).
//!
//! The benchmark ships in two incrementally optimized versions — the
//! pair the paper's Table III characterizes:
//!
//! * **V1** keeps the image and the diffusion coefficients in global
//!   memory (shared fraction ≈ 10%),
//! * **V2** stages the image and coefficient tiles (plus ghost zones) in
//!   shared memory, converting four of the five neighbor loads per pixel
//!   into shared-memory reads (shared fraction ≈ 29%, higher IPC).
//!
//! Both versions run the same two-kernel pipeline per iteration
//! (coefficient kernel, then update kernel) and produce bit-identical
//! images.

use datasets::{grid, Scale};
use simt::{BufF32, Gpu, GridShape, Kernel, KernelStats, PhaseControl, WarpCtx};

const TILE: usize = 16;
const HALO: usize = TILE + 2;
const LAMBDA: f32 = 0.5;

/// Which incrementally optimized version to run (Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SradVersion {
    /// Global-memory version.
    V1,
    /// Shared-memory tiled version.
    V2,
}

/// The SRAD benchmark instance.
#[derive(Debug, Clone)]
pub struct Srad {
    /// Image edge length.
    pub n: usize,
    /// Diffusion iterations.
    pub iterations: usize,
    /// Version to run.
    pub version: SradVersion,
    /// Input seed.
    pub seed: u64,
}

impl Srad {
    /// The optimized (V2) instance the suite-level experiments use.
    pub fn new(scale: Scale) -> Srad {
        Srad::v2(scale)
    }

    /// Version-1 instance.
    pub fn v1(scale: Scale) -> Srad {
        Srad {
            n: scale.pick(48, 256, 512),
            iterations: scale.pick(2, 2, 4),
            version: SradVersion::V1,
            seed: 11,
        }
    }

    /// Version-2 instance.
    pub fn v2(scale: Scale) -> Srad {
        Srad {
            version: SradVersion::V2,
            ..Srad::v1(scale)
        }
    }

    /// Sequential reference implementation.
    pub fn reference(&self, image: &[f32]) -> Vec<f32> {
        let n = self.n;
        let mut j = image.to_vec();
        let mut c = vec![0.0f32; n * n];
        let mut dn = vec![0.0f32; n * n];
        let mut ds = vec![0.0f32; n * n];
        let mut dw = vec![0.0f32; n * n];
        let mut de = vec![0.0f32; n * n];
        for _ in 0..self.iterations {
            let q0 = q0sqr(&j);
            for r in 0..n {
                for cc in 0..n {
                    let i = r * n + cc;
                    let north = if r == 0 { i } else { i - n };
                    let south = if r == n - 1 { i } else { i + n };
                    let west = if cc == 0 { i } else { i - 1 };
                    let east = if cc == n - 1 { i } else { i + 1 };
                    let (cv, d4) = coeff(j[i], j[north], j[south], j[west], j[east], q0);
                    c[i] = cv;
                    dn[i] = d4[0];
                    ds[i] = d4[1];
                    dw[i] = d4[2];
                    de[i] = d4[3];
                }
            }
            let mut out = j.clone();
            for r in 0..n {
                for cc in 0..n {
                    let i = r * n + cc;
                    let south = if r == n - 1 { i } else { i + n };
                    let east = if cc == n - 1 { i } else { i + 1 };
                    out[i] = j[i]
                        + 0.25 * LAMBDA * (c[i] * dn[i] + c[south] * ds[i] + c[i] * dw[i]
                            + c[east] * de[i]);
                }
            }
            j = out;
        }
        j
    }

    /// Runs on `gpu`; returns aggregate stats and the output buffer.
    pub fn launch(&self, gpu: &mut Gpu) -> (KernelStats, BufF32) {
        let n = self.n;
        let image = grid::speckle_image(n, n, self.seed);
        let j = gpu.mem_mut().alloc_f32("srad-j", &image);
        let c = gpu.mem_mut().alloc_f32_zeroed("srad-c", n * n);
        let dn = gpu.mem_mut().alloc_f32_zeroed("srad-dn", n * n);
        let ds = gpu.mem_mut().alloc_f32_zeroed("srad-ds", n * n);
        let dw = gpu.mem_mut().alloc_f32_zeroed("srad-dw", n * n);
        let de = gpu.mem_mut().alloc_f32_zeroed("srad-de", n * n);
        let mut stats: Option<KernelStats> = None;
        for _ in 0..self.iterations {
            let q0 = q0sqr(&gpu.mem_mut().copy_out_f32(j));
            let k1 = SradKernel {
                stage: Stage::Coeff,
                version: self.version,
                j,
                c,
                dn,
                ds,
                dw,
                de,
                n,
                q0,
            };
            let s1 = gpu.launch(&k1);
            let k2 = SradKernel {
                stage: Stage::Update,
                ..k1
            };
            let s2 = gpu.launch(&k2);
            match &mut stats {
                None => {
                    let mut s = s1;
                    s.merge(&s2);
                    stats = Some(s);
                }
                Some(acc) => {
                    acc.merge(&s1);
                    acc.merge(&s2);
                }
            }
        }
        (stats.expect("at least one iteration"), j)
    }

    /// Convenience wrapper returning only statistics.
    pub fn run(&self, gpu: &mut Gpu) -> KernelStats {
        self.launch(gpu).0
    }
}

/// Speckle statistic q0² over the whole field (the host-side reduction).
fn q0sqr(j: &[f32]) -> f32 {
    let nn = j.len() as f32;
    let sum: f32 = j.iter().sum();
    let sum2: f32 = j.iter().map(|x| x * x).sum();
    let mean = sum / nn;
    let var = sum2 / nn - mean * mean;
    var / (mean * mean)
}

/// The per-pixel diffusion coefficient and the four directional
/// derivatives; shared between kernels and reference.
#[inline]
fn coeff(jc: f32, jn: f32, js: f32, jw: f32, je: f32, q0: f32) -> (f32, [f32; 4]) {
    let dn = jn - jc;
    let ds = js - jc;
    let dw = jw - jc;
    let de = je - jc;
    let g2 = (dn * dn + ds * ds + dw * dw + de * de) / (jc * jc);
    let l = (dn + ds + dw + de) / jc;
    let num = 0.5 * g2 - (l * l) / 16.0;
    let den = 1.0 + 0.25 * l;
    let qsqr = num / (den * den);
    let d = (qsqr - q0) / (q0 * (1.0 + q0));
    let c = (1.0 / (1.0 + d)).clamp(0.0, 1.0);
    (c, [dn, ds, dw, de])
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    Coeff,
    Update,
}

#[derive(Clone, Copy)]
struct SradKernel {
    stage: Stage,
    version: SradVersion,
    j: BufF32,
    c: BufF32,
    dn: BufF32,
    ds: BufF32,
    dw: BufF32,
    de: BufF32,
    n: usize,
    q0: f32,
}

impl SradKernel {
    /// Which field the kernel stages in shared memory in V2 (the image
    /// for the coefficient kernel, the coefficients for the update
    /// kernel).
    fn tiled_input(&self) -> BufF32 {
        match self.stage {
            Stage::Coeff => self.j,
            Stage::Update => self.c,
        }
    }
}

impl Kernel for SradKernel {
    fn name(&self) -> &str {
        match (self.stage, self.version) {
            (Stage::Coeff, SradVersion::V1) => "srad1-v1",
            (Stage::Coeff, SradVersion::V2) => "srad1-v2",
            (Stage::Update, SradVersion::V1) => "srad2-v1",
            (Stage::Update, SradVersion::V2) => "srad2-v2",
        }
    }

    fn shape(&self) -> GridShape {
        let tiles = self.n.div_ceil(TILE);
        GridShape::new(tiles * tiles, TILE * TILE)
    }

    fn shared_f32_words(&self) -> usize {
        match self.version {
            SradVersion::V1 => 0,
            // The halo input tile plus five result/staging tiles
            // (coefficient + four directional derivatives), as in
            // Rodinia's srad_cuda kernels. This ~6.3 kB footprint is
            // what makes SRAD prefer the Fermi shared-bias
            // configuration: at 16 kB of shared memory only two CTAs
            // fit per SM instead of four.
            SradVersion::V2 => HALO * HALO + 5 * TILE * TILE,
        }
    }

    fn run_warp(&self, w: &mut WarpCtx<'_>) -> PhaseControl {
        let n = self.n;
        let tiles_x = n.div_ceil(TILE);
        let (tile_r, tile_c) = (w.block() / tiles_x, w.block() % tiles_x);
        let (row0, col0) = (tile_r * TILE, tile_c * TILE);
        let ltids = w.ltids();
        let pix = |lane: usize| -> Option<(usize, usize)> {
            let l = ltids[lane];
            let (r, c) = (row0 + l / TILE, col0 + l % TILE);
            (r < n && c < n).then_some((r, c))
        };
        // Clamped-neighbor index of pixel (r, c).
        let nbr = move |r: usize, c: usize, dr: isize, dc: isize| -> usize {
            let rr = (r as isize + dr).clamp(0, n as isize - 1) as usize;
            let cc = (c as isize + dc).clamp(0, n as isize - 1) as usize;
            rr * n + cc
        };

        if self.version == SradVersion::V2 && w.phase() == 0 {
            // Stage the tile + ghost zone in shared memory.
            let global_of = move |h: usize| -> usize {
                let hr = h / HALO;
                let hc = h % HALO;
                let r = (row0 + hr).saturating_sub(1).min(n - 1);
                let c = (col0 + hc).saturating_sub(1).min(n - 1);
                r * n + c
            };
            let input = self.tiled_input();
            w.param(2);
            for round in 0..2 {
                let base = round * TILE * TILE;
                let vals = w.ld_f32(input, |lane, _| {
                    let h = base + ltids[lane];
                    (h < HALO * HALO).then(|| global_of(h))
                });
                w.sh_st_f32(|lane, _| {
                    let h = base + ltids[lane];
                    (h < HALO * HALO).then_some((h, vals[lane]))
                });
            }
            return PhaseControl::Continue;
        }

        // Compute phase (phase 0 for V1, phase 1 for V2).
        let from_shared = self.version == SradVersion::V2;
        let sh_idx = |lane: usize, dr: isize, dc: isize| -> usize {
            let l = ltids[lane];
            ((l / TILE) as isize + 1 + dr) as usize * HALO + ((l % TILE) as isize + 1 + dc) as usize
        };
        let in_grid: Vec<bool> = (0..w.warp_size()).map(|l| pix(l).is_some()).collect();
        // Per-lane staging slot in the shared result/operand tiles: the
        // thread's block-local id. Indexing by warp lane instead would
        // make every warp of the CTA fight over slots 0..31.
        let lt: Vec<usize> = (0..w.warp_size())
            .map(|l| ltids[l] % (TILE * TILE))
            .collect();
        match self.stage {
            Stage::Coeff => {
                let me = *self;
                let lt = lt.clone();
                w.if_active(&in_grid, move |w| {
                    let (jc, jn, js, jw_, je);
                    if from_shared {
                        jc = w.sh_ld_f32(|lane, _| Some(sh_idx(lane, 0, 0)));
                        jn = w.sh_ld_f32(|lane, _| Some(sh_idx(lane, -1, 0)));
                        js = w.sh_ld_f32(|lane, _| Some(sh_idx(lane, 1, 0)));
                        jw_ = w.sh_ld_f32(|lane, _| Some(sh_idx(lane, 0, -1)));
                        je = w.sh_ld_f32(|lane, _| Some(sh_idx(lane, 0, 1)));
                    } else {
                        jc = w.ld_f32(me.j, |lane, _| pix(lane).map(|(r, c)| r * n + c));
                        jn = w.ld_f32(me.j, |lane, _| pix(lane).map(|(r, c)| nbr(r, c, -1, 0)));
                        js = w.ld_f32(me.j, |lane, _| pix(lane).map(|(r, c)| nbr(r, c, 1, 0)));
                        jw_ = w.ld_f32(me.j, |lane, _| pix(lane).map(|(r, c)| nbr(r, c, 0, -1)));
                        je = w.ld_f32(me.j, |lane, _| pix(lane).map(|(r, c)| nbr(r, c, 0, 1)));
                    }
                    w.alu(42); // gradients, statistics, boundary logic
                    w.sfu(3); // the three divides
                    let results: Vec<(f32, [f32; 4])> = (0..w.warp_size())
                        .map(|l| coeff(jc[l], jn[l], js[l], jw_[l], je[l], me.q0))
                        .collect();
                    if from_shared {
                        // Stage results in the shared result tiles
                        // before the coalesced global write, as the
                        // CUDA version's temp_result arrays do.
                        for d in 0..5 {
                            let base = HALO * HALO + d * TILE * TILE;
                            let res = results.clone();
                            w.sh_st_f32(|lane, _| {
                                pix(lane).map(|_| {
                                    let v = if d == 0 {
                                        res[lane].0
                                    } else {
                                        res[lane].1[d - 1]
                                    };
                                    (base + lt[lane], v)
                                })
                            });
                        }
                    }
                    w.st_f32(me.c, |lane, _| {
                        pix(lane).map(|(r, c)| (r * n + c, results[lane].0))
                    });
                    for (buf, d) in [(me.dn, 0), (me.ds, 1), (me.dw, 2), (me.de, 3)] {
                        w.st_f32(buf, |lane, _| {
                            pix(lane).map(|(r, c)| (r * n + c, results[lane].1[d]))
                        });
                    }
                });
            }
            Stage::Update => {
                let me = *self;
                let lt = lt.clone();
                w.if_active(&in_grid, move |w| {
                    let (cc, cs, ce);
                    if from_shared {
                        cc = w.sh_ld_f32(|lane, _| Some(sh_idx(lane, 0, 0)));
                        cs = w.sh_ld_f32(|lane, _| Some(sh_idx(lane, 1, 0)));
                        ce = w.sh_ld_f32(|lane, _| Some(sh_idx(lane, 0, 1)));
                    } else {
                        cc = w.ld_f32(me.c, |lane, _| pix(lane).map(|(r, c)| r * n + c));
                        cs = w.ld_f32(me.c, |lane, _| pix(lane).map(|(r, c)| nbr(r, c, 1, 0)));
                        ce = w.ld_f32(me.c, |lane, _| pix(lane).map(|(r, c)| nbr(r, c, 0, 1)));
                    }
                    let jc = w.ld_f32(me.j, |lane, _| pix(lane).map(|(r, c)| r * n + c));
                    let dn = w.ld_f32(me.dn, |lane, _| pix(lane).map(|(r, c)| r * n + c));
                    let ds = w.ld_f32(me.ds, |lane, _| pix(lane).map(|(r, c)| r * n + c));
                    let dw_ = w.ld_f32(me.dw, |lane, _| pix(lane).map(|(r, c)| r * n + c));
                    let de = w.ld_f32(me.de, |lane, _| pix(lane).map(|(r, c)| r * n + c));
                    if from_shared {
                        // Stage the operand tiles in shared memory, as
                        // srad_cuda_2's d_cN/S/W/E arrays do.
                        for (d, vals) in [&jc, &dn, &ds, &dw_, &de].iter().enumerate() {
                            let base = HALO * HALO + d * TILE * TILE;
                            let v = (*vals).clone();
                            w.sh_st_f32(|lane, _| {
                                pix(lane).map(|_| (base + lt[lane], v[lane]))
                            });
                        }
                    }
                    w.alu(26);
                    let out: Vec<f32> = (0..w.warp_size())
                        .map(|l| {
                            jc[l]
                                + 0.25 * LAMBDA
                                    * (cc[l] * dn[l] + cs[l] * ds[l] + cc[l] * dw_[l]
                                        + ce[l] * de[l])
                        })
                        .collect();
                    w.st_f32(me.j, |lane, _| pix(lane).map(|(r, c)| (r * n + c, out[lane])));
                });
            }
        }
        PhaseControl::Done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refimpl::max_abs_diff;
    use simt::{GpuConfig, MemSpace};

    fn run_version(version: SradVersion) -> Vec<f32> {
        let srad = Srad {
            n: 48,
            iterations: 2,
            version,
            seed: 5,
        };
        let mut gpu = Gpu::new(GpuConfig::gpgpusim_default());
        let (_, out) = srad.launch(&mut gpu);
        gpu.mem().read_f32(out)
    }

    #[test]
    fn v1_matches_reference() {
        let srad = Srad {
            n: 48,
            iterations: 2,
            version: SradVersion::V1,
            seed: 5,
        };
        let image = grid::speckle_image(48, 48, 5);
        let want = srad.reference(&image);
        assert!(max_abs_diff(&want, &run_version(SradVersion::V1)) < 1e-4);
    }

    #[test]
    fn v2_matches_v1_bit_for_bit() {
        assert_eq!(run_version(SradVersion::V1), run_version(SradVersion::V2));
    }

    #[test]
    fn v2_shifts_mix_toward_shared_and_raises_ipc() {
        let mut g1 = Gpu::new(GpuConfig::gpgpusim_default());
        let s1 = Srad::v1(Scale::Tiny).run(&mut g1);
        let mut g2 = Gpu::new(GpuConfig::gpgpusim_default());
        let s2 = Srad::v2(Scale::Tiny).run(&mut g2);
        assert!(
            s2.mem_mix.fraction(MemSpace::Shared) > s1.mem_mix.fraction(MemSpace::Shared) + 0.05,
            "v2 shared {:.3} vs v1 {:.3}",
            s2.mem_mix.fraction(MemSpace::Shared),
            s1.mem_mix.fraction(MemSpace::Shared)
        );
        assert!(
            s2.ipc() > s1.ipc(),
            "v2 IPC {:.0} should beat v1 {:.0}",
            s2.ipc(),
            s1.ipc()
        );
    }

    #[test]
    fn diffusion_smooths_the_image() {
        let srad = Srad {
            n: 32,
            iterations: 3,
            version: SradVersion::V2,
            seed: 2,
        };
        let image = grid::speckle_image(32, 32, 2);
        let out = srad.reference(&image);
        let var = |x: &[f32]| {
            let m = x.iter().sum::<f32>() / x.len() as f32;
            x.iter().map(|v| (v - m).powi(2)).sum::<f32>() / x.len() as f32
        };
        assert!(var(&out) < var(&image), "diffusion must reduce variance");
    }
}

//! Leukocyte Tracking: white-blood-cell detection in in-vivo microscopy
//! (Table I: 219×640 pixels/frame; Structured Grid dwarf, Medical
//! Imaging).
//!
//! The detection stage computes a GICOV (gradient inverse coefficient of
//! variation) score per pixel by sampling the image-gradient field along
//! candidate circles — sample offsets and trigonometric tables live in
//! **constant memory** and the gradient field is fetched through the
//! **texture cache** — followed by a grayscale dilation. Two versions
//! reproduce Table III's incremental-optimization rows:
//!
//! * [`LeukocyteVersion::V1`]: separate GICOV and dilation kernels with
//!   global-memory intermediates;
//! * [`LeukocyteVersion::V2`]: a fused, ghost-zone kernel in the spirit
//!   of the persistent-thread-block optimization of Boyer et al. — the
//!   GICOV scores for a tile plus its dilation halo are (redundantly)
//!   computed into shared memory and dilated in place, all but
//!   eliminating global traffic (Table III reports v2 at 0.0% global).

use datasets::{image, Scale};
use simt::{BufF32, Gpu, GridShape, Kernel, KernelStats, PhaseControl, WarpCtx};

/// Candidate circle directions sampled per pixel.
const NDIR: usize = 7;
/// Gradient samples per direction.
const NSAMP: usize = 8;
/// Dilation (structuring element) radius.
const DILATE_R: usize = 3;
/// Output tile edge for the fused v2 kernel.
const TILE: usize = 16;
/// v2 shared tile edge (tile + dilation halo).
const HTILE: usize = TILE + 2 * DILATE_R;
/// Padded shared-row stride for v2 (the +1 keeps the dilation's
/// row-crossing accesses off a single bank — the classic padding trick).
const HPAD: usize = HTILE + 1;
/// Variance regularizer.
const EPSILON: f32 = 1e-3;

/// Which incremental version to run (Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeukocyteVersion {
    /// Separate kernels, global intermediates.
    V1,
    /// Fused ghost-zone kernel, shared intermediates.
    V2,
}

/// The Leukocyte benchmark instance.
#[derive(Debug, Clone)]
pub struct Leukocyte {
    /// Frame width.
    pub width: usize,
    /// Frame height.
    pub height: usize,
    /// Number of synthetic cells in the frame.
    pub cells: usize,
    /// Version to run.
    pub version: LeukocyteVersion,
    /// Input seed.
    pub seed: u64,
}

impl Leukocyte {
    /// Standard (v2) instance for a scale (Table I: 219×640).
    pub fn new(scale: Scale) -> Leukocyte {
        Leukocyte::v2(scale)
    }

    /// Version-1 instance.
    pub fn v1(scale: Scale) -> Leukocyte {
        Leukocyte {
            width: scale.pick(80, 160, 640),
            height: scale.pick(64, 128, 219),
            cells: scale.pick(3, 8, 36),
            version: LeukocyteVersion::V1,
            seed: 23,
        }
    }

    /// Version-2 instance.
    pub fn v2(scale: Scale) -> Leukocyte {
        Leukocyte {
            version: LeukocyteVersion::V2,
            ..Leukocyte::v1(scale)
        }
    }

    /// Host-side preprocessing: gradient-magnitude field of the frame.
    fn gradient(&self) -> Vec<f32> {
        let (img, _) = image::cell_frame(self.width, self.height, self.cells, self.seed);
        let (w, h) = (self.width, self.height);
        let mut g = vec![0.0f32; w * h];
        for r in 0..h {
            for c in 0..w {
                let e = img.at(r, c.min(w - 2) + 1);
                let wst = img.at(r, c.max(1) - 1);
                let s = img.at(r.min(h - 2) + 1, c);
                let n = img.at(r.max(1) - 1, c);
                g[r * w + c] = ((e - wst) * (e - wst) + (s - n) * (s - n)).sqrt();
            }
        }
        g
    }

    /// Circle sample offsets `(dy, dx)` per direction (host-precomputed,
    /// uploaded to constant memory like Rodinia's sin/cos tables).
    fn sample_offsets(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(NDIR * NSAMP * 2);
        for d in 0..NDIR {
            let radius = 3.0 + d as f32;
            for s in 0..NSAMP {
                let theta = s as f32 / NSAMP as f32 * std::f32::consts::TAU;
                out.push((radius * theta.sin()).round());
                out.push((radius * theta.cos()).round());
            }
        }
        out
    }

    /// GICOV score at one pixel (shared by kernels and reference).
    fn gicov_at(grad: &[f32], w: usize, h: usize, r: usize, c: usize, offs: &[f32]) -> f32 {
        let mut best = 0.0f32;
        for d in 0..NDIR {
            let mut sum = 0.0f32;
            let mut sum2 = 0.0f32;
            for s in 0..NSAMP {
                let dy = offs[(d * NSAMP + s) * 2] as isize;
                let dx = offs[(d * NSAMP + s) * 2 + 1] as isize;
                let rr = (r as isize + dy).clamp(0, h as isize - 1) as usize;
                let cc = (c as isize + dx).clamp(0, w as isize - 1) as usize;
                let g = grad[rr * w + cc];
                sum += g;
                sum2 += g * g;
            }
            let mean = sum / NSAMP as f32;
            let var = sum2 / NSAMP as f32 - mean * mean;
            let score = mean * mean / (var + EPSILON);
            if score > best {
                best = score;
            }
        }
        best
    }

    /// Grayscale dilation of `src` with a square structuring element.
    fn dilate_at(src: &[f32], w: usize, h: usize, r: usize, c: usize) -> f32 {
        let mut m = 0.0f32;
        for dy in -(DILATE_R as isize)..=(DILATE_R as isize) {
            for dx in -(DILATE_R as isize)..=(DILATE_R as isize) {
                let rr = (r as isize + dy).clamp(0, h as isize - 1) as usize;
                let cc = (c as isize + dx).clamp(0, w as isize - 1) as usize;
                m = m.max(src[rr * w + cc]);
            }
        }
        m
    }

    /// Sequential reference: the dilated GICOV field.
    pub fn reference(&self) -> Vec<f32> {
        let grad = self.gradient();
        let offs = self.sample_offsets();
        let (w, h) = (self.width, self.height);
        let mut gicov = vec![0.0f32; w * h];
        for r in 0..h {
            for c in 0..w {
                gicov[r * w + c] = Self::gicov_at(&grad, w, h, r, c, &offs);
            }
        }
        let mut out = vec![0.0f32; w * h];
        for r in 0..h {
            for c in 0..w {
                out[r * w + c] = Self::dilate_at(&gicov, w, h, r, c);
            }
        }
        out
    }

    /// Runs detection on `gpu`; returns stats and the dilated GICOV
    /// buffer.
    pub fn launch(&self, gpu: &mut Gpu) -> (KernelStats, BufF32) {
        let grad = self.gradient();
        let offs = self.sample_offsets();
        let (w, h) = (self.width, self.height);
        let grad_buf = gpu.mem_mut().alloc_f32("lc-grad", &grad);
        let offs_buf = gpu.mem_mut().alloc_f32("lc-offsets", &offs);
        let out_buf = gpu.mem_mut().alloc_f32_zeroed("lc-out", w * h);
        let stats = match self.version {
            LeukocyteVersion::V1 => {
                let gicov_buf = gpu.mem_mut().alloc_f32_zeroed("lc-gicov", w * h);
                let k1 = GicovKernel {
                    grad: grad_buf,
                    offs: offs_buf,
                    gicov: gicov_buf,
                    w,
                    h,
                };
                let mut s = gpu.launch(&k1);
                let k2 = DilateKernel {
                    gicov: gicov_buf,
                    out: out_buf,
                    w,
                    h,
                };
                s.merge(&gpu.launch(&k2));
                s
            }
            LeukocyteVersion::V2 => {
                let k = FusedKernel {
                    grad: grad_buf,
                    offs: offs_buf,
                    out: out_buf,
                    w,
                    h,
                };
                gpu.launch(&k)
            }
        };
        (stats, out_buf)
    }

    /// Convenience wrapper returning only statistics.
    pub fn run(&self, gpu: &mut Gpu) -> KernelStats {
        self.launch(gpu).0
    }
}

/// Emits the GICOV computation for the given pixel of each lane:
/// texture fetches of the gradient, constant loads of the offset tables,
/// and the score arithmetic. Returns per-lane scores.
fn warp_gicov(
    w: &mut WarpCtx<'_>,
    grad: BufF32,
    offs: BufF32,
    width: usize,
    height: usize,
    pixel: &[Option<(usize, usize)>],
) -> Vec<f32> {
    let ws = w.warp_size();
    let mut best = vec![0.0f32; ws];
    for d in 0..NDIR {
        let mut sum = vec![0.0f32; ws];
        let mut sum2 = vec![0.0f32; ws];
        for s in 0..NSAMP {
            let oy = w.ld_const_f32(offs, |lane, _| {
                pixel[lane].map(|_| (d * NSAMP + s) * 2)
            });
            let ox = w.ld_const_f32(offs, |lane, _| {
                pixel[lane].map(|_| (d * NSAMP + s) * 2 + 1)
            });
            let g = w.ld_tex_f32(grad, |lane, _| {
                pixel[lane].map(|(r, c)| {
                    let rr = (r as isize + oy[lane] as isize).clamp(0, height as isize - 1);
                    let cc = (c as isize + ox[lane] as isize).clamp(0, width as isize - 1);
                    rr as usize * width + cc as usize
                })
            });
            w.alu(8);
            for lane in 0..ws {
                sum[lane] += g[lane];
                sum2[lane] += g[lane] * g[lane];
            }
        }
        w.alu(6);
        w.sfu(2);
        for lane in 0..ws {
            let mean = sum[lane] / NSAMP as f32;
            let var = sum2[lane] / NSAMP as f32 - mean * mean;
            let score = mean * mean / (var + EPSILON);
            if score > best[lane] {
                best[lane] = score;
            }
        }
    }
    best
}

struct GicovKernel {
    grad: BufF32,
    offs: BufF32,
    gicov: BufF32,
    w: usize,
    h: usize,
}

impl Kernel for GicovKernel {
    fn name(&self) -> &str {
        "lc-gicov-v1"
    }

    fn shape(&self) -> GridShape {
        GridShape::cover(self.w * self.h, 256)
    }

    fn run_warp(&self, w: &mut WarpCtx<'_>) -> PhaseControl {
        let (width, height) = (self.w, self.h);
        let total = width * height;
        let pixel: Vec<Option<(usize, usize)>> = w
            .tids()
            .iter()
            .map(|&t| (t < total).then(|| (t / width, t % width)))
            .collect();
        let active: Vec<bool> = pixel.iter().map(Option::is_some).collect();
        let me = (self.grad, self.offs, self.gicov);
        w.if_active(&active, |w| {
            let (grad, offs, gicov) = me;
            let best = warp_gicov(w, grad, offs, width, height, &pixel);
            w.st_f32(gicov, |lane, tid| {
                (tid < total).then_some((tid, best[lane]))
            });
        });
        PhaseControl::Done
    }
}

struct DilateKernel {
    gicov: BufF32,
    out: BufF32,
    w: usize,
    h: usize,
}

impl Kernel for DilateKernel {
    fn name(&self) -> &str {
        "lc-dilate-v1"
    }

    fn shape(&self) -> GridShape {
        GridShape::cover(self.w * self.h, 256)
    }

    fn run_warp(&self, w: &mut WarpCtx<'_>) -> PhaseControl {
        let (width, height) = (self.w, self.h);
        let total = width * height;
        let pixel: Vec<Option<(usize, usize)>> = w
            .tids()
            .iter()
            .map(|&t| (t < total).then(|| (t / width, t % width)))
            .collect();
        let active: Vec<bool> = pixel.iter().map(Option::is_some).collect();
        let me = (self.gicov, self.out);
        w.if_active(&active, |w| {
            let (gicov, out) = me;
            let ws = w.warp_size();
            let mut m = vec![0.0f32; ws];
            for dy in -(DILATE_R as isize)..=(DILATE_R as isize) {
                for dx in -(DILATE_R as isize)..=(DILATE_R as isize) {
                    // The structuring element sweeps through the texture
                    // cache (Rodinia binds the GICOV matrix to a texture).
                    let v = w.ld_tex_f32(gicov, |lane, _| {
                        pixel[lane].map(|(r, c)| {
                            let rr = (r as isize + dy).clamp(0, height as isize - 1);
                            let cc = (c as isize + dx).clamp(0, width as isize - 1);
                            rr as usize * width + cc as usize
                        })
                    });
                    w.alu(1);
                    for lane in 0..ws {
                        m[lane] = m[lane].max(v[lane]);
                    }
                }
            }
            w.st_f32(out, |lane, tid| (tid < total).then_some((tid, m[lane])));
        });
        PhaseControl::Done
    }
}

/// v2: fused ghost-zone kernel. Each block computes GICOV for its
/// TILE×TILE output tile *plus* the dilation halo into shared memory
/// (redundantly with neighboring blocks), then dilates from shared.
struct FusedKernel {
    grad: BufF32,
    offs: BufF32,
    out: BufF32,
    w: usize,
    h: usize,
}

impl Kernel for FusedKernel {
    fn name(&self) -> &str {
        "lc-fused-v2"
    }

    fn shape(&self) -> GridShape {
        let tiles_x = self.w.div_ceil(TILE);
        let tiles_y = self.h.div_ceil(TILE);
        GridShape::new(tiles_x * tiles_y, TILE * TILE)
    }

    fn shared_f32_words(&self) -> usize {
        HTILE * HPAD
    }

    fn regs_per_thread(&self) -> u32 {
        24
    }

    fn run_warp(&self, w: &mut WarpCtx<'_>) -> PhaseControl {
        let (width, height) = (self.w, self.h);
        let tiles_x = width.div_ceil(TILE);
        let (tile_r, tile_c) = (w.block() / tiles_x, w.block() % tiles_x);
        let (row0, col0) = (tile_r * TILE, tile_c * TILE);
        let ltids = w.ltids();
        // Halo-tile linear index -> clamped image pixel.
        let pixel_of = move |hidx: usize| -> (usize, usize) {
            let hr = hidx / HTILE;
            let hc = hidx % HTILE;
            let r = (row0 + hr).saturating_sub(DILATE_R).min(height - 1);
            let c = (col0 + hc).saturating_sub(DILATE_R).min(width - 1);
            (r, c)
        };
        match w.phase() {
            0 => {
                // Compute GICOV for every halo-tile cell, 256 threads
                // sweeping HTILE² cells in rounds.
                let rounds = (HTILE * HTILE).div_ceil(TILE * TILE);
                let me = (self.grad, self.offs);
                for round in 0..rounds {
                    let base = round * TILE * TILE;
                    let pixel: Vec<Option<(usize, usize)>> = ltids
                        .iter()
                        .map(|&l| {
                            let h = base + l;
                            (h < HTILE * HTILE).then(|| pixel_of(h))
                        })
                        .collect();
                    let active: Vec<bool> = pixel.iter().map(Option::is_some).collect();
                    let lt = ltids.clone();
                    let px = pixel.clone();
                    w.if_active(&active, |w| {
                        let (grad, offs) = me;
                        let best = warp_gicov(w, grad, offs, width, height, &px);
                        w.sh_st_f32(|lane, _| {
                            let h = base + lt[lane];
                            (h < HTILE * HTILE)
                                .then_some((h / HTILE * HPAD + h % HTILE, best[lane]))
                        });
                    });
                }
                PhaseControl::Continue
            }
            _ => {
                // Dilate from shared memory; one global store per output
                // pixel is the kernel's only global traffic.
                let in_img: Vec<bool> = ltids
                    .iter()
                    .map(|&l| row0 + l / TILE < height && col0 + l % TILE < width)
                    .collect();
                let out = self.out;
                let lt = ltids.clone();
                w.if_active(&in_img, |w| {
                    let ws = w.warp_size();
                    let mut m = vec![0.0f32; ws];
                    for dy in 0..(2 * DILATE_R + 1) {
                        for dx in 0..(2 * DILATE_R + 1) {
                            let v = w.sh_ld_f32(|lane, _| {
                                let l = lt[lane];
                                Some((l / TILE + dy) * HPAD + (l % TILE + dx))
                            });
                            w.alu(1);
                            for lane in 0..ws {
                                m[lane] = m[lane].max(v[lane]);
                            }
                        }
                    }
                    w.st_f32(out, |lane, _| {
                        let l = lt[lane];
                        let (r, c) = (row0 + l / TILE, col0 + l % TILE);
                        (r < height && c < width).then_some((r * width + c, m[lane]))
                    });
                });
                PhaseControl::Done
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refimpl::max_abs_diff;
    use simt::{GpuConfig, MemSpace};

    fn run_version(version: LeukocyteVersion) -> Vec<f32> {
        let lc = Leukocyte {
            width: 48,
            height: 32,
            cells: 2,
            version,
            seed: 6,
        };
        let mut gpu = Gpu::new(GpuConfig::gpgpusim_default());
        let (_, out) = lc.launch(&mut gpu);
        gpu.mem().read_f32(out)
    }

    #[test]
    fn v1_matches_reference() {
        let lc = Leukocyte {
            width: 48,
            height: 32,
            cells: 2,
            version: LeukocyteVersion::V1,
            seed: 6,
        };
        let want = lc.reference();
        assert!(max_abs_diff(&want, &run_version(LeukocyteVersion::V1)) < 1e-4);
    }

    #[test]
    fn v2_matches_v1() {
        assert_eq!(run_version(LeukocyteVersion::V1), run_version(LeukocyteVersion::V2));
    }

    #[test]
    fn gicov_peaks_near_cell_edges() {
        let lc = Leukocyte {
            width: 64,
            height: 48,
            cells: 1,
            version: LeukocyteVersion::V1,
            seed: 9,
        };
        let out = lc.reference();
        let (img, centers) = image::cell_frame(lc.width, lc.height, lc.cells, lc.seed);
        let _ = img;
        let (cr, cc) = centers[0];
        // The dilated GICOV near the cell should exceed the response in
        // the opposite corner of the frame.
        let near = out[cr * lc.width + cc];
        let far = out[(lc.height - 1 - cr) * lc.width + (lc.width - 1 - cc)];
        assert!(near > far, "near {near} vs far {far}");
    }

    #[test]
    fn table3_shape_v2_cuts_global_and_lifts_ipc() {
        let mut g1 = Gpu::new(GpuConfig::gpgpusim_default());
        let s1 = Leukocyte::v1(Scale::Tiny).run(&mut g1);
        let mut g2 = Gpu::new(GpuConfig::gpgpusim_default());
        let s2 = Leukocyte::v2(Scale::Tiny).run(&mut g2);
        let g_frac1 = s1.mem_mix.fraction(MemSpace::Global);
        let g_frac2 = s2.mem_mix.fraction(MemSpace::Global);
        assert!(g_frac2 < g_frac1, "v2 global {g_frac2:.3} !< v1 {g_frac1:.3}");
        assert!(g_frac2 < 0.02, "v2 global should be near zero: {g_frac2:.4}");
        // Constant memory dominates both (Table III).
        assert!(s1.mem_mix.fraction(MemSpace::Constant) > 0.4);
        // The paper's headline v2 effect: bandwidth demand collapses
        // (8% -> 3% utilization in Table III). The small IPC gain the
        // paper also reports is not reproduced — this model's stores
        // are fire-and-forget, so v1 pays no write latency to begin
        // with (see EXPERIMENTS.md).
        assert!(
            s2.bw_utilization() < s1.bw_utilization(),
            "v2 BW {:.3} !< v1 {:.3}",
            s2.bw_utilization(),
            s1.bw_utilization()
        );
    }
}

//! The suite registry: Table I metadata and a uniform way to run every
//! benchmark.

use datasets::Scale;
use simt::{Gpu, KernelStats};

use crate::backprop::Backprop;
use crate::bfs::Bfs;
use crate::cfd::Cfd;
use crate::heartwall::Heartwall;
use crate::hotspot::Hotspot;
use crate::kmeans::Kmeans;
use crate::leukocyte::Leukocyte;
use crate::lud::Lud;
use crate::mummer::Mummer;
use crate::nw::Nw;
use crate::srad::Srad;
use crate::streamcluster::StreamCluster;

/// The Berkeley dwarf of a benchmark (Table I's second column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dwarf {
    /// Dense Linear Algebra.
    DenseLinearAlgebra,
    /// Dynamic Programming.
    DynamicProgramming,
    /// Structured Grid.
    StructuredGrid,
    /// Unstructured Grid.
    UnstructuredGrid,
    /// Graph Traversal.
    GraphTraversal,
}

impl std::fmt::Display for Dwarf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Dwarf::DenseLinearAlgebra => "Dense Linear Algebra",
            Dwarf::DynamicProgramming => "Dynamic Programming",
            Dwarf::StructuredGrid => "Structured Grid",
            Dwarf::UnstructuredGrid => "Unstructured Grid",
            Dwarf::GraphTraversal => "Graph Traversal",
        };
        f.write_str(s)
    }
}

/// A runnable member of the Rodinia GPU suite with its Table I metadata.
///
/// `Send + Sync` is a supertrait so boxed benchmarks can be shared with
/// the parallel study engine's worker threads (`rodinia_study::engine`).
pub trait GpuBenchmark: Send + Sync {
    /// Full benchmark name.
    fn name(&self) -> &'static str;

    /// The abbreviation the paper's figures use (BP, BFS, ...).
    fn abbrev(&self) -> &'static str;

    /// Berkeley dwarf.
    fn dwarf(&self) -> Dwarf;

    /// Application domain (Table I's third column).
    fn domain(&self) -> &'static str;

    /// Human-readable problem size of this instance.
    fn problem_size(&self) -> String;

    /// Runs the benchmark on `gpu`, returning aggregate statistics over
    /// all its kernel launches.
    fn run_on(&self, gpu: &mut Gpu) -> KernelStats;
}

macro_rules! impl_benchmark {
    ($ty:ty, $name:literal, $abbrev:literal, $dwarf:expr, $domain:literal, $size:expr) => {
        impl GpuBenchmark for $ty {
            fn name(&self) -> &'static str {
                $name
            }
            fn abbrev(&self) -> &'static str {
                $abbrev
            }
            fn dwarf(&self) -> Dwarf {
                $dwarf
            }
            fn domain(&self) -> &'static str {
                $domain
            }
            fn problem_size(&self) -> String {
                ($size)(self)
            }
            fn run_on(&self, gpu: &mut Gpu) -> KernelStats {
                self.run(gpu)
            }
        }
    };
}

impl_benchmark!(
    Backprop,
    "Back Propagation",
    "BP",
    Dwarf::UnstructuredGrid,
    "Pattern Recognition",
    |b: &Backprop| format!("{} input nodes", b.n)
);
impl_benchmark!(
    Bfs,
    "Breadth-First Search",
    "BFS",
    Dwarf::GraphTraversal,
    "Graph Algorithms",
    |b: &Bfs| format!("{} nodes", b.n)
);
impl_benchmark!(
    Cfd,
    "CFD Solver",
    "CFD",
    Dwarf::UnstructuredGrid,
    "Fluid Dynamics",
    |b: &Cfd| format!("{}k elements", b.n / 1000)
);
impl_benchmark!(
    Heartwall,
    "Heart Wall Tracking",
    "HW",
    Dwarf::StructuredGrid,
    "Medical Imaging",
    |b: &Heartwall| format!("{}x{} pixels/frame, {} frames", b.width, b.height, b.frames)
);
impl_benchmark!(
    Hotspot,
    "HotSpot",
    "HS",
    Dwarf::StructuredGrid,
    "Physics Simulation",
    |b: &Hotspot| format!("{}x{} data points", b.n, b.n)
);
impl_benchmark!(
    Kmeans,
    "Kmeans",
    "KM",
    Dwarf::DenseLinearAlgebra,
    "Data Mining",
    |b: &Kmeans| format!("{} data points, {} features", b.n, b.features)
);
impl_benchmark!(
    Leukocyte,
    "Leukocyte Tracking",
    "LC",
    Dwarf::StructuredGrid,
    "Medical Imaging",
    |b: &Leukocyte| format!("{}x{} pixels/frame", b.height, b.width)
);
impl_benchmark!(
    Lud,
    "LU Decomposition",
    "LUD",
    Dwarf::DenseLinearAlgebra,
    "Linear Algebra",
    |b: &Lud| format!("{}x{} data points", b.n, b.n)
);
impl_benchmark!(
    Mummer,
    "MUMmer",
    "MUM",
    Dwarf::GraphTraversal,
    "Bioinformatics",
    |b: &Mummer| format!("{} {}-character queries", b.queries, b.read_len)
);
impl_benchmark!(
    Nw,
    "Needleman-Wunsch",
    "NW",
    Dwarf::DynamicProgramming,
    "Bioinformatics",
    |b: &Nw| format!("{}x{} data points", b.n, b.n)
);
impl_benchmark!(
    Srad,
    "SRAD",
    "SRAD",
    Dwarf::StructuredGrid,
    "Image Processing",
    |b: &Srad| format!("{}x{} data points", b.n, b.n)
);
impl_benchmark!(
    StreamCluster,
    "Stream Cluster",
    "SC",
    Dwarf::DenseLinearAlgebra,
    "Data Mining",
    |b: &StreamCluster| format!("{} points, {} dimensions", b.n, b.dims)
);

/// All twelve benchmarks at the given scale, in the order the paper's
/// figures list them (BP, BFS, CFD, HW, HS, KM, LC, LUD, MUM, NW, SRAD,
/// SC).
pub fn all_benchmarks(scale: Scale) -> Vec<Box<dyn GpuBenchmark>> {
    vec![
        Box::new(Backprop::new(scale)),
        Box::new(Bfs::new(scale)),
        Box::new(Cfd::new(scale)),
        Box::new(Heartwall::new(scale)),
        Box::new(Hotspot::new(scale)),
        Box::new(Kmeans::new(scale)),
        Box::new(Leukocyte::new(scale)),
        Box::new(Lud::new(scale)),
        Box::new(Mummer::new(scale)),
        Box::new(Nw::new(scale)),
        Box::new(Srad::new(scale)),
        Box::new(StreamCluster::new(scale)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt::GpuConfig;

    #[test]
    fn suite_has_twelve_members_in_figure_order() {
        let suite = all_benchmarks(Scale::Tiny);
        let abbrevs: Vec<&str> = suite.iter().map(|b| b.abbrev()).collect();
        assert_eq!(
            abbrevs,
            vec!["BP", "BFS", "CFD", "HW", "HS", "KM", "LC", "LUD", "MUM", "NW", "SRAD", "SC"]
        );
    }

    #[test]
    fn table1_dwarves_match_the_paper() {
        let suite = all_benchmarks(Scale::Tiny);
        let dwarf_of = |a: &str| {
            suite
                .iter()
                .find(|b| b.abbrev() == a)
                .map(|b| b.dwarf())
                .unwrap()
        };
        assert_eq!(dwarf_of("KM"), Dwarf::DenseLinearAlgebra);
        assert_eq!(dwarf_of("NW"), Dwarf::DynamicProgramming);
        assert_eq!(dwarf_of("HS"), Dwarf::StructuredGrid);
        assert_eq!(dwarf_of("BP"), Dwarf::UnstructuredGrid);
        assert_eq!(dwarf_of("BFS"), Dwarf::GraphTraversal);
        assert_eq!(dwarf_of("MUM"), Dwarf::GraphTraversal);
        assert_eq!(dwarf_of("CFD"), Dwarf::UnstructuredGrid);
        assert_eq!(dwarf_of("LUD"), Dwarf::DenseLinearAlgebra);
        assert_eq!(dwarf_of("HW"), Dwarf::StructuredGrid);
        assert_eq!(dwarf_of("LC"), Dwarf::StructuredGrid);
        assert_eq!(dwarf_of("SRAD"), Dwarf::StructuredGrid);
        assert_eq!(dwarf_of("SC"), Dwarf::DenseLinearAlgebra);
    }

    #[test]
    fn every_benchmark_runs_at_tiny_scale() {
        for b in all_benchmarks(Scale::Tiny) {
            let mut gpu = Gpu::new(GpuConfig::gpgpusim_8sm());
            let stats = b.run_on(&mut gpu);
            assert!(stats.cycles > 0, "{} produced no cycles", b.abbrev());
            assert!(
                stats.thread_instructions > 0,
                "{} executed nothing",
                b.abbrev()
            );
            assert!(!b.problem_size().is_empty());
        }
    }
}

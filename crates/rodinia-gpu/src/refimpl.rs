//! Helpers shared by the benchmarks' validation tests.

/// Maximum absolute difference between two slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "length mismatch: {} vs {}", a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f32, f32::max)
}

/// Maximum relative difference (`|a-b| / max(|a|,|b|,1)`) between slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn max_rel_diff(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs() / x.abs().max(y.abs()).max(1.0))
        .fold(0.0f32, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diffs() {
        assert_eq!(max_abs_diff(&[1.0, 2.0], &[1.0, 2.5]), 0.5);
        assert!(max_rel_diff(&[100.0], &[101.0]) < 0.011);
        assert_eq!(max_abs_diff(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = max_abs_diff(&[1.0], &[]);
    }
}

//! Heart Wall Tracking: following the inner and outer walls of a mouse
//! heart across an ultrasound sequence
//! (Table I: 609×590 pixels/frame; Structured Grid dwarf, Medical
//! Imaging).
//!
//! The paper highlights Heartwall for its **braided parallelism** — "a
//! mixture of data and task parallelism ... coarsely parallelized
//! according to independent tasks (TLP); each task is then finely
//! parallelized according to independent data operations (DLP)" — and
//! for processing a whole frame in a *single* kernel to avoid launch
//! overhead, at the cost of "some non-parallel computation into the
//! kernel, leading to a slight warp under-utilization".
//!
//! The structure here mirrors that exactly: one kernel launch per frame;
//! each thread block owns one tracking point (inner- and outer-wall
//! blocks take different task paths); threads within a block evaluate
//! template-matching offsets in parallel (SAD correlation over a
//! constant-memory template); and a single lane performs the sequential
//! argmax scan — the non-parallel tail the paper mentions. Per-point
//! parameters and templates live in constant memory ("Heartwall uses
//! constant memory to store large numbers of parameters which cannot be
//! readily fit into shared memory").

use datasets::{image, Scale};
use simt::{BufF32, Gpu, GridShape, Kernel, KernelStats, PhaseControl, WarpCtx};

/// Template edge length (odd).
const TPL: usize = 9;
/// Search-window radius around the previous location.
const SEARCH_R: usize = 6;
/// Search-window edge (offsets per point).
const SEARCH: usize = 2 * SEARCH_R + 1;

/// The Heart Wall benchmark instance.
#[derive(Debug, Clone)]
pub struct Heartwall {
    /// Frame width.
    pub width: usize,
    /// Frame height.
    pub height: usize,
    /// Frames to track across (Table I: 104).
    pub frames: usize,
    /// Tracking points on the inner wall.
    pub inner_points: usize,
    /// Tracking points on the outer wall.
    pub outer_points: usize,
    /// Input seed.
    pub seed: u64,
}

impl Heartwall {
    /// Standard instance for a scale (paper: 51 points over 104 frames).
    pub fn new(scale: Scale) -> Heartwall {
        Heartwall {
            width: scale.pick(64, 128, 609),
            height: scale.pick(64, 128, 590),
            frames: scale.pick(3, 6, 104),
            inner_points: scale.pick(6, 20, 20),
            outer_points: scale.pick(7, 31, 31),
            seed: 27,
        }
    }

    fn sequence(&self) -> Vec<image::Image> {
        image::heart_sequence(self.width, self.height, self.frames, self.seed)
    }

    /// Initial tracking points: sampled along the two wall ellipses of
    /// frame 0.
    fn initial_points(&self) -> Vec<(usize, usize)> {
        let (cr, cc) = (self.height as f32 / 2.0, self.width as f32 / 2.0);
        let a_in = self.width as f32 / 6.0;
        let b_in = self.height as f32 / 6.0;
        let mut pts = Vec::new();
        for i in 0..self.inner_points {
            let th = i as f32 / self.inner_points as f32 * std::f32::consts::TAU;
            pts.push((
                (cr + b_in * th.sin()) as usize,
                (cc + a_in * th.cos()) as usize,
            ));
        }
        for i in 0..self.outer_points {
            let th = i as f32 / self.outer_points as f32 * std::f32::consts::TAU;
            pts.push((
                (cr + 1.8 * b_in * th.sin()) as usize,
                (cc + 1.8 * a_in * th.cos()) as usize,
            ));
        }
        pts
    }

    fn clamp_point(&self, r: isize, c: isize) -> (usize, usize) {
        let margin = (TPL / 2 + SEARCH_R) as isize;
        (
            r.clamp(margin, self.height as isize - 1 - margin) as usize,
            c.clamp(margin, self.width as isize - 1 - margin) as usize,
        )
    }

    /// Extracts the template patch around a point from a frame.
    fn template(&self, frame: &image::Image, p: (usize, usize)) -> Vec<f32> {
        let half = TPL / 2;
        let mut t = Vec::with_capacity(TPL * TPL);
        for dy in 0..TPL {
            for dx in 0..TPL {
                t.push(frame.at(p.0 + dy - half, p.1 + dx - half));
            }
        }
        t
    }

    /// SAD score of the template at offset `(or, oc)` from `p` in
    /// `frame` (lower is better), shared by kernel and reference.
    fn sad(frame: &[f32], w: usize, tpl: &[f32], p: (usize, usize), or: isize, oc: isize) -> f32 {
        let half = (TPL / 2) as isize;
        let mut s = 0.0f32;
        for dy in 0..TPL as isize {
            for dx in 0..TPL as isize {
                let r = (p.0 as isize + or + dy - half) as usize;
                let c = (p.1 as isize + oc + dx - half) as usize;
                s += (frame[r * w + c] - tpl[(dy * TPL as isize + dx) as usize]).abs();
            }
        }
        s
    }

    /// Sequential reference: tracked point positions after all frames.
    pub fn reference(&self) -> Vec<(usize, usize)> {
        let frames = self.sequence();
        let mut points = self
            .initial_points()
            .iter()
            .map(|&(r, c)| self.clamp_point(r as isize, c as isize))
            .collect::<Vec<_>>();
        let mut templates: Vec<Vec<f32>> =
            points.iter().map(|&p| self.template(&frames[0], p)).collect();
        for frame in &frames[1..] {
            for (i, p) in points.iter_mut().enumerate() {
                let mut best = (0isize, 0isize);
                let mut best_s = f32::INFINITY;
                for or in -(SEARCH_R as isize)..=(SEARCH_R as isize) {
                    for oc in -(SEARCH_R as isize)..=(SEARCH_R as isize) {
                        let s = Self::sad(&frame.pixels, self.width, &templates[i], *p, or, oc);
                        if s < best_s {
                            best_s = s;
                            best = (or, oc);
                        }
                    }
                }
                *p = self.clamp_point(p.0 as isize + best.0, p.1 as isize + best.1);
                templates[i] = self.template(frame, *p);
            }
        }
        points
    }

    /// Runs tracking on `gpu`; returns stats and final point positions.
    pub fn launch(&self, gpu: &mut Gpu) -> (KernelStats, Vec<(usize, usize)>) {
        let frames = self.sequence();
        let n_points = self.inner_points + self.outer_points;
        let mut points = self
            .initial_points()
            .iter()
            .map(|&(r, c)| self.clamp_point(r as isize, c as isize))
            .collect::<Vec<_>>();
        let mut templates: Vec<f32> = points
            .iter()
            .flat_map(|&p| self.template(&frames[0], p))
            .collect();
        let mut stats: Option<KernelStats> = None;
        let frame_buf = gpu
            .mem_mut()
            .alloc_f32_zeroed("hw-frame", self.width * self.height);
        let result_buf = gpu.mem_mut().alloc_f32_zeroed("hw-result", n_points * 2);
        for frame in &frames[1..] {
            gpu.mem_mut().write_f32(frame_buf, &frame.pixels);
            // Per-frame constant uploads: point coordinates + templates.
            let mut params: Vec<f32> = Vec::with_capacity(n_points * 2);
            for &(r, c) in &points {
                params.push(r as f32);
                params.push(c as f32);
            }
            let param_buf = gpu.mem_mut().alloc_f32("hw-params", &params);
            let tpl_buf = gpu.mem_mut().alloc_f32("hw-templates", &templates);
            let k = HeartwallKernel {
                frame: frame_buf,
                params: param_buf,
                templates: tpl_buf,
                result: result_buf,
                width: self.width,
                inner_points: self.inner_points,
                n_points,
            };
            let s = gpu.launch(&k);
            match &mut stats {
                None => stats = Some(s),
                Some(acc) => acc.merge(&s),
            }
            let res = gpu.mem().read_f32(result_buf);
            for (i, p) in points.iter_mut().enumerate() {
                *p = self.clamp_point(res[i * 2] as isize, res[i * 2 + 1] as isize);
            }
            templates = points
                .iter()
                .flat_map(|&p| self.template(frame, p))
                .collect();
        }
        (stats.expect("frames tracked"), points)
    }

    /// Convenience wrapper returning only statistics.
    pub fn run(&self, gpu: &mut Gpu) -> KernelStats {
        self.launch(gpu).0
    }
}

/// One kernel per frame: block = tracking point (task parallelism);
/// thread = search offset (data parallelism).
struct HeartwallKernel {
    frame: BufF32,
    params: BufF32,
    templates: BufF32,
    result: BufF32,
    width: usize,
    inner_points: usize,
    n_points: usize,
}

impl Kernel for HeartwallKernel {
    fn name(&self) -> &str {
        "heartwall-track"
    }

    fn shape(&self) -> GridShape {
        GridShape::new(self.n_points, 256)
    }

    fn shared_f32_words(&self) -> usize {
        SEARCH * SEARCH // the per-offset score table
    }

    fn regs_per_thread(&self) -> u32 {
        24
    }

    fn run_warp(&self, w: &mut WarpCtx<'_>) -> PhaseControl {
        let point = w.block();
        let is_inner = point < self.inner_points;
        let width = self.width;
        let ltids = w.ltids();
        match w.phase() {
            0 => {
                // Point coordinates from constant memory (broadcast).
                let pr = w.ld_const_f32(self.params, |_, _| Some(point * 2));
                let pc = w.ld_const_f32(self.params, |_, _| Some(point * 2 + 1));
                let p = (pr[0] as usize, pc[0] as usize);
                // Each thread evaluates one search offset; 169 offsets
                // under 256 threads leave trailing warps idle — the
                // braided kernel's "slight warp under-utilization".
                let has_offset: Vec<bool> =
                    ltids.iter().map(|&l| l < SEARCH * SEARCH).collect();
                let me = (self.frame, self.templates, point, ltids.clone());
                w.if_active(&has_offset, |w| {
                    let (frame, templates, point, lt) = me;
                    let ws = w.warp_size();
                    let half = (TPL / 2) as isize;
                    let offset = |l: usize| -> (isize, isize) {
                        (
                            (l / SEARCH) as isize - SEARCH_R as isize,
                            (l % SEARCH) as isize - SEARCH_R as isize,
                        )
                    };
                    let mut score = vec![0.0f32; ws];
                    for dy in 0..TPL as isize {
                        for dx in 0..TPL as isize {
                            // Template pixel: constant broadcast.
                            let t = w.ld_const_f32(templates, |_, _| {
                                Some(point * TPL * TPL + (dy * TPL as isize + dx) as usize)
                            });
                            // Frame pixel: scattered global read.
                            let f = w.ld_f32(frame, |lane, _| {
                                let (or, oc) = offset(lt[lane]);
                                let r = (p.0 as isize + or + dy - half) as usize;
                                let c = (p.1 as isize + oc + dx - half) as usize;
                                Some(r * width + c)
                            });
                            w.alu(3);
                            for lane in 0..ws {
                                score[lane] += (f[lane] - t[lane]).abs();
                            }
                        }
                    }
                    // Task-specific post-processing: the two wall types
                    // weight their scores differently (uniform per block,
                    // so no intra-warp divergence — pure task parallelism).
                    if is_inner {
                        w.alu(2);
                    } else {
                        w.alu(4);
                        for s in &mut score {
                            *s *= 1.0; // outer-wall normalization is a no-op numerically
                        }
                    }
                    let lt2 = lt.clone();
                    w.sh_st_f32(move |lane, _| Some((lt2[lane], score[lane])));
                });
                PhaseControl::Continue
            }
            _ => {
                // Sequential argmax by lane 0 of warp 0 — the
                // "non-parallel computation" folded into the kernel.
                if w.warp() == 0 {
                    let first: Vec<bool> = ltids.iter().map(|&l| l == 0).collect();
                    let me = (self.params, self.result, point);
                    w.if_active(&first, |w| {
                        let (params, result, point) = me;
                        let mut best = 0usize;
                        let mut best_s = f32::INFINITY;
                        for i in 0..SEARCH * SEARCH {
                            let v = w.sh_ld_f32(|lane, _| (lane == 0).then_some(i));
                            w.alu(2);
                            if v[0] < best_s {
                                best_s = v[0];
                                best = i;
                            }
                        }
                        let pr = w.ld_const_f32(params, |_, _| Some(point * 2));
                        let pc = w.ld_const_f32(params, |_, _| Some(point * 2 + 1));
                        let or = (best / SEARCH) as isize - SEARCH_R as isize;
                        let oc = (best % SEARCH) as isize - SEARCH_R as isize;
                        let nr = pr[0] + or as f32;
                        let nc = pc[0] + oc as f32;
                        w.alu(4);
                        w.st_f32(result, |lane, _| (lane == 0).then_some((point * 2, nr)));
                        w.st_f32(result, |lane, _| {
                            (lane == 0).then_some((point * 2 + 1, nc))
                        });
                    });
                }
                PhaseControl::Done
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt::{GpuConfig, MemSpace};

    #[test]
    fn matches_reference() {
        let hw = Heartwall {
            width: 64,
            height: 64,
            frames: 3,
            inner_points: 4,
            outer_points: 5,
            seed: 2,
        };
        let want = hw.reference();
        let mut gpu = Gpu::new(GpuConfig::gpgpusim_default());
        let (_, got) = hw.launch(&mut gpu);
        assert_eq!(want, got);
    }

    #[test]
    fn tracked_points_follow_the_pulsing_wall() {
        let hw = Heartwall {
            width: 96,
            height: 96,
            frames: 5,
            inner_points: 8,
            outer_points: 8,
            seed: 3,
        };
        let pts = hw.reference();
        // Points must stay in the frame and may not all collapse to one
        // location.
        assert!(pts
            .iter()
            .all(|&(r, c)| r < hw.height && c < hw.width));
        let distinct: std::collections::HashSet<_> = pts.iter().collect();
        assert!(distinct.len() > pts.len() / 2);
    }

    #[test]
    fn constant_memory_is_prominent_and_warps_underutilized() {
        let hw = Heartwall::new(Scale::Tiny);
        let mut gpu = Gpu::new(GpuConfig::gpgpusim_default());
        let stats = hw.run(&mut gpu);
        assert!(
            stats.mem_mix.fraction(MemSpace::Constant) > 0.25,
            "const fraction {:.3}",
            stats.mem_mix.fraction(MemSpace::Constant)
        );
        // The sequential argmax and the 169-of-256 offset coverage leave
        // a visible low-occupancy share (Figure 3's HW bar).
        let q = stats.occupancy.quartile_fractions();
        assert!(q[0] > 0.05, "low-lane share {q:?}");
    }
}

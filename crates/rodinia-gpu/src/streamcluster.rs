//! StreamCluster: online clustering (k-median facility opening)
//! (Table I: 65536 points, 256 dimensions; Dense Linear Algebra dwarf,
//! Data Mining).
//!
//! StreamCluster is the one workload Rodinia shares with Parsec. The GPU
//! `pgain` kernel evaluates one candidate facility at a time: the
//! candidate's coordinates are staged in **shared memory** (a broadcast
//! read per dimension), every thread streams its own point from global
//! memory (coalesced via a transposed layout), and the per-point gains
//! are written back for the host to reduce. This gives StreamCluster its
//! heavy shared-memory fraction in the paper's Figure 2.

use datasets::{mining, Scale};
use simt::{BufF32, Gpu, GridShape, Kernel, KernelStats, PhaseControl, WarpCtx};

/// Cost of opening a new facility.
const FACILITY_COST: f32 = 50.0;

/// The StreamCluster benchmark instance.
#[derive(Debug, Clone)]
pub struct StreamCluster {
    /// Number of points.
    pub n: usize,
    /// Dimensions per point.
    pub dims: usize,
    /// Candidate facilities evaluated (one kernel launch each).
    pub candidates: usize,
    /// Input seed.
    pub seed: u64,
}

impl StreamCluster {
    /// Standard instance for a scale.
    pub fn new(scale: Scale) -> StreamCluster {
        StreamCluster {
            n: scale.pick(512, 8192, 65_536),
            dims: scale.pick(16, 32, 256),
            candidates: scale.pick(4, 8, 16),
            seed: 14,
        }
    }

    fn points(&self) -> Vec<f32> {
        mining::clustered_points(self.n, self.dims, 8, self.seed)
    }

    /// The candidate sequence: deterministic pseudo-random point indices.
    fn candidate_ids(&self) -> Vec<usize> {
        (0..self.candidates)
            .map(|c| (c * 2_654_435_761 + 12_345) % self.n)
            .collect()
    }

    fn dist(points: &[f32], dims: usize, a: usize, b: usize) -> f32 {
        (0..dims)
            .map(|d| {
                let diff = points[a * dims + d] - points[b * dims + d];
                diff * diff
            })
            .sum()
    }

    /// Sequential reference: runs the same facility-opening sweep and
    /// returns each point's final assignment cost.
    pub fn reference(&self) -> Vec<f32> {
        let points = self.points();
        let mut cost: Vec<f32> = (0..self.n)
            .map(|i| Self::dist(&points, self.dims, i, 0))
            .collect();
        cost[0] = 0.0;
        for cand in self.candidate_ids() {
            let gains: Vec<f32> = (0..self.n)
                .map(|i| {
                    let d = Self::dist(&points, self.dims, i, cand);
                    (cost[i] - d).max(0.0)
                })
                .collect();
            let total: f32 = gains.iter().sum();
            if total > FACILITY_COST {
                for i in 0..self.n {
                    if gains[i] > 0.0 {
                        cost[i] -= gains[i];
                    }
                }
            }
        }
        cost
    }

    /// Runs the candidate sweep on `gpu`; host performs the open/close
    /// decision, mirroring Rodinia's CPU-GPU split.
    pub fn launch(&self, gpu: &mut Gpu) -> (KernelStats, Vec<f32>) {
        let points = self.points();
        let (n, dims) = (self.n, self.dims);
        // Transposed layout for coalescing.
        let mut tpoints = vec![0.0f32; n * dims];
        for i in 0..n {
            for d in 0..dims {
                tpoints[d * n + i] = points[i * dims + d];
            }
        }
        let pts = gpu.mem_mut().alloc_f32("sc-points-t", &tpoints);
        let mut cost: Vec<f32> = (0..n)
            .map(|i| Self::dist(&points, dims, i, 0))
            .collect();
        cost[0] = 0.0;
        let cost_buf = gpu.mem_mut().alloc_f32("sc-cost", &cost);
        let gain_buf = gpu.mem_mut().alloc_f32_zeroed("sc-gain", n);
        let mut stats: Option<KernelStats> = None;
        for cand in self.candidate_ids() {
            let kern = PgainKernel {
                points: pts,
                cost: cost_buf,
                gain: gain_buf,
                n,
                dims,
                cand,
            };
            let s = gpu.launch(&kern);
            match &mut stats {
                None => stats = Some(s),
                Some(acc) => acc.merge(&s),
            }
            let gains = gpu.mem_mut().copy_out_f32(gain_buf);
            let total: f32 = gains.iter().sum();
            if total > FACILITY_COST {
                let mut cost = gpu.mem().read_f32(cost_buf);
                for i in 0..n {
                    if gains[i] > 0.0 {
                        cost[i] -= gains[i];
                    }
                }
                gpu.mem_mut().write_f32(cost_buf, &cost);
            }
        }
        let final_cost = gpu.mem().read_f32(cost_buf);
        (stats.expect("candidates evaluated"), final_cost)
    }

    /// Convenience wrapper returning only statistics.
    pub fn run(&self, gpu: &mut Gpu) -> KernelStats {
        self.launch(gpu).0
    }
}

struct PgainKernel {
    points: BufF32,
    cost: BufF32,
    gain: BufF32,
    n: usize,
    dims: usize,
    cand: usize,
}

impl Kernel for PgainKernel {
    fn name(&self) -> &str {
        "sc-pgain"
    }

    fn shape(&self) -> GridShape {
        GridShape::cover(self.n, 256)
    }

    fn shared_f32_words(&self) -> usize {
        self.dims
    }

    fn run_warp(&self, w: &mut WarpCtx<'_>) -> PhaseControl {
        let (n, dims, cand) = (self.n, self.dims, self.cand);
        let ltids = w.ltids();
        match w.phase() {
            0 => {
                // First `dims` threads of the block stage the candidate.
                let loaders: Vec<bool> = ltids.iter().map(|&l| l < dims).collect();
                let points = self.points;
                let lt = ltids.clone();
                w.if_active(&loaders, |w| {
                    let v = w.ld_f32(points, |lane, _| {
                        (lt[lane] < dims).then_some(lt[lane] * n + cand)
                    });
                    w.sh_st_f32(|lane, _| (lt[lane] < dims).then_some((lt[lane], v[lane])));
                });
                PhaseControl::Continue
            }
            _ => {
                let tids = w.tids();
                let in_range: Vec<bool> = tids.iter().map(|&t| t < n).collect();
                let me = (self.points, self.cost, self.gain);
                w.if_active(&in_range, |w| {
                    let (points, cost, gain) = me;
                    let ws = w.warp_size();
                    let mut d = vec![0.0f32; ws];
                    for dim in 0..dims {
                        // Broadcast read of the staged candidate.
                        let cv = w.sh_ld_f32(|_, tid| (tid < n).then_some(dim));
                        let pv = w.ld_f32(points, |_, tid| (tid < n).then_some(dim * n + tid));
                        w.alu(6);
                        for lane in 0..ws {
                            let diff = pv[lane] - cv[lane];
                            d[lane] += diff * diff;
                        }
                    }
                    let cur = w.ld_f32(cost, |_, tid| (tid < n).then_some(tid));
                    w.alu(2);
                    let g: Vec<f32> = (0..ws).map(|l| (cur[l] - d[l]).max(0.0)).collect();
                    w.st_f32(gain, |lane, tid| (tid < n).then_some((tid, g[lane])));
                });
                PhaseControl::Done
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refimpl::max_rel_diff;
    use simt::{GpuConfig, MemSpace};

    #[test]
    fn matches_reference() {
        let sc = StreamCluster {
            n: 300,
            dims: 12,
            candidates: 5,
            seed: 2,
        };
        let want = sc.reference();
        let mut gpu = Gpu::new(GpuConfig::gpgpusim_default());
        let (_, got) = sc.launch(&mut gpu);
        assert!(max_rel_diff(&want, &got) < 1e-4);
    }

    #[test]
    fn opening_facilities_lowers_total_cost() {
        let sc = StreamCluster {
            n: 400,
            dims: 8,
            candidates: 6,
            seed: 3,
        };
        let points = sc.points();
        let initial: f32 = (0..sc.n)
            .map(|i| StreamCluster::dist(&points, sc.dims, i, 0))
            .sum();
        let final_cost: f32 = sc.reference().iter().sum();
        assert!(final_cost < initial, "{final_cost} !< {initial}");
        assert!(sc.reference().iter().all(|&c| c >= 0.0));
    }

    #[test]
    fn shared_memory_is_prominent() {
        let sc = StreamCluster::new(Scale::Tiny);
        let mut gpu = Gpu::new(GpuConfig::gpgpusim_default());
        let stats = sc.run(&mut gpu);
        let shared = stats.mem_mix.fraction(MemSpace::Shared);
        assert!(shared > 0.3, "shared fraction {shared:.3}");
    }
}

//! HotSpot: iterative thermal simulation on a structured grid
//! (Table I: 500×500 data points; Structured Grid dwarf, Physics
//! Simulation domain).
//!
//! The CUDA implementation tiles the grid into 16×16 blocks, stages each
//! tile plus its one-cell ghost zone in shared memory, computes the
//! stencil from shared memory, and writes the tile back — the
//! "ghost-zone" technique the paper cites. This gives HotSpot its
//! signature characterization: heavy shared-memory traffic, light global
//! traffic, almost no divergence, and consequently one of the highest
//! IPCs in the suite with little sensitivity to DRAM channel count.

use datasets::{grid, Scale};
use simt::{BufF32, Gpu, GridShape, Kernel, KernelStats, PhaseControl, WarpCtx};

/// Tile edge length (the CUDA `BLOCK_SIZE`).
const TILE: usize = 16;
/// Ambient temperature (K).
const AMBIENT: f32 = 323.15;

/// One stencil update, shared between the kernel and the reference.
#[inline]
fn update(t: f32, tn: f32, ts: f32, te: f32, tw: f32, p: f32) -> f32 {
    t + 0.001 * p + 0.1 * (tn + ts - 2.0 * t) + 0.1 * (te + tw - 2.0 * t)
        + 0.05 * (AMBIENT - t)
}

/// The HotSpot benchmark instance: grid size and iteration count.
#[derive(Debug, Clone)]
pub struct Hotspot {
    /// Grid edge length (rows = cols).
    pub n: usize,
    /// Number of stencil iterations (time steps).
    pub iterations: usize,
    /// Time steps computed per kernel launch (the ghost-zone pyramid
    /// height; 1 disables temporal blocking). Rodinia ships with the
    /// pyramid enabled — this knob exists for the ablation study.
    pub pyramid: usize,
    /// Input seed.
    pub seed: u64,
}

impl Hotspot {
    /// Standard instance for a scale (Table I uses 500×500; we round to
    /// the 512×512 tile-aligned grid).
    pub fn new(scale: Scale) -> Hotspot {
        Hotspot {
            n: scale.pick(64, 256, 512),
            iterations: scale.pick(2, 4, 6),
            pyramid: 2,
            seed: 42,
        }
    }

    /// The same instance with a different pyramid height (for the
    /// ghost-zone ablation).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= steps <= 4`.
    pub fn with_pyramid(self, steps: usize) -> Hotspot {
        assert!((1..=4).contains(&steps), "pyramid height out of range");
        Hotspot {
            pyramid: steps,
            ..self
        }
    }

    /// Sequential reference implementation.
    pub fn reference(&self, temp: &[f32], power: &[f32]) -> Vec<f32> {
        let n = self.n;
        let mut src = temp.to_vec();
        let mut dst = vec![0.0f32; n * n];
        for _ in 0..self.iterations {
            for r in 0..n {
                for c in 0..n {
                    let at = |rr: isize, cc: isize| -> f32 {
                        let rr = rr.clamp(0, n as isize - 1) as usize;
                        let cc = cc.clamp(0, n as isize - 1) as usize;
                        src[rr * n + cc]
                    };
                    let (r1, c1) = (r as isize, c as isize);
                    dst[r * n + c] = update(
                        src[r * n + c],
                        at(r1 - 1, c1),
                        at(r1 + 1, c1),
                        at(r1, c1 + 1),
                        at(r1, c1 - 1),
                        power[r * n + c],
                    );
                }
            }
            std::mem::swap(&mut src, &mut dst);
        }
        src
    }

    /// Runs the benchmark on `gpu`, returning aggregate statistics and
    /// leaving the final temperature field in the returned buffer.
    pub fn launch(&self, gpu: &mut Gpu) -> (KernelStats, BufF32) {
        let (temp, power) = grid::hotspot_fields(self.n, self.n, self.seed);
        let a = gpu.mem_mut().alloc_f32("hotspot-a", &temp);
        let b = gpu.mem_mut().alloc_f32_zeroed("hotspot-b", self.n * self.n);
        let p = gpu.mem_mut().alloc_f32("hotspot-power", &power);
        let mut stats: Option<KernelStats> = None;
        let (mut src, mut dst) = (a, b);
        let mut remaining = self.iterations;
        while remaining > 0 {
            let steps = remaining.min(self.pyramid);
            let k = HotspotKernel {
                src,
                dst,
                power: p,
                n: self.n,
                steps,
                pyramid: self.pyramid,
            };
            let s = gpu.launch(&k);
            match &mut stats {
                None => stats = Some(s),
                Some(acc) => acc.merge(&s),
            }
            std::mem::swap(&mut src, &mut dst);
            remaining -= steps;
        }
        (stats.expect("at least one iteration"), src)
    }

    /// Convenience wrapper returning only statistics.
    pub fn run(&self, gpu: &mut Gpu) -> KernelStats {
        self.launch(gpu).0
    }
}

struct HotspotKernel {
    src: BufF32,
    dst: BufF32,
    power: BufF32,
    n: usize,
    /// Time steps this launch advances (1..=pyramid).
    steps: usize,
    /// Configured pyramid height (fixes the halo size).
    pyramid: usize,
}

impl HotspotKernel {
    fn halo(&self) -> usize {
        TILE + 2 * self.pyramid
    }
}

impl Kernel for HotspotKernel {
    fn name(&self) -> &str {
        "hotspot"
    }

    fn shape(&self) -> GridShape {
        let tiles = self.n.div_ceil(TILE);
        GridShape::new(tiles * tiles, TILE * TILE)
    }

    // Two ping-pong temperature tiles plus the power tile, each with the
    // pyramid ghost zone — the ghost-zone working set the paper's
    // "special SW techniques" row calls out.
    fn shared_f32_words(&self) -> usize {
        3 * self.halo() * self.halo()
    }

    fn regs_per_thread(&self) -> u32 {
        14
    }

    fn run_warp(&self, w: &mut WarpCtx<'_>) -> PhaseControl {
        let n = self.n;
        let tiles_x = n.div_ceil(TILE);
        let (tile_r, tile_c) = (w.block() / tiles_x, w.block() % tiles_x);
        let (row0, col0) = (tile_r * TILE, tile_c * TILE);
        let ltids = w.ltids();
        let halo = self.halo();
        let margin = self.pyramid;
        // Maps a halo-tile linear index to the clamped global element.
        let global_of = move |h: usize| -> usize {
            let hr = h / halo;
            let hc = h % halo;
            let r = (row0 + hr).saturating_sub(margin).min(n - 1);
            let c = (col0 + hc).saturating_sub(margin).min(n - 1);
            r * n + c
        };
        // Shared layout: ping tile, pong tile, power tile.
        let ping: usize = 0;
        let pong: usize = halo * halo;
        let power0: usize = 2 * halo * halo;
        let rounds = (halo * halo).div_ceil(TILE * TILE);
        let phase = w.phase();
        if phase == 0 {
            // Cooperative pyramid load: temperature and power.
            w.param(2); // tile origin from kernel parameters
            for round in 0..rounds {
                let base = round * TILE * TILE;
                let vals = w.ld_f32(self.src, |lane, _| {
                    let h = base + ltids[lane];
                    (h < halo * halo).then(|| global_of(h))
                });
                w.sh_st_f32(|lane, _| {
                    let h = base + ltids[lane];
                    (h < halo * halo).then_some((ping + h, vals[lane]))
                });
                let pw = w.ld_f32(self.power, |lane, _| {
                    let h = base + ltids[lane];
                    (h < halo * halo).then(|| global_of(h))
                });
                w.sh_st_f32(|lane, _| {
                    let h = base + ltids[lane];
                    (h < halo * halo).then_some((power0 + h, pw[lane]))
                });
            }
            return PhaseControl::Continue;
        }
        if phase <= self.steps {
            // Pyramid step `phase`: the valid interior shrinks by one
            // cell per step. Step k computes halo rows/cols
            // [k, halo - k), reading the previous buffer with
            // image-boundary-aware clamping (so edge tiles reproduce the
            // reference stencil exactly).
            let (from, to) = if phase % 2 == 1 { (ping, pong) } else { (pong, ping) };
            let k = phase;
            let edge = halo - 2 * k;
            let count = edge * edge;
            for round in 0..count.div_ceil(TILE * TILE) {
                let base = round * TILE * TILE;
                // The halo cell of this thread, if it is in range and
                // corresponds to a real image pixel.
                let cell = |lane: usize| -> Option<(usize, usize, usize)> {
                    let i = base + ltids[lane];
                    if i >= count {
                        return None;
                    }
                    let hr = k + i / edge;
                    let hc = k + i % edge;
                    let gr = (row0 + hr) as isize - margin as isize;
                    let gc = (col0 + hc) as isize - margin as isize;
                    if gr < 0 || gc < 0 || gr >= n as isize || gc >= n as isize {
                        return None;
                    }
                    Some((hr * halo + hc, gr as usize, gc as usize))
                };
                let active: Vec<bool> = (0..w.warp_size()).map(|l| cell(l).is_some()).collect();
                w.if_active(&active, |w| {
                    let t = w.sh_ld_f32(|lane, _| cell(lane).map(|(h, ..)| from + h));
                    let tn = w.sh_ld_f32(|lane, _| {
                        cell(lane).map(|(h, gr, _)| from + if gr == 0 { h } else { h - halo })
                    });
                    let ts = w.sh_ld_f32(|lane, _| {
                        cell(lane)
                            .map(|(h, gr, _)| from + if gr == n - 1 { h } else { h + halo })
                    });
                    let te = w.sh_ld_f32(|lane, _| {
                        cell(lane).map(|(h, _, gc)| from + if gc == n - 1 { h } else { h + 1 })
                    });
                    let tw = w.sh_ld_f32(|lane, _| {
                        cell(lane).map(|(h, _, gc)| from + if gc == 0 { h } else { h - 1 })
                    });
                    let pv = w.sh_ld_f32(|lane, _| cell(lane).map(|(h, ..)| power0 + h));
                    w.alu(30); // stencil arithmetic, clamps, coefficients
                    w.sfu(1);
                    let ws = w.warp_size();
                    let out: Vec<f32> = (0..ws)
                        .map(|l| update(t[l], tn[l], ts[l], te[l], tw[l], pv[l]))
                        .collect();
                    w.sh_st_f32(|lane, _| cell(lane).map(|(h, ..)| (to + h, out[lane])));
                });
            }
            return PhaseControl::Continue;
        }
        // Write-back phase: the TILE x TILE core from the final buffer.
        let final_buf = if self.steps % 2 == 1 { pong } else { ping };
        let in_grid: Vec<bool> = ltids
            .iter()
            .map(|&l| row0 + l / TILE < n && col0 + l % TILE < n)
            .collect();
        let dst = self.dst;
        let lt = ltids.clone();
        w.if_active(&in_grid, |w| {
            let vals = w.sh_ld_f32(|lane, _| {
                let l = lt[lane];
                Some(final_buf + (l / TILE + margin) * halo + (l % TILE + margin))
            });
            w.st_f32(dst, |lane, _| {
                let l = lt[lane];
                Some(((row0 + l / TILE) * n + (col0 + l % TILE), vals[lane]))
            });
        });
        PhaseControl::Done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refimpl::max_abs_diff;
    use simt::{GpuConfig, MemSpace};

    #[test]
    fn matches_reference() {
        let hs = Hotspot {
            n: 48,
            iterations: 3,
            pyramid: 2,
            seed: 7,
        };
        let (temp, power) = grid::hotspot_fields(hs.n, hs.n, hs.seed);
        let want = hs.reference(&temp, &power);
        let mut gpu = Gpu::new(GpuConfig::gpgpusim_default());
        let (_, out) = hs.launch(&mut gpu);
        let got = gpu.mem().read_f32(out);
        assert!(max_abs_diff(&want, &got) < 1e-4, "stencil mismatch");
    }

    #[test]
    fn characterization_is_shared_memory_heavy() {
        let hs = Hotspot::new(Scale::Tiny);
        let mut gpu = Gpu::new(GpuConfig::gpgpusim_default());
        let stats = hs.run(&mut gpu);
        let mix = &stats.mem_mix;
        assert!(
            mix.fraction(MemSpace::Shared) > mix.fraction(MemSpace::Global),
            "hotspot should be shared-memory dominated: {mix:?}"
        );
        // Nearly full warps: structured grid has no interior divergence.
        assert!(stats.occupancy.mean_lanes() > 28.0);
    }

    #[test]
    fn pyramid_heights_agree_and_save_bandwidth() {
        // Every pyramid height computes the same field; deeper pyramids
        // trade redundant compute for less DRAM traffic (the ghost-zone
        // trade-off of Meng & Skadron that the paper cites).
        let base = Hotspot {
            n: 64,
            iterations: 4,
            pyramid: 1,
            seed: 3,
        };
        let mut results = Vec::new();
        let mut traffic = Vec::new();
        for steps in [1usize, 2] {
            let hs = base.clone().with_pyramid(steps);
            let mut gpu = Gpu::new(simt::GpuConfig::gpgpusim_default());
            let (stats, out) = hs.launch(&mut gpu);
            results.push(gpu.mem().read_f32(out));
            traffic.push(stats.dram_bytes);
        }
        assert_eq!(results[0], results[1], "pyramid must be exact");
        assert!(
            traffic[1] < traffic[0],
            "2-step pyramid traffic {} !< 1-step {}",
            traffic[1],
            traffic[0]
        );
    }

    #[test]
    fn temperature_stays_physical() {
        let hs = Hotspot {
            n: 32,
            iterations: 4,
            pyramid: 2,
            seed: 1,
        };
        let mut gpu = Gpu::new(GpuConfig::gpgpusim_default());
        let (_, out) = hs.launch(&mut gpu);
        let got = gpu.mem().read_f32(out);
        assert!(got.iter().all(|&t| (250.0..400.0).contains(&t)));
    }
}

//! Stall-cycle conservation across the whole suite: for every Rodinia
//! GPU benchmark, the six stall-breakdown components must sum *exactly*
//! to the total SM cycles (`num_sms * cycles`) — every cycle of every
//! SM is attributed to exactly one category.

use datasets::Scale;
use rodinia_gpu::suite::all_benchmarks;
use simt::{Gpu, GpuConfig};

#[test]
fn stall_components_sum_to_sm_cycles_for_every_benchmark() {
    let cfg = GpuConfig::gpgpusim_default();
    for b in all_benchmarks(Scale::Tiny) {
        let mut gpu = Gpu::new(cfg.clone());
        let s = b.run_on(&mut gpu);
        assert!(s.cycles > 0, "{} must simulate cycles", b.abbrev());
        assert_eq!(
            s.stall.total(),
            cfg.num_sms as u64 * s.cycles,
            "{}: stall components must sum to total SM cycles \
             (issue={} mem={} bank={} div={} barrier={} empty={})",
            b.abbrev(),
            s.stall.issue,
            s.stall.mem_pending,
            s.stall.bank_conflict,
            s.stall.divergence,
            s.stall.barrier,
            s.stall.empty,
        );
        // Something must have issued, and no benchmark keeps all 28 SMs
        // busy every cycle at tiny scale.
        assert!(s.stall.issue > 0, "{} must have issue cycles", b.abbrev());
        assert!(
            s.stall.total() > s.stall.issue,
            "{} must have non-issue cycles",
            b.abbrev()
        );
    }
}

#[test]
fn conservation_holds_on_the_8sm_configuration() {
    // The Figure 1 low-end machine exercises different occupancy and
    // tail behavior; the invariant must hold there too.
    let cfg = GpuConfig::gpgpusim_8sm();
    for b in all_benchmarks(Scale::Tiny) {
        let mut gpu = Gpu::new(cfg.clone());
        let s = b.run_on(&mut gpu);
        assert_eq!(
            s.stall.total(),
            cfg.num_sms as u64 * s.cycles,
            "{}: conservation on 8 SMs",
            b.abbrev()
        );
    }
}

//! Property tests on the shared-cache simulator: the classic stack
//! properties LRU guarantees, plus bounds on the sharing metrics.

use proptest::prelude::*;
use tracekit::SharedCache;

proptest! {
    /// With the set count fixed, adding ways to an LRU cache never adds
    /// misses (inclusion across associativity).
    #[test]
    fn more_ways_never_miss_more(
        trace in proptest::collection::vec((0usize..4, 0u64..200_000), 10..400),
    ) {
        // 64 sets in both: 2-way = 8 kB, 4-way = 16 kB.
        let mut narrow = SharedCache::new(8 * 1024, 2, 64);
        let mut wide = SharedCache::new(16 * 1024, 4, 64);
        for &(tid, addr) in &trace {
            narrow.access(tid, addr);
            wide.access(tid, addr);
        }
        let (n, w) = (narrow.finish(), wide.finish());
        prop_assert!(w.misses <= n.misses, "4-way {} > 2-way {}", w.misses, n.misses);
    }

    /// Sharing metrics are well-formed fractions, and single-threaded
    /// traces never share.
    #[test]
    fn sharing_bounds(
        trace in proptest::collection::vec((0usize..8, 0u64..100_000), 1..300),
        single in proptest::bool::ANY,
    ) {
        let mut c = SharedCache::new(32 * 1024, 4, 64);
        for &(tid, addr) in &trace {
            c.access(if single { 0 } else { tid }, addr);
        }
        let s = c.finish();
        prop_assert!((0.0..=1.0).contains(&s.miss_rate()));
        prop_assert!((0.0..=1.0).contains(&s.shared_line_fraction()));
        prop_assert!((0.0..=1.0).contains(&s.shared_access_rate()));
        if single {
            prop_assert_eq!(s.shared_accesses, 0);
            prop_assert_eq!(s.shared_incarnations, 0);
        }
    }

    /// Replaying a trace after warming with itself can only hit (for a
    /// working set that fits).
    #[test]
    fn warm_replay_hits(lines in proptest::collection::vec(0u64..128, 1..64)) {
        // 128 lines of working set vs a 512-line cache.
        let mut c = SharedCache::new(32 * 1024, 4, 64);
        for &l in &lines {
            c.access(0, l * 64);
        }
        let cold = c.finish().misses;
        let mut c2 = SharedCache::new(32 * 1024, 4, 64);
        for _ in 0..2 {
            for &l in &lines {
                c2.access(0, l * 64);
            }
        }
        let warm = c2.finish();
        prop_assert_eq!(warm.misses, cold, "second pass must be all hits");
    }
}

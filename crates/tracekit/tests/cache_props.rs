//! Property tests on the shared-cache simulator: the classic stack
//! properties LRU guarantees, plus bounds on the sharing metrics,
//! eviction-order checks under full-set pressure, mid-residency
//! eviction accounting, and geometry edge cases.

use proptest::prelude::*;
use tracekit::{CpuCapture, ProfileConfig, SharedCache, TraceError};

fn cache(bytes: u64, ways: usize, line: u64) -> SharedCache {
    SharedCache::new(bytes, ways, line).expect("valid test geometry")
}

proptest! {
    /// With the set count fixed, adding ways to an LRU cache never adds
    /// misses (inclusion across associativity).
    #[test]
    fn more_ways_never_miss_more(
        trace in proptest::collection::vec((0usize..4, 0u64..200_000), 10..400),
    ) {
        // 64 sets in both: 2-way = 8 kB, 4-way = 16 kB.
        let mut narrow = cache(8 * 1024, 2, 64);
        let mut wide = cache(16 * 1024, 4, 64);
        for &(tid, addr) in &trace {
            narrow.access(tid, addr);
            wide.access(tid, addr);
        }
        let (n, w) = (narrow.finish(), wide.finish());
        prop_assert!(w.misses <= n.misses, "4-way {} > 2-way {}", w.misses, n.misses);
    }

    /// Sharing metrics are well-formed fractions, and single-threaded
    /// traces never share.
    #[test]
    fn sharing_bounds(
        trace in proptest::collection::vec((0usize..8, 0u64..100_000), 1..300),
        single in proptest::bool::ANY,
    ) {
        let mut c = cache(32 * 1024, 4, 64);
        for &(tid, addr) in &trace {
            c.access(if single { 0 } else { tid }, addr);
        }
        let s = c.finish();
        prop_assert!((0.0..=1.0).contains(&s.miss_rate()));
        prop_assert!((0.0..=1.0).contains(&s.shared_line_fraction()));
        prop_assert!((0.0..=1.0).contains(&s.shared_access_rate()));
        if single {
            prop_assert_eq!(s.shared_accesses, 0);
            prop_assert_eq!(s.shared_incarnations, 0);
        }
    }

    /// Replaying a trace after warming with itself can only hit (for a
    /// working set that fits).
    #[test]
    fn warm_replay_hits(lines in proptest::collection::vec(0u64..128, 1..64)) {
        // 128 lines of working set vs a 512-line cache.
        let mut c = cache(32 * 1024, 4, 64);
        for &l in &lines {
            c.access(0, l * 64);
        }
        let cold = c.finish().misses;
        let mut c2 = cache(32 * 1024, 4, 64);
        for _ in 0..2 {
            for &l in &lines {
                c2.access(0, l * 64);
            }
        }
        let warm = c2.finish();
        prop_assert_eq!(warm.misses, cold, "second pass must be all hits");
    }

    /// Eviction order under full-set pressure is strict LRU: against a
    /// reference model keeping per-set recency stacks, the packed
    /// branchless hot loop must miss on exactly the same accesses.
    #[test]
    fn eviction_order_matches_reference_lru(
        trace in proptest::collection::vec((0usize..4, 0u64..64), 50..500),
    ) {
        // 4 sets x 4 ways x 64 B = 1 kB: a 64-line address space keeps
        // every set under continuous replacement pressure.
        let ways = 4;
        let sets = 4u64;
        let mut c = cache(1024, ways, 64);
        let mut model: Vec<Vec<u64>> = vec![Vec::new(); sets as usize];
        let mut model_misses = 0u64;
        for &(tid, lineno) in &trace {
            c.access_line(tid, lineno);
            let stack = &mut model[(lineno % sets) as usize];
            match stack.iter().position(|&l| l == lineno) {
                Some(i) => {
                    stack.remove(i);
                }
                None => {
                    model_misses += 1;
                    if stack.len() == ways {
                        stack.remove(0); // least recently used
                    }
                }
            }
            stack.push(lineno); // most recently used on top
        }
        let s = c.finish();
        prop_assert_eq!(s.misses, model_misses, "LRU victim selection diverged");
    }

    /// Mid-residency eviction accounting: every fill is one incarnation,
    /// shared incarnations count residencies (not lines) touched by two
    /// or more threads, and finish() flushes live residencies exactly
    /// once — so incarnations == misses always, even when lines are
    /// evicted while shared and refilled privately.
    #[test]
    fn mid_residency_eviction_accounting(
        trace in proptest::collection::vec((0usize..8, 0u64..32), 20..400),
    ) {
        // One set, 2 ways: maximal eviction churn on a tiny line space.
        let mut c = cache(128, 2, 64);
        let mut resident: Vec<(u64, u8)> = Vec::new(); // (lineno, thread mask), LRU first
        let mut shared_finished = 0u64;
        let mut shared_accesses = 0u64;
        for &(tid, lineno) in &trace {
            c.access_line(tid, lineno);
            let tbit = 1u8 << (tid % 8);
            match resident.iter().position(|&(l, _)| l == lineno) {
                Some(i) => {
                    let (_, mask) = resident.remove(i);
                    let mask = mask | tbit;
                    if mask.count_ones() >= 2 {
                        shared_accesses += 1;
                    }
                    resident.push((lineno, mask));
                }
                None => {
                    if resident.len() == 2 {
                        let (_, mask) = resident.remove(0);
                        if mask.count_ones() >= 2 {
                            shared_finished += 1;
                        }
                    }
                    resident.push((lineno, tbit));
                }
            }
        }
        for &(_, mask) in &resident {
            if mask.count_ones() >= 2 {
                shared_finished += 1;
            }
        }
        let s = c.finish();
        prop_assert_eq!(s.incarnations, s.misses, "every fill is one residency");
        prop_assert_eq!(s.shared_incarnations, shared_finished);
        prop_assert_eq!(s.shared_accesses, shared_accesses);
    }

    /// Geometry validation over the whole parameter lattice: power-of-two
    /// sets and lines succeed, everything else fails with the right
    /// typed error, and construction never panics.
    #[test]
    fn geometry_edge_cases(
        bytes in 0u64..1 << 22,
        ways in 0usize..9,
        line_log in 0u32..9,
        line_off in 0u64..3,
    ) {
        let line = (1u64 << line_log) + line_off; // pow2 and near-pow2
        match SharedCache::new(bytes, ways, line) {
            Ok(c) => {
                prop_assert!(line.is_power_of_two());
                let denom = ways as u64 * line;
                let sets = bytes / denom;
                prop_assert!(sets >= 1 && sets.is_power_of_two());
                prop_assert_eq!(c.capacity(), bytes);
            }
            Err(TraceError::LineNotPowerOfTwo { line: l }) => {
                prop_assert_eq!(l, line);
                prop_assert!(!line.is_power_of_two());
            }
            Err(TraceError::CacheTooSmall { .. }) => {
                let denom = ways as u64 * line;
                prop_assert!(denom == 0 || bytes / denom == 0);
            }
            Err(TraceError::SetsNotPowerOfTwo { sets }) => {
                prop_assert_eq!(sets as u64, bytes / (ways as u64 * line));
                prop_assert!(!sets.is_power_of_two());
            }
            Err(e) => prop_assert!(false, "unexpected error {e}"),
        }
    }

    /// The packed trace replay reproduces the direct simulation on
    /// arbitrary synthetic workload shapes (sizes straddle lines).
    #[test]
    fn replay_equals_direct_on_random_traces(
        refs in proptest::collection::vec((0usize..6, 0u64..50_000, 1u8..65), 1..300),
    ) {
        use tracekit::{profile, CpuWorkload, Profiler};

        struct Replay(Vec<(usize, u64, u8)>);
        impl CpuWorkload for Replay {
            fn name(&self) -> &'static str { "replay-prop" }
            fn run(&self, prof: &mut Profiler) {
                let base = prof.alloc("data", 64 * 1024);
                let refs = self.0.clone();
                prof.parallel(|t| {
                    for &(tid, addr, size) in &refs {
                        if tid == t.tid() {
                            t.read(base + addr, size);
                        }
                    }
                });
            }
        }

        let cfg = ProfileConfig {
            threads: 6,
            cache_sizes: vec![1024, 16 * 1024],
            quantum: 5,
            ..ProfileConfig::default()
        };
        let w = Replay(refs);
        let direct = profile(&w, &cfg).expect("direct");
        let cap = CpuCapture::capture(&w, &cfg).expect("capture");
        let stats = cap.replay_all(&cfg.cache_sizes).expect("replay");
        prop_assert_eq!(direct, cap.profile_with(stats));
    }
}

//! Instruction-mix accounting (the paper's `mix-mt` Pin tool).

/// Counts of retired instructions by category.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InstrMix {
    /// Arithmetic/logic instructions.
    pub alu: u64,
    /// Branch instructions.
    pub branches: u64,
    /// Memory reads.
    pub reads: u64,
    /// Memory writes.
    pub writes: u64,
}

/// One instruction category of [`InstrMix`], for per-category fraction
/// queries (the sibling of `simt::MemSpace` on the CPU side).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MixClass {
    /// Arithmetic/logic.
    Alu,
    /// Branches.
    Branch,
    /// Memory reads.
    Read,
    /// Memory writes.
    Write,
}

impl InstrMix {
    /// Total instructions.
    pub fn total(&self) -> u64 {
        self.alu + self.branches + self.reads + self.writes
    }

    /// Fraction of instructions in `class` — 0 when the mix is empty,
    /// mirroring the zero-total guard of `simt::MemMix::fraction` so an
    /// unprofiled workload can never poison downstream feature vectors
    /// with NaN.
    pub fn fraction(&self, class: MixClass) -> f64 {
        let t = self.total();
        if t == 0 {
            return 0.0;
        }
        let n = match class {
            MixClass::Alu => self.alu,
            MixClass::Branch => self.branches,
            MixClass::Read => self.reads,
            MixClass::Write => self.writes,
        };
        n as f64 / t as f64
    }

    /// Fractions `[alu, branch, read, write]` (zeros when empty) — the
    /// feature vector used for the Figure 7 PCA.
    pub fn fractions(&self) -> [f64; 4] {
        [
            self.fraction(MixClass::Alu),
            self.fraction(MixClass::Branch),
            self.fraction(MixClass::Read),
            self.fraction(MixClass::Write),
        ]
    }

    /// Total memory references.
    pub fn memory_refs(&self) -> u64 {
        self.reads + self.writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_sum_to_one() {
        let m = InstrMix {
            alu: 50,
            branches: 10,
            reads: 30,
            writes: 10,
        };
        let f = m.fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((f[0] - 0.5).abs() < 1e-12);
        assert_eq!(m.memory_refs(), 40);
    }

    #[test]
    fn empty_mix_is_safe() {
        assert_eq!(InstrMix::default().fractions(), [0.0; 4]);
        // Per-category queries share the same zero-total guard.
        for class in [MixClass::Alu, MixClass::Branch, MixClass::Read, MixClass::Write] {
            let f = InstrMix::default().fraction(class);
            assert_eq!(f, 0.0, "{class:?} must guard the zero total");
        }
    }

    #[test]
    fn per_class_fractions_match_vector() {
        let m = InstrMix {
            alu: 50,
            branches: 10,
            reads: 30,
            writes: 10,
        };
        let f = m.fractions();
        assert_eq!(m.fraction(MixClass::Alu), f[0]);
        assert_eq!(m.fraction(MixClass::Branch), f[1]);
        assert_eq!(m.fraction(MixClass::Read), f[2]);
        assert_eq!(m.fraction(MixClass::Write), f[3]);
    }
}

//! Instruction-mix accounting (the paper's `mix-mt` Pin tool).

/// Counts of retired instructions by category.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InstrMix {
    /// Arithmetic/logic instructions.
    pub alu: u64,
    /// Branch instructions.
    pub branches: u64,
    /// Memory reads.
    pub reads: u64,
    /// Memory writes.
    pub writes: u64,
}

impl InstrMix {
    /// Total instructions.
    pub fn total(&self) -> u64 {
        self.alu + self.branches + self.reads + self.writes
    }

    /// Fractions `[alu, branch, read, write]` (zeros when empty) — the
    /// feature vector used for the Figure 7 PCA.
    pub fn fractions(&self) -> [f64; 4] {
        let t = self.total();
        if t == 0 {
            return [0.0; 4];
        }
        [
            self.alu as f64 / t as f64,
            self.branches as f64 / t as f64,
            self.reads as f64 / t as f64,
            self.writes as f64 / t as f64,
        ]
    }

    /// Total memory references.
    pub fn memory_refs(&self) -> u64 {
        self.reads + self.writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_sum_to_one() {
        let m = InstrMix {
            alu: 50,
            branches: 10,
            reads: 30,
            writes: 10,
        };
        let f = m.fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((f[0] - 0.5).abs() < 1e-12);
        assert_eq!(m.memory_refs(), 40);
    }

    #[test]
    fn empty_mix_is_safe() {
        assert_eq!(InstrMix::default().fractions(), [0.0; 4]);
    }
}

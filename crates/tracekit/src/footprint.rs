//! Instruction and data footprints (the paper's Figures 11 and 12):
//! distinct 64-byte instruction blocks and 4 kB data blocks touched over
//! the whole execution.

use std::collections::HashSet;

/// Block-granular footprint accumulators.
#[derive(Debug, Clone, Default)]
pub struct Footprints {
    instr_blocks: HashSet<u64>,
    data_blocks: HashSet<u64>,
}

/// Instruction-block granularity (bytes).
pub const INSTR_BLOCK: u64 = 64;
/// Data-block granularity (bytes).
pub const DATA_BLOCK: u64 = 4096;

impl Footprints {
    /// Creates empty footprints.
    pub fn new() -> Footprints {
        Footprints::default()
    }

    /// Marks the instruction bytes `[base, base + len)` as executed.
    pub fn touch_code(&mut self, base: u64, len: u64) {
        let first = base / INSTR_BLOCK;
        let last = (base + len.max(1) - 1) / INSTR_BLOCK;
        for b in first..=last {
            self.instr_blocks.insert(b);
        }
    }

    /// Marks the data bytes `[addr, addr + size)` as touched.
    pub fn touch_data(&mut self, addr: u64, size: u64) {
        let first = addr / DATA_BLOCK;
        let last = (addr + size.max(1) - 1) / DATA_BLOCK;
        for b in first..=last {
            self.data_blocks.insert(b);
        }
    }

    /// Number of distinct 64-byte instruction blocks executed.
    pub fn instr_blocks(&self) -> usize {
        self.instr_blocks.len()
    }

    /// Number of distinct 4 kB data blocks touched.
    pub fn data_blocks(&self) -> usize {
        self.data_blocks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_blocks_count_distinct() {
        let mut f = Footprints::new();
        f.touch_code(0, 256); // blocks 0..=3
        f.touch_code(128, 64); // already covered
        f.touch_code(1024, 1); // block 16
        assert_eq!(f.instr_blocks(), 5);
    }

    #[test]
    fn data_blocks_are_4kb() {
        let mut f = Footprints::new();
        f.touch_data(0, 4);
        f.touch_data(4095, 2); // straddles into block 1
        f.touch_data(8192, 1);
        assert_eq!(f.data_blocks(), 3);
    }

    #[test]
    fn empty_is_zero() {
        let f = Footprints::new();
        assert_eq!(f.instr_blocks(), 0);
        assert_eq!(f.data_blocks(), 0);
    }
}

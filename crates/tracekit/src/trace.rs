//! Capture-once / replay-many memory traces.
//!
//! The direct path ([`crate::profile()`]) pushes every interleaved memory
//! reference through all eight cache capacities as it is generated —
//! O(events x capacities) cache work per workload, repeated from
//! scratch on every study run. This module splits that into:
//!
//! 1. **capture** — run the workload once under a capture-mode
//!    [`Profiler`], recording the line-granular reference stream as
//!    packed `(lineno << 8) | tid` words (mix, footprints and event
//!    counts are finalized here too; they do not depend on capacity);
//! 2. **replay** — feed the packed words to a single [`SharedCache`]
//!    per capacity. Replays are independent, so the study engine can
//!    fan them out over its worker pool.
//!
//! Because the packed words record exactly the `(tid, lineno)` pairs
//! the direct sink would have fed each cache — including the second
//! line of a straddling access — each replayed cache observes the
//! byte-identical access sequence, and [`CacheStats`] come out equal to
//! the direct path's. `tests` below prove it; the study-level
//! determinism is re-proven per workload in
//! `tests/cpu_replay_determinism.rs` at the workspace root.

use crate::cache::{CacheStats, SharedCache};
use crate::error::TraceError;
use crate::profile::{CpuWorkload, Profile, ProfileConfig, Profiler};

/// A workload's capture: everything capacity-independent (mix,
/// footprints, event count) plus the packed reference trace.
///
/// Captures are immutable once built; replaying takes `&self`, so one
/// capture can serve many concurrent replays behind an `Arc`.
#[derive(Debug, Clone)]
pub struct CpuCapture {
    base: Profile,
    words: Vec<u64>,
    ways: usize,
    line: u64,
}

impl CpuCapture {
    /// Runs `workload` once in capture mode.
    ///
    /// Emits a `tracekit.capture.{name}` span and bumps the
    /// `tracekit.captures` / `tracekit.capture.words` registry
    /// counters.
    ///
    /// # Errors
    ///
    /// A [`TraceError`] if the configuration is invalid; geometry is
    /// validated here (not at first replay) so misconfiguration
    /// surfaces before any work is done.
    pub fn capture(
        workload: &dyn CpuWorkload,
        cfg: &ProfileConfig,
    ) -> Result<CpuCapture, TraceError> {
        let _span = obs::span!("tracekit.capture.{}", workload.name());
        let mut prof = Profiler::new_capturing(cfg)?;
        workload.run(&mut prof);
        let (base, words) = prof.finish_capture(workload.name());
        let reg = obs::Registry::global();
        reg.add("tracekit.captures", 1);
        reg.add("tracekit.capture.words", words.len() as u64);
        Ok(CpuCapture {
            base,
            words,
            ways: cfg.ways,
            line: cfg.line,
        })
    }

    /// Workload name.
    pub fn name(&self) -> &str {
        &self.base.name
    }

    /// Packed trace length in words (one word per line-granular
    /// reference).
    pub fn words(&self) -> usize {
        self.words.len()
    }

    /// The raw packed trace: `(lineno << 8) | tid` per reference, in
    /// interleaved stream order (straddling accesses contribute two
    /// consecutive words).
    pub fn packed_words(&self) -> &[u64] {
        &self.words
    }

    /// The capture's capacity-independent base [`Profile`] (its
    /// `cache_stats` is empty; replays fill one in via
    /// [`profile_with`](CpuCapture::profile_with)).
    pub fn base(&self) -> &Profile {
        &self.base
    }

    /// Replay-geometry associativity baked into the capture.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Replay-geometry line size baked into the capture.
    pub fn line(&self) -> u64 {
        self.line
    }

    /// Reassembles a capture from its parts — the inverse of reading
    /// [`base`](CpuCapture::base) / [`packed_words`](CpuCapture::packed_words)
    /// / [`ways`](CpuCapture::ways) / [`line`](CpuCapture::line), for
    /// the persistent-store codec in [`crate::serdes`]. A capture
    /// rebuilt from a faithfully stored round trip replays
    /// byte-identically to the original.
    pub fn from_parts(base: Profile, words: Vec<u64>, ways: usize, line: u64) -> CpuCapture {
        CpuCapture {
            base,
            words,
            ways,
            line,
        }
    }

    /// Replays the trace against one cache capacity.
    ///
    /// Emits a `tracekit.replay.{name}` span and bumps the
    /// `tracekit.replays` registry counter.
    ///
    /// # Errors
    ///
    /// A [`TraceError`] if `bytes` is not a valid geometry with the
    /// captured associativity and line size.
    pub fn replay(&self, bytes: u64) -> Result<CacheStats, TraceError> {
        let _span = obs::span!("tracekit.replay.{}", self.base.name);
        let mut cache = SharedCache::new(bytes, self.ways, self.line)?;
        for &w in &self.words {
            cache.access_line((w & 0xff) as usize, w >> 8);
        }
        obs::Registry::global().add("tracekit.replays", 1);
        Ok(cache.finish())
    }

    /// Replays every capacity in `sizes`, in order.
    ///
    /// # Errors
    ///
    /// The first [`TraceError`] from a replay.
    pub fn replay_all(&self, sizes: &[u64]) -> Result<Vec<CacheStats>, TraceError> {
        sizes.iter().map(|&b| self.replay(b)).collect()
    }

    /// Assembles a full [`Profile`] from this capture plus
    /// already-replayed cache stats (in the study's capacity order).
    pub fn profile_with(&self, cache_stats: Vec<CacheStats>) -> Profile {
        Profile {
            cache_stats,
            ..self.base.clone()
        }
    }
}

/// Capture + sequential full-sweep replay: the drop-in equivalent of
/// [`crate::profile()`] through the trace pipeline. Produces a profile
/// byte-identical to the direct path's.
///
/// # Errors
///
/// A [`TraceError`] if the configuration is invalid.
pub fn profile_via_replay(
    workload: &dyn CpuWorkload,
    cfg: &ProfileConfig,
) -> Result<Profile, TraceError> {
    let cap = CpuCapture::capture(workload, cfg)?;
    let stats = cap.replay_all(&cfg.cache_sizes)?;
    Ok(cap.profile_with(stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::profile;
    use crate::tracer::ThreadTracer;

    /// A workload exercising sharing, straddles, and serial regions.
    struct Mixed;

    impl CpuWorkload for Mixed {
        fn name(&self) -> &'static str {
            "mixed"
        }
        fn run(&self, prof: &mut Profiler) {
            let shared = prof.alloc("shared", 64 * 64);
            let private = prof.alloc("private", 4 * 4096);
            let code = prof.code_region("kernel", 400);
            prof.serial(|t: &mut ThreadTracer| {
                t.exec(code);
                // Straddling access: 8 bytes across a line boundary.
                t.write(shared + 60, 8);
            });
            prof.parallel(|t| {
                t.exec(code);
                for i in 0..64u64 {
                    t.read(shared + i * 64, 4);
                    t.update(private + t.tid() as u64 * 4096 + i * 8, 8, 1);
                    t.branch(1);
                }
            });
        }
    }

    fn cfg() -> ProfileConfig {
        ProfileConfig {
            threads: 4,
            cache_sizes: vec![1024, 8 * 1024, 256 * 1024],
            quantum: 7,
            ..ProfileConfig::default()
        }
    }

    #[test]
    fn replay_is_byte_identical_to_direct() {
        let direct = profile(&Mixed, &cfg()).expect("direct profile");
        let replayed = profile_via_replay(&Mixed, &cfg()).expect("replayed profile");
        assert_eq!(direct, replayed);
    }

    #[test]
    fn capture_is_reusable_across_capacities() {
        let cap = CpuCapture::capture(&Mixed, &cfg()).expect("capture");
        assert!(cap.words() > 0);
        let a = cap.replay(8 * 1024).expect("replay");
        let b = cap.replay(8 * 1024).expect("replay again");
        assert_eq!(a, b, "replay does not mutate the capture");
        let direct = profile(&Mixed, &cfg()).expect("direct");
        assert_eq!(&a, direct.at_capacity(8 * 1024));
    }

    #[test]
    fn trace_words_pack_tid_in_low_byte() {
        let cap = CpuCapture::capture(&Mixed, &cfg()).expect("capture");
        // Every recorded thread id must be one of the configured ones.
        for &w in &cap.words {
            assert!((w & 0xff) < 4, "tid {} out of range", w & 0xff);
        }
    }

    #[test]
    fn capture_validates_geometry_upfront() {
        let bad = ProfileConfig {
            cache_sizes: vec![48 * 1024],
            ..cfg()
        };
        assert_eq!(
            CpuCapture::capture(&Mixed, &bad).unwrap_err(),
            TraceError::SetsNotPowerOfTwo { sets: 192 }
        );
    }

    #[test]
    fn replay_rejects_bad_capacity() {
        let cap = CpuCapture::capture(&Mixed, &cfg()).expect("capture");
        assert!(matches!(
            cap.replay(48 * 1024),
            Err(TraceError::SetsNotPowerOfTwo { .. })
        ));
    }

    #[test]
    fn capture_publishes_counters() {
        let before = obs::Registry::global().counter("tracekit.captures");
        let cap = CpuCapture::capture(&Mixed, &cfg()).expect("capture");
        let _ = cap.replay(8 * 1024).expect("replay");
        let reg = obs::Registry::global();
        assert!(reg.counter("tracekit.captures") > before);
        assert!(reg.counter("tracekit.capture.words") >= cap.words() as u64);
        assert!(reg.counter("tracekit.replays") >= 1);
    }
}

//! The one-pass profiling driver: runs a workload's logical threads,
//! interleaves their events deterministically, and feeds every
//! configured cache capacity plus the mix/footprint collectors
//! simultaneously.
//!
//! The driver has two sinks for memory references: the **direct** sink
//! feeds all configured [`SharedCache`] capacities as events are
//! applied (the seed path), and the **capture** sink records the
//! line-granular reference stream into a packed trace instead, for the
//! replay pipeline in [`crate::trace`]. Both sinks see the identical
//! interleaved stream, which is what makes replay byte-identical.

use crate::cache::{validate_geometry, CacheStats, SharedCache};
use crate::error::TraceError;
use crate::footprint::Footprints;
use crate::mix::InstrMix;
use crate::tracer::{Ev, ThreadTracer};

/// Profiling configuration (defaults follow Bienia et al. / the paper:
/// 8 threads, a shared 4-way 64-byte-line cache at eight capacities from
/// 128 kB to 16 MB).
#[derive(Debug, Clone)]
pub struct ProfileConfig {
    /// Logical threads per parallel region.
    pub threads: usize,
    /// Cache capacities (bytes) simulated in one pass.
    pub cache_sizes: Vec<u64>,
    /// Cache associativity.
    pub ways: usize,
    /// Cache line size in bytes.
    pub line: u64,
    /// Round-robin interleaving quantum, in events.
    pub quantum: usize,
}

impl Default for ProfileConfig {
    fn default() -> ProfileConfig {
        ProfileConfig {
            threads: 8,
            cache_sizes: (0..8).map(|i| (128 * 1024u64) << i).collect(),
            ways: 4,
            line: 64,
            quantum: 1000,
        }
    }
}

/// Largest thread count the packed trace word can address (thread ids
/// live in the low byte of each trace word).
pub const MAX_THREADS: usize = 256;

/// A workload that can be profiled by [`profile`].
///
/// `Send + Sync` is a supertrait so workload corpora can be shared
/// across the study engine's capture workers, mirroring
/// `GpuBenchmark` on the simulator side.
pub trait CpuWorkload: Send + Sync {
    /// Workload name.
    fn name(&self) -> &'static str;

    /// Emits the workload's computation through `prof`.
    fn run(&self, prof: &mut Profiler);
}

/// The collected characteristics of one workload run.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Workload name.
    pub name: String,
    /// Instruction mix.
    pub mix: InstrMix,
    /// Per-capacity cache statistics, ordered as in
    /// [`ProfileConfig::cache_sizes`].
    pub cache_stats: Vec<CacheStats>,
    /// Distinct 64-byte instruction blocks executed (Figure 11).
    pub instr_blocks: usize,
    /// Distinct 4 kB data blocks touched (Figure 12).
    pub data_blocks: usize,
    /// Total events processed.
    pub events: u64,
}

impl Profile {
    /// The cache stats for a given capacity.
    ///
    /// # Panics
    ///
    /// Panics if the capacity was not simulated.
    pub fn at_capacity(&self, bytes: u64) -> &CacheStats {
        self.cache_stats
            .iter()
            .find(|s| s.capacity == bytes)
            .unwrap_or_else(|| panic!("capacity {bytes} was not simulated"))
    }
}

/// Where the interleaved memory-reference stream goes.
#[derive(Debug)]
enum Sink {
    /// Feed every configured cache capacity as references arrive.
    Direct(Vec<SharedCache>),
    /// Record packed `(lineno << 8) | tid` words for later replay.
    Capture(Vec<u64>),
}

/// The instrumentation context a workload runs against.
#[derive(Debug)]
pub struct Profiler {
    cfg: ProfileConfig,
    sink: Sink,
    mix: InstrMix,
    footprints: Footprints,
    regions: Vec<(u64, u64)>,
    next_data: u64,
    next_code: u64,
    events: u64,
}

/// Base of the (synthetic) code address space, disjoint from data.
const CODE_BASE: u64 = 1 << 40;

fn check_threads(threads: usize) -> Result<(), TraceError> {
    if threads > MAX_THREADS {
        return Err(TraceError::TooManyThreads {
            threads,
            max: MAX_THREADS,
        });
    }
    Ok(())
}

impl Profiler {
    /// Creates a direct-mode profiler with the given configuration.
    ///
    /// # Errors
    ///
    /// A [`TraceError`] if any configured cache geometry is invalid or
    /// the thread count exceeds [`MAX_THREADS`].
    pub fn new(cfg: &ProfileConfig) -> Result<Profiler, TraceError> {
        check_threads(cfg.threads)?;
        let caches = cfg
            .cache_sizes
            .iter()
            .map(|&b| SharedCache::new(b, cfg.ways, cfg.line))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Profiler::with_sink(cfg, Sink::Direct(caches)))
    }

    /// Creates a capture-mode profiler: memory references are recorded
    /// instead of simulated. Validates the same geometries as [`new`]
    /// so a bad configuration fails at capture, not first replay.
    ///
    /// [`new`]: Profiler::new
    pub(crate) fn new_capturing(cfg: &ProfileConfig) -> Result<Profiler, TraceError> {
        check_threads(cfg.threads)?;
        for &b in &cfg.cache_sizes {
            validate_geometry(b, cfg.ways, cfg.line)?;
        }
        Ok(Profiler::with_sink(cfg, Sink::Capture(Vec::new())))
    }

    fn with_sink(cfg: &ProfileConfig, sink: Sink) -> Profiler {
        Profiler {
            sink,
            cfg: cfg.clone(),
            mix: InstrMix::default(),
            footprints: Footprints::new(),
            regions: Vec::new(),
            next_data: 0,
            next_code: CODE_BASE,
            events: 0,
        }
    }

    /// Number of logical threads in a parallel region.
    pub fn threads(&self) -> usize {
        self.cfg.threads
    }

    /// Reserves `bytes` of data address space; returns the base address.
    /// Allocations are page-aligned so footprints are clean.
    pub fn alloc(&mut self, _name: &str, bytes: u64) -> u64 {
        let base = self.next_data;
        self.next_data += bytes.max(1).div_ceil(4096) * 4096;
        base
    }

    /// Declares a code region of `bytes` of instructions (a function or
    /// loop nest); returns its id for [`ThreadTracer::exec`]. Region
    /// sizes model the relative code sizes of the real applications and
    /// drive the instruction-footprint measurement.
    pub fn code_region(&mut self, _name: &str, bytes: u64) -> u32 {
        let base = self.next_code;
        self.next_code += bytes.max(1).div_ceil(64) * 64;
        self.regions.push((base, bytes));
        (self.regions.len() - 1) as u32
    }

    /// Runs a parallel region: `f` is invoked once per logical thread,
    /// and the buffered event streams are interleaved round-robin with
    /// the configured quantum.
    pub fn parallel(&mut self, f: impl Fn(&mut ThreadTracer)) {
        let mut tracers: Vec<ThreadTracer> =
            (0..self.cfg.threads).map(ThreadTracer::new).collect();
        for t in &mut tracers {
            f(t);
        }
        self.drain(tracers);
    }

    /// Runs a serial (single-thread) region on logical thread 0.
    pub fn serial(&mut self, f: impl FnOnce(&mut ThreadTracer)) {
        let mut t = ThreadTracer::new(0);
        f(&mut t);
        self.drain(vec![t]);
    }

    fn drain(&mut self, mut tracers: Vec<ThreadTracer>) {
        let streams: Vec<(usize, Vec<Ev>)> = tracers
            .iter_mut()
            .map(|t| (t.tid(), t.take_events()))
            .collect();
        let q = self.cfg.quantum.max(1);
        let mut cursors = vec![0usize; streams.len()];
        loop {
            let mut progressed = false;
            for (i, (tid, evs)) in streams.iter().enumerate() {
                let start = cursors[i];
                let end = (start + q).min(evs.len());
                for ev in &evs[start..end] {
                    self.apply(*tid, *ev);
                }
                if end > start {
                    progressed = true;
                    cursors[i] = end;
                }
            }
            if !progressed {
                break;
            }
        }
    }

    fn apply(&mut self, tid: usize, ev: Ev) {
        self.events += 1;
        match ev {
            Ev::Read { addr, size } => {
                self.mix.reads += 1;
                self.footprints.touch_data(addr, size as u64);
                self.access(tid, addr, size);
            }
            Ev::Write { addr, size } => {
                self.mix.writes += 1;
                self.footprints.touch_data(addr, size as u64);
                self.access(tid, addr, size);
            }
            Ev::Alu(n) => self.mix.alu += n as u64,
            Ev::Branch(n) => self.mix.branches += n as u64,
            Ev::Exec(region) => {
                let (base, len) = self.regions[region as usize];
                self.footprints.touch_code(base, len);
            }
        }
    }

    fn access(&mut self, tid: usize, addr: u64, size: u8) {
        let line = self.cfg.line;
        let first = addr / line;
        let last = (addr + size.max(1) as u64 - 1) / line;
        match &mut self.sink {
            Sink::Direct(caches) => {
                for c in caches.iter_mut() {
                    c.access_line(tid, first);
                    // A straddling access touches the next line too.
                    if last != first {
                        c.access_line(tid, last);
                    }
                }
            }
            Sink::Capture(words) => {
                words.push((first << 8) | tid as u64);
                if last != first {
                    words.push((last << 8) | tid as u64);
                }
            }
        }
    }

    /// Finalizes the run into a [`Profile`].
    ///
    /// Aggregate counters are published to the global [`obs::Registry`]
    /// once here (not per-event, keeping the hot path untouched). In
    /// capture mode the returned profile has no cache stats — the
    /// crate-internal `finish_capture` also returns the packed trace.
    pub fn finish(self, name: &str) -> Profile {
        self.finish_capture(name).0
    }

    /// Finalizes the run, also returning the packed reference trace
    /// (empty in direct mode).
    pub(crate) fn finish_capture(self, name: &str) -> (Profile, Vec<u64>) {
        let reg = obs::Registry::global();
        reg.add("tracekit.events", self.events);
        reg.add("tracekit.reads", self.mix.reads);
        reg.add("tracekit.writes", self.mix.writes);
        reg.add("tracekit.alu", self.mix.alu);
        reg.add("tracekit.branches", self.mix.branches);
        let (cache_stats, words) = match self.sink {
            Sink::Direct(caches) => (
                caches.into_iter().map(SharedCache::finish).collect(),
                Vec::new(),
            ),
            Sink::Capture(words) => (Vec::new(), words),
        };
        (
            Profile {
                name: name.to_string(),
                mix: self.mix,
                cache_stats,
                instr_blocks: self.footprints.instr_blocks(),
                data_blocks: self.footprints.data_blocks(),
                events: self.events,
            },
            words,
        )
    }
}

/// Profiles `workload` under `cfg` in one pass (the direct path: all
/// capacities simulated simultaneously).
///
/// # Errors
///
/// A [`TraceError`] if the configuration is invalid (bad cache
/// geometry, too many threads).
pub fn profile(workload: &dyn CpuWorkload, cfg: &ProfileConfig) -> Result<Profile, TraceError> {
    let _span = obs::span!("tracekit.profile.{}", workload.name());
    let mut prof = Profiler::new(cfg)?;
    workload.run(&mut prof);
    Ok(prof.finish(workload.name()))
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Strided {
        lines: u64,
        passes: usize,
    }

    impl CpuWorkload for Strided {
        fn name(&self) -> &'static str {
            "strided"
        }
        fn run(&self, prof: &mut Profiler) {
            let data = prof.alloc("data", self.lines * 64);
            let code = prof.code_region("loop", 320);
            let (lines, passes) = (self.lines, self.passes);
            prof.parallel(|t| {
                t.exec(code);
                for _ in 0..passes {
                    for i in 0..lines {
                        t.read(data + i * 64, 4);
                        t.alu(2);
                    }
                }
            });
        }
    }

    fn small_cfg() -> ProfileConfig {
        ProfileConfig {
            threads: 4,
            cache_sizes: vec![4 * 1024, 64 * 1024, 1024 * 1024],
            quantum: 16,
            ..ProfileConfig::default()
        }
    }

    fn must_profile(w: &dyn CpuWorkload, cfg: &ProfileConfig) -> Profile {
        profile(w, cfg).expect("valid test configuration")
    }

    #[test]
    fn mix_counts_all_threads() {
        let p = must_profile(
            &Strided {
                lines: 100,
                passes: 2,
            },
            &small_cfg(),
        );
        assert_eq!(p.mix.reads, 4 * 2 * 100);
        assert_eq!(p.mix.alu, 4 * 2 * 100 * 2);
        assert_eq!(p.mix.writes, 0);
    }

    #[test]
    fn miss_rate_decreases_with_capacity() {
        let p = must_profile(
            &Strided {
                lines: 512, // 32 kB working set
                passes: 4,
            },
            &small_cfg(),
        );
        let rates: Vec<f64> = p.cache_stats.iter().map(super::super::cache::CacheStats::miss_rate).collect();
        assert!(rates[0] > rates[1], "4k vs 64k: {rates:?}");
        assert!(rates[1] >= rates[2], "64k vs 1M: {rates:?}");
        // At 1 MB only the compulsory misses remain: 512 distinct lines
        // over 4 threads x 4 passes x 512 accesses = 1/16.
        assert!(rates[2] <= 0.0625 + 1e-9, "only compulsory misses: {rates:?}");
    }

    #[test]
    fn shared_data_is_detected() {
        // All threads read the same lines: lines become shared.
        let p = must_profile(
            &Strided {
                lines: 64,
                passes: 1,
            },
            &small_cfg(),
        );
        let s = p.at_capacity(1024 * 1024);
        assert!(s.shared_line_fraction() > 0.9, "{s:?}");
        assert!(s.shared_access_rate() > 0.5);
    }

    #[test]
    fn footprints_reflect_code_and_data() {
        let p = must_profile(
            &Strided {
                lines: 128, // 8 kB = 2 pages
                passes: 1,
            },
            &small_cfg(),
        );
        assert_eq!(p.instr_blocks, 5); // 320 B = 5 blocks
        assert_eq!(p.data_blocks, 2);
    }

    #[test]
    fn serial_region_uses_thread_zero() {
        struct Serial;
        impl CpuWorkload for Serial {
            fn name(&self) -> &'static str {
                "serial"
            }
            fn run(&self, prof: &mut Profiler) {
                let d = prof.alloc("d", 4096);
                prof.serial(|t| {
                    assert_eq!(t.tid(), 0);
                    t.write(d, 8);
                });
            }
        }
        let p = must_profile(&Serial, &small_cfg());
        assert_eq!(p.mix.writes, 1);
        let s = p.at_capacity(4 * 1024);
        assert_eq!(s.shared_accesses, 0);
    }

    #[test]
    fn determinism() {
        let cfg = small_cfg();
        let w = Strided {
            lines: 300,
            passes: 3,
        };
        let a = must_profile(&w, &cfg);
        let b = must_profile(&w, &cfg);
        assert_eq!(a, b, "profiles are fully deterministic");
    }

    #[test]
    fn bad_geometry_is_reported_not_panicked() {
        let cfg = ProfileConfig {
            cache_sizes: vec![48 * 1024],
            ..small_cfg()
        };
        let w = Strided { lines: 8, passes: 1 };
        assert_eq!(
            profile(&w, &cfg).unwrap_err(),
            crate::TraceError::SetsNotPowerOfTwo { sets: 192 }
        );
    }

    #[test]
    fn too_many_threads_is_reported() {
        let cfg = ProfileConfig {
            threads: 300,
            ..small_cfg()
        };
        let w = Strided { lines: 8, passes: 1 };
        assert_eq!(
            profile(&w, &cfg).unwrap_err(),
            crate::TraceError::TooManyThreads { threads: 300, max: MAX_THREADS }
        );
    }

    #[test]
    #[should_panic(expected = "was not simulated")]
    fn unknown_capacity_panics() {
        let p = must_profile(
            &Strided {
                lines: 8,
                passes: 1,
            },
            &small_cfg(),
        );
        let _ = p.at_capacity(999);
    }
}

//! The shared-cache simulator of Bienia et al.'s methodology: one cache
//! shared by all (8) cores, 4-way set-associative, 64-byte lines,
//! capacities swept from 128 kB to 16 MB.
//!
//! Besides misses per memory reference (the working-set metric), the
//! simulator tracks sharing: a resident line is *shared* once two or
//! more distinct threads have accessed it during its current residency,
//! and every access to such a line counts toward the shared-access rate.

/// A shared, set-associative, LRU cache with per-line thread masks.
#[derive(Debug, Clone)]
pub struct SharedCache {
    bytes: u64,
    ways: usize,
    line: u64,
    sets: usize,
    /// `sets * ways` entries; tag == u64::MAX is invalid.
    tags: Vec<u64>,
    stamps: Vec<u64>,
    masks: Vec<u8>,
    access_counts: Vec<u64>,
    clock: u64,
    accesses: u64,
    misses: u64,
    shared_accesses: u64,
    // Residency ("incarnation") accounting for the shared-line fraction.
    finished_incarnations: u64,
    finished_shared: u64,
}

impl SharedCache {
    /// Creates a cache of `bytes` capacity with `ways` associativity and
    /// `line`-byte lines.
    ///
    /// # Panics
    ///
    /// Panics unless the geometry yields a positive power-of-two set
    /// count.
    pub fn new(bytes: u64, ways: usize, line: u64) -> SharedCache {
        let sets = (bytes / (ways as u64 * line)) as usize;
        assert!(sets > 0, "cache smaller than one set");
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        let entries = sets * ways;
        SharedCache {
            bytes,
            ways,
            line,
            sets,
            tags: vec![u64::MAX; entries],
            stamps: vec![0; entries],
            masks: vec![0; entries],
            access_counts: vec![0; entries],
            clock: 0,
            accesses: 0,
            misses: 0,
            shared_accesses: 0,
            finished_incarnations: 0,
            finished_shared: 0,
        }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.bytes
    }

    /// Simulates one access by `tid` to byte address `addr`.
    pub fn access(&mut self, tid: usize, addr: u64) {
        self.clock += 1;
        self.accesses += 1;
        let lineno = addr / self.line;
        let set = (lineno % self.sets as u64) as usize;
        let base = set * self.ways;
        let tbit = 1u8 << (tid % 8);
        for w in 0..self.ways {
            let e = base + w;
            if self.tags[e] == lineno {
                self.stamps[e] = self.clock;
                self.masks[e] |= tbit;
                self.access_counts[e] += 1;
                if self.masks[e].count_ones() >= 2 {
                    self.shared_accesses += 1;
                }
                return;
            }
        }
        // Miss: evict LRU.
        self.misses += 1;
        let mut victim = base;
        for w in 1..self.ways {
            if self.stamps[base + w] < self.stamps[victim] {
                victim = base + w;
            }
        }
        if self.tags[victim] != u64::MAX {
            self.finish_incarnation(victim);
        }
        self.tags[victim] = lineno;
        self.stamps[victim] = self.clock;
        self.masks[victim] = tbit;
        self.access_counts[victim] = 1;
    }

    fn finish_incarnation(&mut self, e: usize) {
        self.finished_incarnations += 1;
        if self.masks[e].count_ones() >= 2 {
            self.finished_shared += 1;
        }
    }

    /// Finalizes and returns the statistics (flushing live residencies).
    pub fn finish(mut self) -> CacheStats {
        for e in 0..self.tags.len() {
            if self.tags[e] != u64::MAX {
                self.finish_incarnation(e);
            }
        }
        CacheStats {
            capacity: self.bytes,
            accesses: self.accesses,
            misses: self.misses,
            shared_accesses: self.shared_accesses,
            incarnations: self.finished_incarnations,
            shared_incarnations: self.finished_shared,
        }
    }
}

/// Final statistics of one cache capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Cache capacity in bytes.
    pub capacity: u64,
    /// Memory references simulated.
    pub accesses: u64,
    /// Cache misses.
    pub misses: u64,
    /// Accesses that hit a line already touched by ≥ 2 threads.
    pub shared_accesses: u64,
    /// Line residencies (fills) observed.
    pub incarnations: u64,
    /// Residencies touched by ≥ 2 threads.
    pub shared_incarnations: u64,
}

impl CacheStats {
    /// Misses per memory reference — the paper's working-set metric.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Fraction of line residencies shared between threads.
    pub fn shared_line_fraction(&self) -> f64 {
        if self.incarnations == 0 {
            0.0
        } else {
            self.shared_incarnations as f64 / self.incarnations as f64
        }
    }

    /// Accesses to shared lines per memory reference.
    pub fn shared_access_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.shared_accesses as f64 / self.accesses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss_accounting() {
        let mut c = SharedCache::new(8 * 1024, 4, 64);
        c.access(0, 0);
        c.access(0, 0);
        c.access(0, 64);
        let s = c.finish();
        assert_eq!(s.accesses, 3);
        assert_eq!(s.misses, 2);
        assert!((s.miss_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn sharing_detected_within_residency() {
        let mut c = SharedCache::new(8 * 1024, 4, 64);
        c.access(0, 0);
        c.access(1, 8); // same line, second thread -> shared access
        c.access(2, 16);
        c.access(0, 4096); // private line
        let s = c.finish();
        assert_eq!(s.shared_accesses, 2);
        assert_eq!(s.incarnations, 2);
        assert_eq!(s.shared_incarnations, 1);
        assert!((s.shared_line_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn eviction_resets_sharing() {
        // Direct-mapped-ish: 1 set x 4 ways x 64 B = 256 B cache.
        let mut c = SharedCache::new(256, 4, 64);
        c.access(0, 0);
        c.access(1, 0); // shared residency
        for i in 1..=4 {
            c.access(0, i * 256 * 64); // 4 conflicting lines evict line 0
        }
        c.access(1, 0); // refill by thread 1 alone
        let s = c.finish();
        assert_eq!(s.shared_incarnations, 1, "only the first residency was shared");
    }

    #[test]
    fn working_set_capture() {
        // A working set of 512 lines fits an 8-way 64 kB cache but
        // thrashes a 4 kB one.
        let mut small = SharedCache::new(4 * 1024, 4, 64);
        let mut large = SharedCache::new(64 * 1024, 4, 64);
        for pass in 0..4 {
            let _ = pass;
            for i in 0..512u64 {
                small.access(0, i * 64);
                large.access(0, i * 64);
            }
        }
        let (s, l) = (small.finish(), large.finish());
        assert!(l.miss_rate() < 0.26, "large cache captures the set");
        assert!(s.miss_rate() > 0.9, "small cache thrashes");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        let _ = SharedCache::new(48 * 1024, 4, 64);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Miss rate never increases with capacity (LRU inclusion holds
        /// for same-associativity... strictly it holds per set; with the
        /// same line size and doubling sets it can be violated in
        /// pathological cases, so we check the common monotone trend on
        /// small strided/looping traces where inclusion does hold).
        #[test]
        fn miss_counts_conserve(addrs in proptest::collection::vec(0u64..1_000_000, 1..500)) {
            let mut c = SharedCache::new(16 * 1024, 4, 64);
            for &a in &addrs {
                c.access(0, a);
            }
            let s = c.finish();
            prop_assert_eq!(s.accesses, addrs.len() as u64);
            prop_assert!(s.misses <= s.accesses);
            prop_assert!(s.shared_accesses == 0, "single thread never shares");
            prop_assert_eq!(s.shared_incarnations, 0);
        }

        /// Distinct lines accessed bounds misses from below (compulsory
        /// misses) and incarnations equal misses.
        #[test]
        fn compulsory_lower_bound(addrs in proptest::collection::vec(0u64..100_000, 1..300)) {
            let mut distinct: Vec<u64> = addrs.iter().map(|a| a / 64).collect();
            distinct.sort_unstable();
            distinct.dedup();
            let mut c = SharedCache::new(1024 * 1024, 4, 64);
            for &a in &addrs {
                c.access(1, a);
            }
            let s = c.finish();
            prop_assert!(s.misses >= distinct.len() as u64);
            prop_assert_eq!(s.incarnations, s.misses);
        }
    }
}

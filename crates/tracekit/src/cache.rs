//! The shared-cache simulator of Bienia et al.'s methodology: one cache
//! shared by all (8) cores, 4-way set-associative, 64-byte lines,
//! capacities swept from 128 kB to 16 MB.
//!
//! Besides misses per memory reference (the working-set metric), the
//! simulator tracks sharing: a resident line is *shared* once two or
//! more distinct threads have accessed it during its current residency,
//! and every access to such a line counts toward the shared-access rate.
//!
//! The hot loop is laid out for the replay path of the capture-once
//! pipeline (see [`crate::trace`]): per-entry state is two words — the
//! line tag, and a packed `stamp << 8 | thread_mask` word — the set
//! index is a mask of the line number, the address-to-line mapping is a
//! shift, and LRU victim selection is a branchless min-fold over the
//! packed stamps.

use crate::error::TraceError;

/// Bits of each packed meta word reserved for the thread mask.
const MASK_BITS: u32 = 8;
/// Mask extracting the thread bits of a packed meta word.
const THREAD_MASK: u64 = (1 << MASK_BITS) - 1;

/// A shared, set-associative, LRU cache with per-line thread masks.
#[derive(Debug, Clone)]
pub struct SharedCache {
    bytes: u64,
    ways: usize,
    line: u64,
    /// `sets - 1`: the set index is `lineno & set_mask`.
    set_mask: u64,
    /// `log2(line)`: the line number is `addr >> line_shift`.
    line_shift: u32,
    /// `sets * ways` entries; tag == u64::MAX is invalid.
    tags: Vec<u64>,
    /// `stamp << 8 | thread_mask`, one word per entry. The clock is
    /// bounded by the access count, so 56 stamp bits never overflow.
    meta: Vec<u64>,
    clock: u64,
    accesses: u64,
    misses: u64,
    shared_accesses: u64,
    // Residency ("incarnation") accounting for the shared-line fraction.
    finished_incarnations: u64,
    finished_shared: u64,
}

impl SharedCache {
    /// Creates a cache of `bytes` capacity with `ways` associativity and
    /// `line`-byte lines.
    ///
    /// # Errors
    ///
    /// [`TraceError::CacheTooSmall`] if the geometry yields no complete
    /// set, [`TraceError::SetsNotPowerOfTwo`] /
    /// [`TraceError::LineNotPowerOfTwo`] if set count or line size defeat
    /// the mask/shift index mapping.
    pub fn new(bytes: u64, ways: usize, line: u64) -> Result<SharedCache, TraceError> {
        validate_geometry(bytes, ways, line)?;
        let sets = (bytes / (ways as u64 * line)) as usize;
        let entries = sets * ways;
        Ok(SharedCache {
            bytes,
            ways,
            line,
            set_mask: sets as u64 - 1,
            line_shift: line.trailing_zeros(),
            tags: vec![u64::MAX; entries],
            meta: vec![0; entries],
            clock: 0,
            accesses: 0,
            misses: 0,
            shared_accesses: 0,
            finished_incarnations: 0,
            finished_shared: 0,
        })
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.bytes
    }

    /// Line size in bytes.
    pub fn line(&self) -> u64 {
        self.line
    }

    /// Simulates one access by `tid` to byte address `addr`.
    pub fn access(&mut self, tid: usize, addr: u64) {
        self.access_line(tid, addr >> self.line_shift);
    }

    /// Simulates one access by `tid` to cache line `lineno` — the hot
    /// entry point of the replay path, where the line number was
    /// computed once at capture time instead of per capacity.
    #[inline]
    pub fn access_line(&mut self, tid: usize, lineno: u64) {
        self.clock += 1;
        self.accesses += 1;
        let base = (lineno & self.set_mask) as usize * self.ways;
        let tbit = 1u64 << (tid as u32 & (MASK_BITS - 1));
        for e in base..base + self.ways {
            if self.tags[e] == lineno {
                let mask = (self.meta[e] | tbit) & THREAD_MASK;
                self.meta[e] = (self.clock << MASK_BITS) | mask;
                // mask & (mask - 1) != 0  <=>  >= 2 thread bits set.
                self.shared_accesses += u64::from(mask & (mask - 1) != 0);
                return;
            }
        }
        // Miss: evict LRU, selected by a branchless min-fold over the
        // packed stamps (the mask bits below the stamp never change the
        // ordering between distinct stamps, and equal stamps cannot
        // occur — the clock is unique per access).
        self.misses += 1;
        let mut victim = base;
        let mut best = self.meta[base] >> MASK_BITS;
        for e in base + 1..base + self.ways {
            let stamp = self.meta[e] >> MASK_BITS;
            let better = stamp < best;
            victim = if better { e } else { victim };
            best = if better { stamp } else { best };
        }
        if self.tags[victim] != u64::MAX {
            self.finish_incarnation(victim);
        }
        self.tags[victim] = lineno;
        self.meta[victim] = (self.clock << MASK_BITS) | tbit;
    }

    fn finish_incarnation(&mut self, e: usize) {
        self.finished_incarnations += 1;
        let mask = self.meta[e] & THREAD_MASK;
        self.finished_shared += u64::from(mask & (mask.wrapping_sub(1)) != 0);
    }

    /// Finalizes and returns the statistics (flushing live residencies).
    pub fn finish(mut self) -> CacheStats {
        for e in 0..self.tags.len() {
            if self.tags[e] != u64::MAX {
                self.finish_incarnation(e);
            }
        }
        CacheStats {
            capacity: self.bytes,
            accesses: self.accesses,
            misses: self.misses,
            shared_accesses: self.shared_accesses,
            incarnations: self.finished_incarnations,
            shared_incarnations: self.finished_shared,
        }
    }
}

/// Checks a cache geometry without allocating it: `bytes / (ways *
/// line)` must yield a positive power-of-two set count and `line` must
/// be a power of two (the hot loop maps addresses to lines with a shift
/// and lines to sets with a mask).
pub fn validate_geometry(bytes: u64, ways: usize, line: u64) -> Result<(), TraceError> {
    if !line.is_power_of_two() {
        return Err(TraceError::LineNotPowerOfTwo { line });
    }
    let denom = ways as u64 * line;
    if denom == 0 || bytes / denom == 0 {
        return Err(TraceError::CacheTooSmall { bytes, ways, line });
    }
    let sets = (bytes / denom) as usize;
    if !sets.is_power_of_two() {
        return Err(TraceError::SetsNotPowerOfTwo { sets });
    }
    Ok(())
}

/// Final statistics of one cache capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Cache capacity in bytes.
    pub capacity: u64,
    /// Memory references simulated.
    pub accesses: u64,
    /// Cache misses.
    pub misses: u64,
    /// Accesses that hit a line already touched by ≥ 2 threads.
    pub shared_accesses: u64,
    /// Line residencies (fills) observed.
    pub incarnations: u64,
    /// Residencies touched by ≥ 2 threads.
    pub shared_incarnations: u64,
}

impl CacheStats {
    /// Misses per memory reference — the paper's working-set metric.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Fraction of line residencies shared between threads.
    pub fn shared_line_fraction(&self) -> f64 {
        if self.incarnations == 0 {
            0.0
        } else {
            self.shared_incarnations as f64 / self.incarnations as f64
        }
    }

    /// Accesses to shared lines per memory reference.
    pub fn shared_access_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.shared_accesses as f64 / self.accesses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(bytes: u64) -> SharedCache {
        SharedCache::new(bytes, 4, 64).expect("valid geometry")
    }

    #[test]
    fn hit_and_miss_accounting() {
        let mut c = cache(8 * 1024);
        c.access(0, 0);
        c.access(0, 0);
        c.access(0, 64);
        let s = c.finish();
        assert_eq!(s.accesses, 3);
        assert_eq!(s.misses, 2);
        assert!((s.miss_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn sharing_detected_within_residency() {
        let mut c = cache(8 * 1024);
        c.access(0, 0);
        c.access(1, 8); // same line, second thread -> shared access
        c.access(2, 16);
        c.access(0, 4096); // private line
        let s = c.finish();
        assert_eq!(s.shared_accesses, 2);
        assert_eq!(s.incarnations, 2);
        assert_eq!(s.shared_incarnations, 1);
        assert!((s.shared_line_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn eviction_resets_sharing() {
        // Direct-mapped-ish: 1 set x 4 ways x 64 B = 256 B cache.
        let mut c = SharedCache::new(256, 4, 64).expect("one-set geometry");
        c.access(0, 0);
        c.access(1, 0); // shared residency
        for i in 1..=4 {
            c.access(0, i * 256 * 64); // 4 conflicting lines evict line 0
        }
        c.access(1, 0); // refill by thread 1 alone
        let s = c.finish();
        assert_eq!(s.shared_incarnations, 1, "only the first residency was shared");
    }

    #[test]
    fn working_set_capture() {
        // A working set of 512 lines fits an 8-way 64 kB cache but
        // thrashes a 4 kB one.
        let mut small = cache(4 * 1024);
        let mut large = cache(64 * 1024);
        for pass in 0..4 {
            let _ = pass;
            for i in 0..512u64 {
                small.access(0, i * 64);
                large.access(0, i * 64);
            }
        }
        let (s, l) = (small.finish(), large.finish());
        assert!(l.miss_rate() < 0.26, "large cache captures the set");
        assert!(s.miss_rate() > 0.9, "small cache thrashes");
    }

    #[test]
    fn access_line_is_the_access_fast_path() {
        let mut by_addr = cache(8 * 1024);
        let mut by_line = cache(8 * 1024);
        for (tid, addr) in [(0, 0u64), (1, 8), (0, 4096), (2, 64), (1, 4100)] {
            by_addr.access(tid, addr);
            by_line.access_line(tid, addr / 64);
        }
        assert_eq!(by_addr.finish(), by_line.finish());
    }

    #[test]
    fn bad_geometries_are_typed_errors() {
        // 48 kB / (4 x 64 B) = 192 sets: not a power of two.
        assert_eq!(
            SharedCache::new(48 * 1024, 4, 64).unwrap_err(),
            TraceError::SetsNotPowerOfTwo { sets: 192 }
        );
        // Smaller than one set.
        assert_eq!(
            SharedCache::new(64, 4, 64).unwrap_err(),
            TraceError::CacheTooSmall { bytes: 64, ways: 4, line: 64 }
        );
        // Degenerate ways/line hit the same arm instead of dividing by zero.
        assert!(matches!(
            SharedCache::new(1024, 0, 64),
            Err(TraceError::CacheTooSmall { .. })
        ));
        // Non-power-of-two line defeats the shift mapping.
        assert_eq!(
            SharedCache::new(8 * 1024, 4, 48).unwrap_err(),
            TraceError::LineNotPowerOfTwo { line: 48 }
        );
        assert!(matches!(
            SharedCache::new(8 * 1024, 4, 0),
            Err(TraceError::LineNotPowerOfTwo { .. })
        ));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Miss rate never increases with capacity (LRU inclusion holds
        /// for same-associativity... strictly it holds per set; with the
        /// same line size and doubling sets it can be violated in
        /// pathological cases, so we check the common monotone trend on
        /// small strided/looping traces where inclusion does hold).
        #[test]
        fn miss_counts_conserve(addrs in proptest::collection::vec(0u64..1_000_000, 1..500)) {
            let mut c = SharedCache::new(16 * 1024, 4, 64).expect("geometry");
            for &a in &addrs {
                c.access(0, a);
            }
            let s = c.finish();
            prop_assert_eq!(s.accesses, addrs.len() as u64);
            prop_assert!(s.misses <= s.accesses);
            prop_assert!(s.shared_accesses == 0, "single thread never shares");
            prop_assert_eq!(s.shared_incarnations, 0);
        }

        /// Distinct lines accessed bounds misses from below (compulsory
        /// misses) and incarnations equal misses.
        #[test]
        fn compulsory_lower_bound(addrs in proptest::collection::vec(0u64..100_000, 1..300)) {
            let mut distinct: Vec<u64> = addrs.iter().map(|a| a / 64).collect();
            distinct.sort_unstable();
            distinct.dedup();
            let mut c = SharedCache::new(1024 * 1024, 4, 64).expect("geometry");
            for &a in &addrs {
                c.access(1, a);
            }
            let s = c.finish();
            prop_assert!(s.misses >= distinct.len() as u64);
            prop_assert_eq!(s.incarnations, s.misses);
        }
    }
}

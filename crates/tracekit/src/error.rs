//! Typed errors for the instrumentation substrate.
//!
//! Mirrors the layering of `simt::SimError` and
//! `rodinia_study::StudyError`: every fallible `tracekit` entry point
//! — cache construction, profiling, trace capture and replay — returns
//! `Result<_, `[`TraceError`]`>` instead of panicking, so a malformed
//! cache geometry surfaces as a value the study drivers can propagate.

use std::error::Error;
use std::fmt;

/// Everything that can go wrong constructing or replaying the
/// instrumentation pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceError {
    /// A cache geometry whose `bytes / (ways * line)` yields no
    /// complete set (including zero `ways` or `line`).
    CacheTooSmall {
        /// Requested capacity in bytes.
        bytes: u64,
        /// Requested associativity.
        ways: usize,
        /// Requested line size in bytes.
        line: u64,
    },
    /// A cache geometry whose set count is not a power of two, so the
    /// line-number-to-set mapping cannot be a mask.
    SetsNotPowerOfTwo {
        /// The set count implied by the geometry.
        sets: usize,
    },
    /// A line size that is not a power of two, so the address-to-line
    /// mapping cannot be a shift.
    LineNotPowerOfTwo {
        /// Requested line size in bytes.
        line: u64,
    },
    /// More logical threads than the packed trace word can address
    /// (thread ids are stored in the low byte of each trace word).
    TooManyThreads {
        /// Configured thread count.
        threads: usize,
        /// Largest supported thread count.
        max: usize,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::CacheTooSmall { bytes, ways, line } => write!(
                f,
                "cache smaller than one set: {bytes} B / ({ways} ways x {line} B lines)"
            ),
            TraceError::SetsNotPowerOfTwo { sets } => {
                write!(f, "set count must be a power of two, got {sets}")
            }
            TraceError::LineNotPowerOfTwo { line } => {
                write!(f, "line size must be a power of two, got {line}")
            }
            TraceError::TooManyThreads { threads, max } => {
                write!(f, "{threads} logical threads exceed the trace format's {max}")
            }
        }
    }
}

impl Error for TraceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_preserves_the_historical_panic_text() {
        // PR-1 policy: typed errors keep the old assert messages so log
        // greps and should-panic expectations stay meaningful.
        let e = TraceError::CacheTooSmall {
            bytes: 64,
            ways: 4,
            line: 64,
        };
        assert!(e.to_string().contains("cache smaller than one set"));
        let e = TraceError::SetsNotPowerOfTwo { sets: 192 };
        assert!(e.to_string().contains("power of two"));
        assert!(TraceError::LineNotPowerOfTwo { line: 48 }
            .to_string()
            .contains("power of two"));
        assert!(TraceError::TooManyThreads { threads: 300, max: 256 }
            .to_string()
            .contains("256"));
    }
}

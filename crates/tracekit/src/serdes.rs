//! Binary codec for [`CpuCapture`] — the persistent-store payload
//! format for CPU traces.
//!
//! The payload is everything [`CpuCapture::from_parts`] needs: the
//! capacity-independent base [`Profile`] (name, instruction mix,
//! footprints, event count — `cache_stats` is empty by construction in
//! capture mode and is not serialized), the replay geometry (ways,
//! line), and the packed reference words. A capture decoded from a
//! faithfully stored payload replays byte-identically to the original;
//! `tests` below prove it against a real workload.
//!
//! Layout (all integers little-endian, fixed width):
//!
//! ```text
//! u32  codec version (CPU_CODEC_VERSION)
//! u32  name length + that many UTF-8 bytes
//! u64  mix.alu, mix.branches, mix.reads, mix.writes
//! u64  instr_blocks, data_blocks, events
//! u64  ways, line
//! u64  word count + that many u64 packed words
//! ```
//!
//! Decoding is fully bounds-checked and rejects version skew, invalid
//! UTF-8, and trailing bytes; it never panics on malformed input. The
//! codec carries *no* checksum — integrity is the store framing layer's
//! job (`store::encode_entry`); this layer only has to fail cleanly on
//! anything that slips through.

use std::error::Error;
use std::fmt;

use crate::mix::InstrMix;
use crate::profile::Profile;
use crate::trace::CpuCapture;

/// Current CPU-trace codec version. Bump on any layout change; stored
/// payloads from other versions are rejected by
/// [`decode_capture`] and the store recaptures.
pub const CPU_CODEC_VERSION: u32 = 1;

/// A malformed CPU-capture payload: what failed, and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpuCodecError {
    /// Byte offset at which decoding failed.
    pub offset: usize,
    /// What the decoder was reading when it failed.
    pub what: &'static str,
}

impl fmt::Display for CpuCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu trace payload: bad {} at byte {}", self.what, self.offset)
    }
}

impl Error for CpuCodecError {}

/// Serializes a capture into a store payload.
pub fn encode_capture(cap: &CpuCapture) -> Vec<u8> {
    let base = cap.base();
    let words = cap.packed_words();
    let mut out = Vec::with_capacity(64 + base.name.len() + words.len() * 8);
    out.extend_from_slice(&CPU_CODEC_VERSION.to_le_bytes());
    out.extend_from_slice(&(base.name.len() as u32).to_le_bytes());
    out.extend_from_slice(base.name.as_bytes());
    for n in [
        base.mix.alu,
        base.mix.branches,
        base.mix.reads,
        base.mix.writes,
        base.instr_blocks as u64,
        base.data_blocks as u64,
        base.events,
        cap.ways() as u64,
        cap.line(),
        words.len() as u64,
    ] {
        out.extend_from_slice(&n.to_le_bytes());
    }
    for &w in words {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out
}

/// Deserializes a payload back into a capture.
///
/// # Errors
///
/// A [`CpuCodecError`] on version skew, truncation, invalid UTF-8, or
/// trailing bytes. Never panics on malformed input.
pub fn decode_capture(bytes: &[u8]) -> Result<CpuCapture, CpuCodecError> {
    let mut r = Reader { bytes, pos: 0 };
    let version = r.u32("codec version")?;
    if version != CPU_CODEC_VERSION {
        return Err(CpuCodecError {
            offset: 0,
            what: "codec version",
        });
    }
    let name = r.str("workload name")?;
    let mix = InstrMix {
        alu: r.u64("mix.alu")?,
        branches: r.u64("mix.branches")?,
        reads: r.u64("mix.reads")?,
        writes: r.u64("mix.writes")?,
    };
    let instr_blocks = r.usize("instr_blocks")?;
    let data_blocks = r.usize("data_blocks")?;
    let events = r.u64("events")?;
    let ways = r.usize("ways")?;
    let line = r.u64("line")?;
    let count = r.usize("word count")?;
    // Clamp pre-allocation by what the buffer can actually hold so a
    // corrupt count cannot force a huge allocation before the bounds
    // check trips.
    let mut words = Vec::with_capacity(count.min(r.remaining() / 8));
    for _ in 0..count {
        words.push(r.u64("packed word")?);
    }
    if r.remaining() != 0 {
        return Err(CpuCodecError {
            offset: r.pos,
            what: "trailing bytes",
        });
    }
    let base = Profile {
        name,
        mix,
        cache_stats: Vec::new(),
        instr_blocks,
        data_blocks,
        events,
    };
    Ok(CpuCapture::from_parts(base, words, ways, line))
}

/// Bounds-checked little-endian cursor.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], CpuCodecError> {
        if self.remaining() < n {
            return Err(CpuCodecError {
                offset: self.pos,
                what,
            });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, CpuCodecError> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, CpuCodecError> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    fn usize(&mut self, what: &'static str) -> Result<usize, CpuCodecError> {
        let offset = self.pos;
        usize::try_from(self.u64(what)?).map_err(|_| CpuCodecError { offset, what })
    }

    fn str(&mut self, what: &'static str) -> Result<String, CpuCodecError> {
        let offset = self.pos;
        let len = self.u32(what)? as usize;
        let raw = self.take(len, what)?;
        String::from_utf8(raw.to_vec()).map_err(|_| CpuCodecError { offset, what })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{CpuWorkload, ProfileConfig, Profiler};
    use crate::tracer::ThreadTracer;

    /// A workload exercising reads, writes, straddles, and branches so
    /// the packed stream is non-trivial.
    struct Blend;

    impl CpuWorkload for Blend {
        fn name(&self) -> &'static str {
            "blend"
        }
        fn run(&self, prof: &mut Profiler) {
            let data = prof.alloc("data", 64 * 256);
            let code = prof.code_region("blend_loop", 320);
            prof.serial(|t: &mut ThreadTracer| {
                t.exec(code);
                t.write(data + 62, 8); // straddle
            });
            prof.parallel(|t| {
                t.exec(code);
                for i in 0..32u64 {
                    t.read(data + (t.tid() as u64 * 32 + i) * 64, 4);
                    t.update(data + i * 8, 8, 1);
                    t.branch(1);
                }
            });
        }
    }

    fn cfg() -> ProfileConfig {
        ProfileConfig {
            threads: 4,
            cache_sizes: vec![1024, 16 * 1024],
            quantum: 5,
            ..ProfileConfig::default()
        }
    }

    #[test]
    fn round_trip_replays_identically() {
        let cap = CpuCapture::capture(&Blend, &cfg()).expect("capture");
        let bytes = encode_capture(&cap);
        let back = decode_capture(&bytes).expect("decode");
        assert_eq!(back.base(), cap.base());
        assert_eq!(back.packed_words(), cap.packed_words());
        assert_eq!(back.ways(), cap.ways());
        assert_eq!(back.line(), cap.line());
        for &size in &cfg().cache_sizes {
            assert_eq!(
                back.replay(size).expect("replay decoded"),
                cap.replay(size).expect("replay original"),
                "replay at {size} bytes must match"
            );
        }
    }

    #[test]
    fn version_skew_is_rejected() {
        let cap = CpuCapture::capture(&Blend, &cfg()).expect("capture");
        let mut bytes = encode_capture(&cap);
        bytes[0] = 99;
        assert_eq!(
            decode_capture(&bytes).unwrap_err(),
            CpuCodecError {
                offset: 0,
                what: "codec version"
            }
        );
    }

    #[test]
    fn truncation_at_every_offset_is_rejected() {
        let cap = CpuCapture::capture(&Blend, &cfg()).expect("capture");
        let bytes = encode_capture(&cap);
        for cut in 0..bytes.len() {
            assert!(
                decode_capture(&bytes[..cut]).is_err(),
                "cut at {cut} must not decode"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let cap = CpuCapture::capture(&Blend, &cfg()).expect("capture");
        let mut bytes = encode_capture(&cap);
        bytes.push(0);
        let err = decode_capture(&bytes).unwrap_err();
        assert_eq!(err.what, "trailing bytes");
    }

    #[test]
    fn invalid_utf8_name_is_rejected() {
        let cap = CpuCapture::capture(&Blend, &cfg()).expect("capture");
        let mut bytes = encode_capture(&cap);
        bytes[8] = 0xff; // first name byte ("blend" starts at offset 8)
        let err = decode_capture(&bytes).unwrap_err();
        assert_eq!(err.what, "workload name");
    }

    #[test]
    fn corrupt_word_count_fails_cleanly() {
        let cap = CpuCapture::capture(&Blend, &cfg()).expect("capture");
        let mut bytes = encode_capture(&cap);
        // The word count is the last u64 before the words; inflate it.
        let count_at = bytes.len() - cap.packed_words().len() * 8 - 8;
        bytes[count_at..count_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode_capture(&bytes).is_err());
    }
}

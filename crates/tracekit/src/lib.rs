//! # tracekit — a Pin-style instrumentation substrate
//!
//! The paper gathers its CPU-side characteristics (Sections IV–V) with
//! Pin: instruction mix via `mix-mt`, and cache/working-set/sharing
//! behavior via a custom multithreaded cache-simulation Pin tool using
//! Bienia et al.'s methodology — 8 threads sharing a single 4-way,
//! 64-byte-line cache swept from 128 kB to 16 MB.
//!
//! `tracekit` reproduces that pipeline for explicitly instrumented
//! workloads:
//!
//! * [`Profiler`] runs a workload's *logical threads* and interleaves
//!   their event streams round-robin with a fixed quantum, making every
//!   measurement deterministic;
//! * [`cache::SharedCache`] simulates the shared cache at every
//!   configured capacity simultaneously in one pass, collecting misses
//!   per memory reference (working set), the fraction of resident lines
//!   shared between threads, and accesses to shared lines per reference
//!   (sharing);
//! * [`mix::InstrMix`] tallies the ALU / branch / read / write
//!   instruction mix;
//! * [`footprint::Footprints`] counts 64-byte instruction blocks and
//!   4 kB data blocks touched (Figures 11 and 12);
//! * [`trace::CpuCapture`] is the capture-once path: the interleaved
//!   reference stream is recorded once as packed line-granular words
//!   and each capacity is then replayed independently — byte-identical
//!   to the direct path, and parallelizable by the study engine;
//! * [`error::TraceError`] is the crate's typed error — no fallible
//!   entry point panics.
//!
//! ## Example
//!
//! ```
//! use tracekit::{profile, CpuWorkload, ProfileConfig, Profiler};
//!
//! /// Eight threads summing disjoint slices of an array.
//! struct Sum;
//!
//! impl CpuWorkload for Sum {
//!     fn name(&self) -> &'static str { "sum" }
//!     fn run(&self, prof: &mut Profiler) {
//!         let data = prof.alloc("data", 8 * 1024 * 4);
//!         let code = prof.code_region("sum_loop", 256);
//!         prof.parallel(|t| {
//!             t.exec(code);
//!             let lo = t.tid() * 1024;
//!             for i in lo..lo + 1024 {
//!                 t.read(data + i as u64 * 4, 4);
//!                 t.alu(1);
//!             }
//!         });
//!     }
//! }
//!
//! let p = profile(&Sum, &ProfileConfig::default()).expect("default config is valid");
//! assert_eq!(p.mix.reads, 8 * 1024);
//! assert_eq!(p.cache_stats.len(), 8);
//!
//! // The same workload through the capture-once pipeline gives the
//! // byte-identical profile:
//! let cap = tracekit::CpuCapture::capture(&Sum, &ProfileConfig::default()).unwrap();
//! let stats = cap.replay_all(&ProfileConfig::default().cache_sizes).unwrap();
//! assert_eq!(cap.profile_with(stats), p);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod cache;
pub mod error;
pub mod footprint;
pub mod mix;
pub mod profile;
pub mod serdes;
pub mod trace;
pub mod tracer;

pub use cache::{CacheStats, SharedCache};
pub use error::TraceError;
pub use footprint::Footprints;
pub use mix::{InstrMix, MixClass};
pub use profile::{profile, CpuWorkload, Profile, ProfileConfig, Profiler, MAX_THREADS};
pub use serdes::{decode_capture, encode_capture, CpuCodecError, CPU_CODEC_VERSION};
pub use trace::{profile_via_replay, CpuCapture};
pub use tracer::{Ev, ThreadTracer};

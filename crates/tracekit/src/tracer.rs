//! Per-thread event streams.

/// One instrumentation event from a logical thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ev {
    /// A data read of `size` bytes at `addr`.
    Read {
        /// Byte address.
        addr: u64,
        /// Access width in bytes.
        size: u8,
    },
    /// A data write of `size` bytes at `addr`.
    Write {
        /// Byte address.
        addr: u64,
        /// Access width in bytes.
        size: u8,
    },
    /// `n` arithmetic/logic instructions.
    Alu(u32),
    /// `n` branch instructions.
    Branch(u32),
    /// Execution entered code region `id` (instruction-footprint marker).
    Exec(u32),
}

/// The event recorder handed to each logical thread of a parallel
/// region.
#[derive(Debug)]
pub struct ThreadTracer {
    tid: usize,
    events: Vec<Ev>,
}

impl ThreadTracer {
    pub(crate) fn new(tid: usize) -> ThreadTracer {
        ThreadTracer {
            tid,
            events: Vec::new(),
        }
    }

    /// This logical thread's id.
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// Records a data read.
    pub fn read(&mut self, addr: u64, size: u8) {
        self.events.push(Ev::Read { addr, size });
    }

    /// Records a data write.
    pub fn write(&mut self, addr: u64, size: u8) {
        self.events.push(Ev::Write { addr, size });
    }

    /// Records `n` ALU instructions.
    pub fn alu(&mut self, n: u32) {
        if n > 0 {
            self.events.push(Ev::Alu(n));
        }
    }

    /// Records `n` branch instructions.
    pub fn branch(&mut self, n: u32) {
        if n > 0 {
            self.events.push(Ev::Branch(n));
        }
    }

    /// Records execution of a code region (see
    /// [`crate::Profiler::code_region`]).
    pub fn exec(&mut self, region: u32) {
        self.events.push(Ev::Exec(region));
    }

    /// Convenience: a read-modify-write of one word plus its arithmetic.
    pub fn update(&mut self, addr: u64, size: u8, alu: u32) {
        self.read(addr, size);
        self.alu(alu);
        self.write(addr, size);
    }

    pub(crate) fn take_events(&mut self) -> Vec<Ev> {
        std::mem::take(&mut self.events)
    }

    /// Number of buffered events (for region-size heuristics in tests).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_record_in_order() {
        let mut t = ThreadTracer::new(3);
        assert_eq!(t.tid(), 3);
        t.read(0x100, 4);
        t.alu(2);
        t.write(0x104, 8);
        t.branch(1);
        t.exec(7);
        let ev = t.take_events();
        assert_eq!(
            ev,
            vec![
                Ev::Read { addr: 0x100, size: 4 },
                Ev::Alu(2),
                Ev::Write { addr: 0x104, size: 8 },
                Ev::Branch(1),
                Ev::Exec(7),
            ]
        );
        assert!(t.is_empty());
    }

    #[test]
    fn zero_counts_are_elided() {
        let mut t = ThreadTracer::new(0);
        t.alu(0);
        t.branch(0);
        assert!(t.is_empty());
    }

    #[test]
    fn update_is_read_alu_write() {
        let mut t = ThreadTracer::new(0);
        t.update(64, 4, 3);
        assert_eq!(t.len(), 3);
    }
}

//! The Plackett-Burman GPU design-space screening (the paper's Section
//! III.E): nine architectural parameters screened with twelve simulated
//! design points per benchmark.
//!
//! ```text
//! cargo run --release --example gpu_design_space [tiny|small] [ABBREV...]
//! ```
//!
//! With no benchmark arguments the whole suite is screened; otherwise
//! only the named benchmarks (e.g. `SRAD NW BFS`).

use rodinia_repro::prelude::*;
use rodinia_repro::rodinia_study::sensitivity;

fn main() -> Result<(), StudyError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (scale, names): (Scale, Vec<&str>) = match args.split_first() {
        Some((first, rest)) if first == "tiny" => (Scale::Tiny, rest.iter().map(std::string::String::as_str).collect()),
        Some((first, rest)) if first == "small" => (Scale::Small, rest.iter().map(std::string::String::as_str).collect()),
        Some(_) => (Scale::Small, args.iter().map(std::string::String::as_str).collect()),
        None => (Scale::Small, Vec::new()),
    };
    let subset = if names.is_empty() {
        None
    } else {
        Some(names.as_slice())
    };
    let session = StudySession::default();
    let study = sensitivity::run(&session, scale, subset)?;
    println!("{}", study.to_table()?);
    println!("{}", study.aggregate_table()?);
    println!(
        "(the paper reports SIMD width and memory channels as the dominant factors,\n\
         \"often demonstrating more than an order of magnitude greater effect\")"
    );
    Ok(())
}

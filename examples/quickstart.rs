//! Quickstart: one GPU benchmark on the simulator, one CPU workload
//! through the Pin-style profiler, and a taste of the analysis stack.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rodinia_repro::prelude::*;
use rodinia_repro::rodinia_gpu::srad::Srad;

fn main() {
    // --- GPU side: run SRAD v2 on the paper's GPGPU-Sim configuration.
    let mut gpu = Gpu::new(GpuConfig::gpgpusim_default());
    let stats = Srad::v2(Scale::Tiny).run(&mut gpu);
    println!("== GPU: SRAD v2 on {} ==", gpu.config().name);
    println!("{stats}");
    println!();

    // --- CPU side: profile the OpenMP HotSpot under the Bienia
    // methodology (8 threads, shared 4-way 64 B cache, 128 kB - 16 MB).
    let profile = tracekit::profile(&HotspotOmp::new(Scale::Tiny), &ProfileConfig::default())
        .expect("default profile config is valid");
    println!("== CPU: hotspot profile ==");
    println!(
        "instruction mix: alu {} branch {} read {} write {}",
        profile.mix.alu, profile.mix.branches, profile.mix.reads, profile.mix.writes
    );
    for s in &profile.cache_stats {
        println!(
            "  {:>5} kB cache: {:.4} misses/ref, {:.1}% shared lines",
            s.capacity / 1024,
            s.miss_rate(),
            s.shared_line_fraction() * 100.0
        );
    }
    println!(
        "footprints: {} instruction blocks (64 B), {} data blocks (4 kB)",
        profile.instr_blocks, profile.data_blocks
    );
    println!();

    // --- Analysis: cluster a few feature vectors.
    let features = vec![
        vec![0.9, 0.1],
        vec![0.85, 0.12],
        vec![0.2, 0.8],
        vec![0.25, 0.75],
    ];
    let merges = hierarchical(
        &rodinia_repro::analysis::euclidean_matrix(&features),
        Linkage::Average,
    );
    let labels: Vec<String> = ["compute-a", "compute-b", "memory-a", "memory-b"]
        .iter()
        .map(std::string::ToString::to_string)
        .collect();
    println!("== Analysis: a small dendrogram ==");
    print!(
        "{}",
        rodinia_repro::analysis::render_dendrogram(&labels, &merges)
    );
}

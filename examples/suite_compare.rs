//! The cross-suite comparison study (the paper's Sections IV-V):
//! profiles all 24 workloads, then prints the Figure 6 dendrogram, the
//! Figure 7-9 PCA scatters, the Figure 10 miss rates, and the
//! Figure 11-12 footprints.
//!
//! ```text
//! cargo run --release --example suite_compare [tiny|small|paper]
//! ```

use rodinia_repro::prelude::*;
use rodinia_repro::rodinia_study::footprints::footprint_study;

fn scale_from_args() -> Scale {
    match std::env::args().nth(1).as_deref() {
        Some("tiny") => Scale::Tiny,
        Some("paper") => Scale::Paper,
        Some("small") | None => Scale::Small,
        Some(other) => {
            eprintln!("unknown scale {other:?}; use tiny|small|paper");
            std::process::exit(2);
        }
    }
}

fn main() -> Result<(), StudyError> {
    let scale = scale_from_args();
    eprintln!("profiling 24 workloads (this is the expensive step) ...");
    let study = ComparisonStudy::run(&StudySession::default(), scale)?;

    println!("Figure 6: similarity dendrogram (Rodinia R, Parsec P)");
    println!("{}", study.dendrogram()?);

    for scatter in [
        study.instruction_mix_pca()?,
        study.working_set_pca()?,
        study.sharing_pca()?,
    ] {
        println!("{}", scatter.to_table()?);
        println!(
            "  (PC1 explains {:.0}%, PC2 {:.0}% of variance)\n",
            scatter.variance_explained.0 * 100.0,
            scatter.variance_explained.1 * 100.0
        );
    }

    println!("{}", study.miss_rates_4mb()?);
    println!("{}", study.taxonomy_table()?);
    let fp = footprint_study(&study);
    println!("{}", fp.instruction_table()?);
    println!("{}", fp.data_table()?);
    Ok(())
}

//! Full GPU characterization (the paper's Section III): Figures 1-5 and
//! Table III, printed as tables.
//!
//! ```text
//! cargo run --release --example gpu_characterize [tiny|small|paper]
//! ```
//!
//! `small` (the default) matches the experiment scale used in
//! EXPERIMENTS.md; `paper` uses the Table I problem sizes and takes
//! considerably longer.

use rodinia_repro::prelude::*;
use rodinia_repro::rodinia_study::{characterization, experiments};

fn scale_from_args() -> Scale {
    match std::env::args().nth(1).as_deref() {
        Some("tiny") => Scale::Tiny,
        Some("paper") => Scale::Paper,
        Some("small") | None => Scale::Small,
        Some(other) => {
            eprintln!("unknown scale {other:?}; use tiny|small|paper");
            std::process::exit(2);
        }
    }
}

fn main() -> Result<(), StudyError> {
    let scale = scale_from_args();
    let session = StudySession::default();
    println!("{}", experiments::table2()?);
    println!("{}", characterization::ipc_scaling(&session, scale)?.to_table()?);
    println!("{}", characterization::memory_mix(&session, scale)?.to_table()?);
    println!("{}", characterization::warp_occupancy(&session, scale)?.to_table()?);
    println!("{}", characterization::channel_sweep(&session, scale)?.to_table()?);
    println!("{}", characterization::incremental_versions(&session, scale)?.to_table()?);
    println!("{}", characterization::fermi_study(&session, scale)?.to_table()?);
    Ok(())
}
